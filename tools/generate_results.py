"""Deadline-aware driver: regenerate as many paper tables as fit a budget.

Runs the experiment queue in priority order at a trimmed quick scope and
stops cleanly when the wall-clock budget is exhausted.  Saved outputs land
in results_quick/ for EXPERIMENTS.md splicing.

    python tools/generate_results.py [budget_minutes]
"""

import sys
import time

from repro.harness import EXPERIMENTS, RunSettings

BUDGET_MINUTES = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0

settings = RunSettings.quick().with_overrides(epochs=15, max_batches=15)
long_settings = settings.with_overrides(epochs=8)  # H=U=72 runs are heavier
timing_settings = settings.with_overrides(epochs=2)

QUEUE = [
    ("table4", settings, dict(datasets=("PEMS04", "PEMS08"))),
    ("table7", settings, dict(datasets=("PEMS04",))),
    ("figure10", timing_settings, {}),
    ("table6", long_settings, dict(datasets=("PEMS07", "PEMS08"))),
    ("attention_scaling", settings, {}),
    ("figure9", settings, {}),
    ("table11", settings, {}),
    ("table10", settings, {}),
    ("table12", settings, {}),
    ("table9", settings, {}),
    ("table14", long_settings, {}),
    ("table13", long_settings, {}),
    ("horizon_report", settings, {}),
    ("table5", settings.with_overrides(epochs=10), {}),
]

start = time.time()
for experiment_id, run_settings, kwargs in QUEUE:
    elapsed = (time.time() - start) / 60.0
    if elapsed > BUDGET_MINUTES:
        print(f"budget exhausted after {elapsed:.1f} min; stopping before {experiment_id}", flush=True)
        break
    t0 = time.time()
    result = EXPERIMENTS[experiment_id](settings=run_settings, **kwargs)
    result.save("results_quick")
    print(f"[{experiment_id} done in {time.time() - t0:.1f}s, total {(time.time()-start)/60:.1f} min]", flush=True)
print("driver finished", flush=True)
