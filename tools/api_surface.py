#!/usr/bin/env python
"""Dump (or check) the public ``repro.*`` API surface.

Walks every public subpackage's ``__all__`` and records each symbol's kind
and call signature into a deterministic JSON document.  The snapshot lives
at ``tests/api_surface.json`` and is enforced by
``tests/test_api_surface.py`` plus a CI step, so any change to the public
API — a renamed keyword, a dropped export, a new default — shows up as a
reviewable diff instead of sliding through silently.

Usage (from the repo root)::

    PYTHONPATH=src python tools/api_surface.py --check    # CI gate
    PYTHONPATH=src python tools/api_surface.py --update   # accept API change
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from pathlib import Path

#: every module whose ``__all__`` is public contract; keep sorted
PUBLIC_MODULES = (
    "repro.analysis",
    "repro.baselines",
    "repro.compile",
    "repro.core",
    "repro.data",
    "repro.exec",
    "repro.fleet",
    "repro.harness",
    "repro.nn",
    "repro.obs",
    "repro.optim",
    "repro.parallel",
    "repro.resilience",
    "repro.serve",
    "repro.tensor",
    "repro.training",
)

DEFAULT_SNAPSHOT = Path(__file__).resolve().parent.parent / "tests" / "api_surface.json"


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):  # builtins, some descriptors
        return "(...)"


def _describe(obj) -> dict:
    if inspect.isclass(obj):
        methods = {}
        for name, member in inspect.getmembers(obj):
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj.__dict__.get(name, None)) or inspect.isfunction(
                member
            ):
                methods[name] = _signature(member)
            elif isinstance(
                inspect.getattr_static(obj, name, None), (property, classmethod, staticmethod)
            ):
                static = inspect.getattr_static(obj, name)
                if isinstance(static, property):
                    methods[name] = "<property>"
                else:
                    methods[name] = _signature(member)
        return {
            "kind": "class",
            "signature": _signature(obj),
            "methods": dict(sorted(methods.items())),
        }
    if inspect.isroutine(obj):
        return {"kind": "function", "signature": _signature(obj)}
    if inspect.ismodule(obj):
        return {"kind": "module"}
    return {"kind": "constant", "type": type(obj).__name__}


def build_surface() -> dict:
    """The full public surface: module -> exported name -> description."""
    surface: dict = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            exported = [n for n in vars(module) if not n.startswith("_")]
        entry = {}
        for name in sorted(set(exported)):
            try:
                obj = getattr(module, name)
            except AttributeError:
                entry[name] = {"kind": "missing"}  # __all__ lies; surface it
                continue
            entry[name] = _describe(obj)
        surface[module_name] = entry
    return surface


def render(surface: dict) -> str:
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true", help="fail if the surface drifted from the snapshot"
    )
    mode.add_argument(
        "--update", action="store_true", help="rewrite the snapshot from the live surface"
    )
    parser.add_argument("--path", type=Path, default=DEFAULT_SNAPSHOT)
    args = parser.parse_args(argv)

    current = render(build_surface())
    if args.update:
        args.path.write_text(current)
        print(f"wrote {args.path}")
        return 0

    if not args.path.exists():
        print(f"snapshot {args.path} does not exist; run with --update first")
        return 1
    recorded = args.path.read_text()
    if recorded == current:
        print(f"API surface matches {args.path}")
        return 0
    import difflib

    diff = difflib.unified_diff(
        recorded.splitlines(keepends=True),
        current.splitlines(keepends=True),
        fromfile=str(args.path),
        tofile="live API surface",
    )
    sys.stdout.writelines(diff)
    print(
        "\npublic API drifted from the reviewed snapshot; if intentional, run\n"
        "  PYTHONPATH=src python tools/api_surface.py --update\n"
        "and commit the diff"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
