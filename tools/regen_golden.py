"""Regenerate the golden forecast fixtures under ``tests/golden/``.

Each fixture freezes the eval-mode forecast of one model — ST-WA plus two
baselines — on a fixed synthetic dataset and a fixed window batch.  The
regression test (``tests/test_golden.py``) rebuilds the same model from the
same seeds, reruns the forward pass, and compares against the stored
arrays within tolerance; any unintentional numerical drift in the tensor
substrate, the layers, or the model wiring shows up as a diff against
these files.

Run after an *intentional* numerical change:

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated ``tests/golden/*.npz`` together with the change
that moved the numbers.  The test imports this module for the build
recipes, so test and tool can never disagree about how a fixture is made.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # direct `python tools/regen_golden.py`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines import GRUForecaster, STGCNForecaster  # noqa: E402
from repro.core import SimSTForecaster, make_st_wa  # noqa: E402
from repro.data import SyntheticTrafficConfig, TrafficSimulator, WindowSpec  # noqa: E402
from repro.data.datasets import TrafficDataset  # noqa: E402
from repro.data.scalers import StandardScaler  # noqa: E402
from repro.data.windows import SlidingWindowDataset, chronological_split  # noqa: E402
from repro.tensor import Tensor  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
SPEC = WindowSpec(12, 12)
BATCH_INDICES = np.arange(0, 24, 3)  # 8 samples spread across the split
MODEL_SEED = 0

#: models frozen as golden fixtures: the paper's model, two baselines, and
#: the graph-free scaling track
GOLDEN_MODELS = ("st-wa", "gru", "stgcn", "simst")


def build_dataset() -> TrafficDataset:
    """The fixed golden dataset (mirrors the test suite's tiny_dataset)."""
    config = SyntheticTrafficConfig(num_sensors=8, num_days=6, num_corridors=2, seed=7)
    simulator = TrafficSimulator(config)
    flows = simulator.generate()
    train_raw, val_raw, test_raw = chronological_split(flows)
    scaler = StandardScaler().fit(train_raw)
    return TrafficDataset(
        name="GOLDEN",
        profile="test",
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=simulator.network,
    )


def build_model(name: str, dataset: TrafficDataset):
    """One fixed small instance per golden model, fully seed-determined."""
    sensors = dataset.num_sensors
    if name == "st-wa":
        return make_st_wa(
            sensors, model_dim=8, skip_dim=8, predictor_hidden=16, seed=MODEL_SEED
        )
    if name == "gru":
        return GRUForecaster(
            SPEC.history, SPEC.horizon, hidden_size=8, predictor_hidden=32, seed=MODEL_SEED
        )
    if name == "stgcn":
        return STGCNForecaster(
            sensors,
            dataset.adjacency,
            SPEC.history,
            SPEC.horizon,
            hidden=8,
            predictor_hidden=32,
            seed=MODEL_SEED,
        )
    if name == "simst":
        return SimSTForecaster(
            sensors,
            dataset.adjacency,
            SPEC.history,
            SPEC.horizon,
            hidden=16,
            embedding_dim=8,
            predictor_hidden=32,
            seed=MODEL_SEED,
        )
    raise KeyError(f"no golden recipe for model {name!r}; known: {GOLDEN_MODELS}")


def golden_batch(dataset: TrafficDataset):
    """The fixed evaluation batch every fixture is scored on."""
    windows = SlidingWindowDataset(dataset.val, SPEC, raw=dataset.val_raw)
    return windows.sample(BATCH_INDICES)


def compute_forecast(name: str, dataset: TrafficDataset) -> np.ndarray:
    """Deterministic eval-mode forward: latents collapse to their means."""
    model = build_model(name, dataset)
    model.eval()
    x, _ = golden_batch(dataset)
    return model(Tensor(x)).data


def regenerate(out_dir: Path = GOLDEN_DIR) -> dict:
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = build_dataset()
    x, y = golden_batch(dataset)
    written = {}
    for name in GOLDEN_MODELS:
        prediction = compute_forecast(name, dataset)
        path = out_dir / f"{name.replace('-', '_')}.npz"
        np.savez_compressed(
            path,
            prediction=prediction,
            x=x,
            y=y,
            model=np.array(name),
            seed=np.array(MODEL_SEED),
        )
        written[name] = path
        print(f"wrote {path}  prediction shape {prediction.shape}")
    return written


if __name__ == "__main__":
    regenerate()
