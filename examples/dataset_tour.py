"""Dataset tour: the spatio-temporal structure that motivates the paper.

Reproduces the paper's Figure 1 narrative on the simulator:

* sensors on the same corridor share daily patterns, different corridors
  differ (spatial heterogeneity);
* weekday and weekend regimes differ (temporal heterogeneity);
* downstream sensors lag upstream ones (sensor correlation).

    python examples/dataset_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_line
from repro.data import STEPS_PER_DAY, SyntheticTrafficConfig, TrafficSimulator


def daily_profile(series: np.ndarray, days: slice) -> np.ndarray:
    """Average 24h profile over selected days, downsampled to 48 points."""
    per_day = series[: (len(series) // STEPS_PER_DAY) * STEPS_PER_DAY].reshape(-1, STEPS_PER_DAY)
    profile = per_day[days].mean(axis=0)
    return profile.reshape(48, -1).mean(axis=1)


def main() -> None:
    config = SyntheticTrafficConfig(num_sensors=16, num_days=14, num_corridors=4, seed=1)
    simulator = TrafficSimulator(config)
    flows = simulator.generate()
    network = simulator.network
    print(f"simulated {config.num_sensors} sensors on {config.num_corridors} corridors, "
          f"{config.num_days} days at 5-minute resolution\n")

    # --- Figure 1 analogue: two sensors per corridor family --------------
    corridor_a = network.corridor_members(0, 0)  # bimodal family
    corridor_b = network.corridor_members(1, 0)  # decay family
    weekdays = slice(0, 5)
    print("Average WEEKDAY profile (one sensor per corridor family):")
    print(
        ascii_line(
            {
                f"sensor {corridor_a[0]} (corridor 0)": daily_profile(flows[corridor_a[0], :, 0], weekdays),
                f"sensor {corridor_b[0]} (corridor 1)": daily_profile(flows[corridor_b[0], :, 0], weekdays),
            },
            width=64,
        )
    )

    print("\nWEEKDAY vs WEEKEND for one sensor (temporal regimes):")
    weekend = slice(5, 7)
    print(
        ascii_line(
            {
                "weekday": daily_profile(flows[corridor_a[0], :, 0], weekdays),
                "weekend": daily_profile(flows[corridor_a[0], :, 0], weekend),
            },
            width=64,
        )
    )

    # --- correlation structure ------------------------------------------
    same = np.corrcoef(flows[corridor_a[0], :, 0], flows[corridor_a[1], :, 0])[0, 1]
    cross = np.corrcoef(flows[corridor_a[0], :, 0], flows[corridor_b[0], :, 0])[0, 1]
    print(f"\ncorrelation, same corridor:  {same:.3f}")
    print(f"correlation, cross corridor: {cross:.3f}")
    upstream, downstream = corridor_a[0], corridor_a[1]
    lag = config.propagation_lag
    lagged = np.corrcoef(flows[upstream, :-lag, 0], flows[downstream, lag:, 0])[0, 1]
    print(f"lag-{lag} upstream->downstream correlation: {lagged:.3f}")
    print("\nThese are exactly the heterogeneities ST-WA's location-specific,")
    print("time-varying parameters are designed to capture (paper Section I).")


if __name__ == "__main__":
    main()
