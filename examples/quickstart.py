"""Quickstart: train ST-WA on a simulated PEMS dataset and evaluate it.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py

Loads the simulated PEMS04 dataset, trains the paper's ST-WA model for a
few epochs, evaluates MAE / RMSE / MAPE on the held-out test split against
a persistence baseline, and saves a checkpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core import make_st_wa
from repro.data import BatchIterator, SlidingWindowDataset, WindowSpec, load_dataset
from repro.training import Trainer, TrainerConfig, save_checkpoint

HISTORY, HORIZON = 12, 12  # one hour in, one hour out (the paper's default)


def persistence_baseline(dataset, spec: WindowSpec) -> float:
    """MAE of repeating the last observation across the horizon."""
    windows = SlidingWindowDataset(dataset.test, spec, raw=dataset.test_raw)
    iterator = BatchIterator(windows, batch_size=64, shuffle=False)
    errors = []
    for x, y in iterator:
        last = dataset.scaler.inverse_transform(x[:, :, -1:, :])
        errors.append(np.mean(np.abs(np.repeat(last, spec.horizon, axis=2) - y)))
    return float(np.mean(errors))


def main() -> None:
    print("Loading simulated PEMS04 (fast profile) ...")
    dataset = load_dataset("PEMS04", profile="fast")
    print(f"  {dataset.num_sensors} sensors, {dataset.train.shape[1]} training steps")

    model = make_st_wa(
        dataset.num_sensors,
        history=HISTORY,
        horizon=HORIZON,
        model_dim=24,
        latent_dim=12,
        skip_dim=48,
        predictor_hidden=196,
        seed=0,
    )
    print(f"ST-WA built: {model.num_parameters()} parameters")

    config = TrainerConfig(
        lr=6e-3, epochs=15, batch_size=32, max_batches_per_epoch=20, eval_batches=8, patience=10, verbose=True
    )
    trainer = Trainer(model, dataset, WindowSpec(HISTORY, HORIZON), config)
    history = trainer.fit()
    print(f"trained {history.epochs_run} epochs ({history.seconds_per_epoch:.1f} s/epoch)")

    metrics = trainer.evaluate("test")
    baseline = persistence_baseline(dataset, WindowSpec(HISTORY, HORIZON))
    print(f"\nST-WA test:      MAE={metrics['mae']:.2f}  RMSE={metrics['rmse']:.2f}  MAPE={metrics['mape']:.1f}%")
    print(f"persistence:     MAE={baseline:.2f}")

    path = save_checkpoint(model, "results/quickstart_stwa.npz", metadata=metrics)
    print(f"checkpoint saved to {path}")


if __name__ == "__main__":
    main()
