"""Latent-space tour (the paper's Figure 9, condensed).

Trains ST-WA briefly, then:

1. embeds each sensor's spatial latent z^(i) with t-SNE and checks the
   clusters against the (known) corridor/direction layout — the paper's
   Figure 9(b)/(c);
2. embeds the generated projection matrices phi_t^(i) of one sensor across
   time windows — the paper's Figure 9(a) — and relates the clusters to
   up/down traffic trends.

    python examples/latent_space_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import TSNEConfig, ascii_scatter, cluster_purity, kmeans, tsne
from repro.core import make_st_wa
from repro.data import SlidingWindowDataset, WindowSpec, load_dataset
from repro.harness import RunSettings, train_and_score_model
from repro.tensor import Tensor, no_grad


def main() -> None:
    dataset = load_dataset("PEMS04", profile="fast")
    settings = RunSettings.quick().with_overrides(epochs=8)
    model = make_st_wa(dataset.num_sensors, model_dim=16, latent_dim=8, skip_dim=32, predictor_hidden=128, seed=0)
    print("training ST-WA briefly ...")
    metrics = train_and_score_model(model, dataset, 12, 12, settings, name="st-wa")
    print(f"test MAE after warm-up: {metrics['mae']:.2f}\n")
    model.eval()

    # --- Figure 9(b)/(c): spatial latents cluster by road ---------------
    z = model.latent.spatial.mu.numpy()
    lanes = np.array([2 * s.corridor + s.direction for s in dataset.network.sensors])
    embedding = tsne(z, TSNEConfig(iterations=300, seed=0))
    labels, _, _ = kmeans(z, len(np.unique(lanes)), seed=0)
    purity = cluster_purity(labels, lanes)
    print("t-SNE of spatial latents z^(i) (glyph = true corridor/direction):")
    print(ascii_scatter(embedding[:, 0], embedding[:, 1], labels=lanes, width=56, height=18))
    print(f"cluster purity vs corridor/direction: {purity:.2f} "
          f"(random floor ~{1 / len(np.unique(lanes)):.2f})\n")

    # --- Figure 9(a): generated parameters vary across time -------------
    windows = SlidingWindowDataset(dataset.test, WindowSpec(12, 12), raw=dataset.test_raw)
    anchors = np.linspace(0, len(windows) - 1, 50).astype(int)
    phis, trends = [], []
    with no_grad():
        for anchor in anchors:
            x, _ = windows[anchor]
            projections = model.generated_projections(Tensor(x[None]))
            phis.append(np.concatenate([projections[0][k].numpy()[0, 0].ravel() for k in ("K", "V")]))
            series = x[0, :, 0]
            trends.append(1 if series[-1] >= series[0] else 0)
    phi_embedding = tsne(np.array(phis), TSNEConfig(iterations=300, seed=0))
    print("t-SNE of generated projections phi_t for sensor 0 (a=down, b=up trend):")
    print(ascii_scatter(phi_embedding[:, 0], phi_embedding[:, 1], labels=np.array(trends), width=56, height=18))
    print("\nDistinct parameters are generated for distinct time windows —")
    print("the time-varying behaviour the paper visualizes in Figure 9(a).")


if __name__ == "__main__":
    main()
