"""Probabilistic forecasting from ST-WA's stochastic latents.

The paper trains stochastic latent variables but only reports point
forecasts.  Because the model parameters are *sampled* from Θ_t^(i),
keeping the sampler active at inference time yields a forecast ensemble
for free — this example trains ST-WA briefly and reports prediction
intervals with coverage diagnostics.

    python examples/probabilistic_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro.core import make_st_wa
from repro.data import SlidingWindowDataset, WindowSpec, load_dataset
from repro.harness import RunSettings, train_and_score_model
from repro.training import interval_diagnostics, predict_interval


def main() -> None:
    dataset = load_dataset("PEMS08", profile="fast")
    model = make_st_wa(dataset.num_sensors, model_dim=16, latent_dim=8, skip_dim=32, predictor_hidden=128, seed=0)
    settings = RunSettings.quick().with_overrides(epochs=10)
    print("training ST-WA briefly ...")
    metrics = train_and_score_model(model, dataset, 12, 12, settings, name="st-wa")
    print(f"point-forecast test MAE: {metrics['mae']:.2f}\n")

    windows = SlidingWindowDataset(dataset.test, WindowSpec(12, 12), raw=dataset.test_raw)
    x, y = windows.sample(np.arange(32))
    for level in (0.5, 0.8, 0.95):
        forecast = predict_interval(model, x, dataset.scaler, num_samples=24, level=level)
        diagnostics = interval_diagnostics(forecast, y)
        print(
            f"level={level:.2f}: empirical coverage={diagnostics['empirical_coverage']:.2f} "
            f"mean width={diagnostics['mean_width']:.1f} veh/5min "
            f"median MAE={diagnostics['median_mae']:.2f}"
        )
    print("\nWider nominal levels produce wider bands with higher coverage —")
    print("the sampled parameters behave as an implicit predictive distribution.")


if __name__ == "__main__":
    main()
