"""Model-agnostic enhancement (the paper's Table VII, condensed).

Takes a plain GRU and a plain attention forecaster (both spatio-temporal
*agnostic*) and enhances each with the paper's parameter-generation
framework: +S (spatial-aware) and +ST (spatio-temporal aware).  The
enhanced variants should win.

    python examples/model_agnostic_enhancement.py
"""

from __future__ import annotations

from repro.data import WindowSpec, load_dataset
from repro.harness import RunSettings, train_and_score

MODELS = ("GRU", "GRU+S", "GRU+ST", "ATT", "ATT+S", "ATT+ST")


def main() -> None:
    dataset = load_dataset("PEMS08", profile="fast")
    settings = RunSettings.quick().with_overrides(epochs=10)
    print(f"dataset: {dataset.name}-sim  sensors={dataset.num_sensors}  scope={settings.scope}\n")
    print(f"{'model':8s}  {'MAE':>7s}  {'RMSE':>7s}  {'MAPE %':>7s}  {'params':>8s}")
    results = {}
    for name in MODELS:
        metrics = train_and_score(name, dataset, 12, 12, settings)
        results[name] = metrics
        print(
            f"{name:8s}  {metrics['mae']:7.2f}  {metrics['rmse']:7.2f}  "
            f"{metrics['mape']:7.1f}  {int(metrics['parameters']):8d}"
        )
    print()
    for base in ("GRU", "ATT"):
        improved = results[f"{base}+ST"]["mae"] < results[base]["mae"]
        arrow = "improved" if improved else "did not improve (train longer)"
        print(f"{base} -> {base}+ST: {arrow} "
              f"({results[base]['mae']:.2f} -> {results[f'{base}+ST']['mae']:.2f} MAE)")


if __name__ == "__main__":
    main()
