"""Long-horizon forecasting and the memory story (paper Table VI).

Trains ST-WA at H = U = 72 (6 hours in, 6 hours out) and shows why the
heavyweight baselines cannot follow at the paper's scale: the analytic
memory model puts STFGNN and EnhanceNet past the V100's 16 GB budget on
PEMS07 (N=883) while ST-WA needs under 2 GB.

    python examples/long_horizon_forecasting.py
"""

from __future__ import annotations

from repro.data import WindowSpec, load_dataset
from repro.harness import RunSettings, train_and_score
from repro.harness.table6 import paper_scale_memory_gb

MODELS = ("STFGNN", "EnhanceNet", "AGCRN", "ST-WA")
HISTORY = HORIZON = 72


def main() -> None:
    print("Analytic training-memory at the PAPER's scale (PEMS07, N=883, H=U=72):")
    for model in MODELS:
        memory = paper_scale_memory_gb(model, "PEMS07", HISTORY)
        verdict = "OOM on a 16 GB V100" if memory > 16 else "fits"
        print(f"  {model:11s} {memory:6.1f} GB  -> {verdict}")

    print("\nTraining at simulation scale (PEMS08-sim), H=U=72:")
    dataset = load_dataset("PEMS08", profile="fast")
    settings = RunSettings.smoke().with_overrides(epochs=3, max_batches=6)
    print(f"{'model':11s}  {'MAE':>7s}  {'RMSE':>7s}  {'s/epoch':>8s}")
    for model in MODELS:
        metrics = train_and_score(model, dataset, HISTORY, HORIZON, settings)
        print(
            f"{model:11s}  {metrics['mae']:7.2f}  {metrics['rmse']:7.2f}  "
            f"{metrics['seconds_per_epoch']:8.2f}"
        )
    print("\nThe paper's Table VI shows the same pattern: ST-WA handles long")
    print("horizons at large N where STFGNN/EnhanceNet exhaust GPU memory.")


if __name__ == "__main__":
    main()
