"""Benchmark: regenerate Table V (impact of the history length H, PEMS04).

Reduced default: H in {12, 36} with two models; the full grid sweeps
H in {12, 36, 120} over the paper's four columns.
"""

from __future__ import annotations

from repro.harness import table5

from conftest import run_once


def test_table5(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table5.run(settings=settings)
        return table5.run(settings=settings, models=("AGCRN", "ST-WA"), histories=(12, 36))

    result = run_once(benchmark, run)
    result.save(results_dir)
    assert [row[0] for row in result.rows] == ["MAE", "MAPE", "RMSE"]
