"""Benchmark: regenerate Table VII (model-agnostic +S / +ST enhancement)."""

from __future__ import annotations

from repro.harness import table7

from conftest import run_once


def test_table7(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table7.run(settings=settings)
        return table7.run(settings=settings, datasets=("PEMS04",))

    result = run_once(benchmark, run)
    result.save(results_dir)
    assert result.extras["total_chains"] >= 1
    # the +S and +ST columns exist for both families
    assert {"GRU", "GRU+S", "GRU+ST", "ATT", "ATT+S", "ATT+ST"} <= set(result.headers)
