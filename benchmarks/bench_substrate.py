"""Microbenchmarks of the substrate: autodiff ops and training steps.

Unlike the table benchmarks (one-shot end-to-end regenerations), these use
pytest-benchmark's repeated timing to characterize the building blocks the
reproduction's efficiency claims rest on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WindowAttention, make_st_wa, STWALoss
from repro.nn import MultiHeadSelfAttention
from repro.optim import Adam
from repro.tensor import Tensor, ops


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_matmul_forward_backward(benchmark, rng):
    a = Tensor(rng.standard_normal((64, 128)), requires_grad=True)
    b = Tensor(rng.standard_normal((128, 64)), requires_grad=True)

    def step():
        a.zero_grad()
        b.zero_grad()
        ops.matmul(a, b).sum().backward()

    benchmark(step)


def test_softmax_forward_backward(benchmark, rng):
    x = Tensor(rng.standard_normal((64, 12, 128)), requires_grad=True)

    def step():
        x.zero_grad()
        ops.softmax(x, axis=-1).sum().backward()

    benchmark(step)


def test_canonical_attention_layer(benchmark, rng):
    layer = MultiHeadSelfAttention(16, 16, num_heads=2, rng=np.random.default_rng(1))
    x = Tensor(rng.standard_normal((8, 8, 48, 16)), requires_grad=True)

    def step():
        x.zero_grad()
        layer.zero_grad()
        layer(x).sum().backward()

    benchmark(step)


def test_window_attention_layer(benchmark, rng):
    layer = WindowAttention(8, 16, 16, num_windows=12, window_size=4, num_proxies=2, rng=np.random.default_rng(1))
    x = Tensor(rng.standard_normal((8, 8, 48, 16)), requires_grad=True)

    def step():
        x.zero_grad()
        layer.zero_grad()
        layer(x).sum().backward()

    benchmark(step)


def test_st_wa_training_step(benchmark, rng):
    model = make_st_wa(10, history=12, horizon=12, model_dim=16, latent_dim=8, skip_dim=32, predictor_hidden=64, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    loss_fn = STWALoss()
    x = Tensor(rng.standard_normal((16, 10, 12, 1)))
    y = Tensor(rng.standard_normal((16, 10, 12, 1)))

    def step():
        optimizer.zero_grad()
        loss = loss_fn(model(x), y, model=model)
        loss.backward()
        optimizer.step()

    benchmark(step)
