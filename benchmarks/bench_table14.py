"""Benchmark: regenerate Table XIV (weighted vs mean proxy aggregator)."""

from __future__ import annotations

from repro.harness import table14

from conftest import run_once


def test_table14(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: table14.run(settings=settings))
    result.save(results_dir)
    labels = [row[0] for row in result.rows]
    assert labels == ["Mean Aggregator", "Our Aggregator"]
