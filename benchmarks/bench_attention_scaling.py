"""Benchmark: the O(H) vs O(H^2) complexity claim of Section IV-B.

Measures forward+backward wall time of window attention vs canonical
self-attention over growing H and checks the empirical log-log slopes:
canonical clearly super-linear, window attention clearly sub-quadratic,
and canonical growing faster than window.
"""

from __future__ import annotations

from repro.harness import attention_scaling

from conftest import run_once


def test_attention_scaling(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: attention_scaling.run(settings=settings))
    result.save(results_dir)
    canonical = result.extras["canonical_slope"]
    window = result.extras["window_slope"]
    benchmark.extra_info["canonical_slope"] = canonical
    benchmark.extra_info["window_slope"] = window
    assert canonical > window + 0.3
    assert canonical > 1.3  # clearly super-linear
    assert window < 1.7  # clearly sub-quadratic
