"""Benchmark: regenerate Table VIII (ablation: SA / WA-1 / WA / S-WA / ST-WA).

Also asserts the paper's cost shape: the analytic memory of canonical
self-attention (SA) exceeds the window-attention variants, and WA-1 has the
fewest parameters.
"""

from __future__ import annotations

from repro.harness import table8

from conftest import run_once


def test_table8(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: table8.run(settings=settings))
    result.save(results_dir)
    header_index = {name: i for i, name in enumerate(result.headers)}
    memory_row = next(row for row in result.rows if row[0].startswith("Memory"))
    params_row = next(row for row in result.rows if row[0] == "# Para")
    sa_memory = float(memory_row[header_index["SA"]])
    wa_memory = float(memory_row[header_index["WA"]])
    assert sa_memory > wa_memory  # quadratic vs linear attention memory
    params = {name: int(params_row[header_index[name]]) for name in ("SA", "WA-1", "WA", "S-WA", "ST-WA")}
    assert params["WA-1"] == min(params.values())
    assert params["ST-WA"] >= params["S-WA"] >= params["WA"] > params["WA-1"]
