"""Benchmark: regenerate Table XI (stochastic vs deterministic latents)."""

from __future__ import annotations

from repro.harness import table11

from conftest import run_once


def test_table11(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: table11.run(settings=settings))
    result.save(results_dir)
    labels = [row[0] for row in result.rows]
    assert labels == ["ST-WA", "Deterministic ST-WA"]
