"""Benchmark: regenerate Table IX (effect of window sizes and depth)."""

from __future__ import annotations

from repro.harness import table9

from conftest import run_once


def test_table9(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table9.run(settings=settings)
        # reduced: one 3-layer stack, one 2-layer stack, the flat single layer
        return table9.run(settings=settings, configurations=((3, 2, 2), (4, 3), (12,)))

    result = run_once(benchmark, run)
    result.save(results_dir)
    assert result.headers[0] == "Metric"
    assert any(h.startswith("S=") for h in result.headers[1:])
