"""Benchmark: regenerate Figure 9 (t-SNE of learned stochastic variables).

Asserts the qualitative claims quantitatively: the spatial latents z^(i)
cluster by corridor/direction well above the random-assignment floor, and
the generated projections phi_t spread across time windows.
"""

from __future__ import annotations

from repro.harness import figure9

from conftest import run_once


def test_figure9(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: figure9.run(settings=settings, num_anchor_windows=40))
    result.save(results_dir)
    assert result.extras["z_purity"] > 0.3  # well above 1/num_lanes random floor
    assert result.extras["phi_spread"] > 0.0  # parameters vary across windows
