"""Benchmark: regenerate Table XII (latent variable size k sweep)."""

from __future__ import annotations

from repro.harness import table12

from conftest import run_once


def test_table12(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table12.run(settings=settings)
        return table12.run(settings=settings, sizes=(4, 16))

    result = run_once(benchmark, run)
    result.save(results_dir)
    assert result.headers == ["k", "MAE", "MAPE", "RMSE"]
