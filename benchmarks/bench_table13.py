"""Benchmark: regenerate Table XIII (number of proxies p, H = U = 72).

Asserts the paper's cost shape: parameters and per-epoch time grow with p.
"""

from __future__ import annotations

from repro.harness import table13

from conftest import run_once


def test_table13(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table13.run(settings=settings)
        return table13.run(settings=settings, proxies=(1, 2))

    result = run_once(benchmark, run)
    result.save(results_dir)
    params = [int(row[-1]) for row in result.rows]
    assert params == sorted(params)  # parameters grow with p
