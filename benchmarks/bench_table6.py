"""Benchmark: regenerate Table VI (H = U = 72, with OOM behaviour).

The OOM determination is analytic (paper-scale sensor counts vs the V100
budget) and must reproduce the paper's pattern exactly: STFGNN and
EnhanceNet OOM on PEMS07, everything else fits.
"""

from __future__ import annotations

from repro.harness import table6

from conftest import run_once


def test_table6(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table6.run(settings=settings)
        return table6.run(settings=settings, datasets=("PEMS07", "PEMS08"))

    result = run_once(benchmark, run)
    result.save(results_dir)
    oom = result.extras["oom_pairs"]
    assert any("STFGNN@PEMS07" in pair for pair in oom)
    assert any("EnhanceNet@PEMS07" in pair for pair in oom)
    assert not any("ST-WA" in pair for pair in oom)
    assert not any("AGCRN" in pair for pair in oom)
