"""Benchmark: regenerate Table X (effect of the KL regularization term)."""

from __future__ import annotations

from repro.harness import table10

from conftest import run_once


def test_table10(benchmark, settings, results_dir):
    result = run_once(benchmark, lambda: table10.run(settings=settings))
    result.save(results_dir)
    assert result.headers == ["Metric", "With", "Without"]
    assert len(result.rows) == 3
