"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures end-to-end
(data simulation + training + evaluation) at the ``smoke`` scope by default
— fast enough for CI while preserving the pipeline and gross orderings.
Set ``REPRO_SCOPE=quick`` (or ``standard``) for more faithful runs, and
``REPRO_BENCH_FULL=1`` to use the paper's full dataset/model grids instead
of the reduced defaults.

Each benchmark saves its reproduced table under ``results/`` so the rows
can be inspected after the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import RunSettings

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    # settings are passed explicitly; REPRO_SCOPE is honoured here (and only
    # here) so existing benchmark invocations keep working without the
    # deprecated RunSettings.from_env() side channel
    return RunSettings.from_scope(os.environ.get("REPRO_SCOPE", "smoke"))


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, func):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
