"""Benchmark: regenerate Table IV (overall accuracy, H = U = 12).

Reduced default grid: two datasets x six representative models (one per
architecture family plus ST-WA).  ``REPRO_BENCH_FULL=1`` restores the
paper's full 4 x 12 grid.
"""

from __future__ import annotations

from repro.harness import table4

from conftest import run_once

REDUCED_MODELS = ("LongFormer", "DCRNN", "GWN", "STFGNN", "AGCRN", "ST-WA")
REDUCED_DATASETS = ("PEMS04", "PEMS08")


def test_table4(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return table4.run(settings=settings)
        return table4.run(settings=settings, datasets=REDUCED_DATASETS, models=REDUCED_MODELS)

    result = run_once(benchmark, run)
    result.save(results_dir)
    benchmark.extra_info["st_wa_wins"] = result.extras["st_wa_wins"]
    # structural assertions: one row per dataset-metric pair, all cells filled
    expected_rows = 3 * (4 if full_grid else len(REDUCED_DATASETS))
    assert len(result.rows) == expected_rows
    assert all(len(row) == len(result.headers) for row in result.rows)
