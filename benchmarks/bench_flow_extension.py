"""Benchmark: normalizing-flow latents vs Gaussian latents (future work).

The paper's conclusion proposes non-Gaussian latent variables via
normalizing flows; this repository implements them (repro.core.flows).
The bench trains Gaussian ST-WA and flow-ST-WA under identical budgets and
reports both, plus the parameter/runtime overhead of the flows.
"""

from __future__ import annotations

from repro.harness import get_dataset, train_and_score
from repro.harness.reporting import TableResult, fmt

from conftest import run_once


def test_flow_extension(benchmark, settings, results_dir):
    def run():
        dataset = get_dataset("PEMS04", settings.profile)
        gaussian = train_and_score("ST-WA", dataset, 12, 12, settings)
        flowed = train_and_score("ST-WA-flow", dataset, 12, 12, settings)
        return TableResult(
            experiment_id="flow_extension",
            title=f"Gaussian vs normalizing-flow latents (scope={settings.scope})",
            headers=["", "MAE", "MAPE", "RMSE", "s/epoch", "# Para"],
            rows=[
                [
                    name,
                    fmt(res["mae"]),
                    fmt(res["mape"]),
                    fmt(res["rmse"]),
                    fmt(res["seconds_per_epoch_warm"]),
                    str(int(res["parameters"])),
                ]
                for name, res in (("ST-WA (Gaussian)", gaussian), ("ST-WA (planar flows)", flowed))
            ],
            notes=["Implements the paper's future-work direction (Section VI)."],
            extras={"gaussian_mae": gaussian["mae"], "flow_mae": flowed["mae"]},
        )

    result = run_once(benchmark, run)
    result.save(results_dir)
    # the flows add parameters but must stay the same order of magnitude
    params = [int(row[-1]) for row in result.rows]
    assert params[1] > params[0]
    assert params[1] < params[0] * 1.2
