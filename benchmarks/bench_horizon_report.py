"""Benchmark: per-horizon-step accuracy breakdown (companion analysis)."""

from __future__ import annotations

from repro.harness import horizon_report

from conftest import run_once


def test_horizon_report(benchmark, settings, results_dir):
    result = run_once(
        benchmark,
        lambda: horizon_report.run(settings=settings, models=("Persistence", "ST-WA")),
    )
    result.save(results_dir)
    per_model = result.extras["per_model"]
    # persistence error must grow with the step (structural truth of the data)
    persistence = per_model["Persistence"]
    assert persistence[12] > persistence[3]
