"""Benchmark: regenerate Figure 10 (training runtime vs history length H).

Asserts the paper's efficiency shape: ST-WA's runtime growth factor from
H=12 to the longest H is the smallest among the compared models.
"""

from __future__ import annotations

from repro.harness import figure10

from conftest import run_once


def test_figure10(benchmark, settings, full_grid, results_dir):
    def run():
        if full_grid:
            return figure10.run(settings=settings)
        return figure10.run(settings=settings, models=("STFGNN", "AGCRN", "ST-WA"), histories=(12, 48))

    result = run_once(benchmark, run)
    result.save(results_dir)
    seconds = result.extras["seconds"]
    growth = {model: times[-1] / max(times[0], 1e-9) for model, times in seconds.items()}
    assert growth["ST-WA"] <= min(growth[m] for m in growth) * 1.5  # smallest-ish growth
