"""One Executor API under training and serving (see DESIGN.md "Executor").

Every way this repo runs a model — the serial training loop, the
multiprocess data-parallel pool, gradient-free inference, micro-batched
serving — implements one contract:

* :class:`Executor` — ``train_step(weights, batch) -> StepResult`` /
  ``predict(weights, inputs) -> outputs`` plus an ``open()``/``close()``
  resource lifecycle (:mod:`repro.exec.base`).
* :class:`SerialExecutor` — in-process forward/backward.
* :class:`ParallelExecutor` — batches sharded across a
  :class:`repro.parallel.WorkerPool`, gradients tree-reduced.
* :class:`ShardedExecutor` — contiguous *sensor*-dimension sharding over
  the same pool for ``sensor_shardable`` models (batch-axis fallback
  otherwise); trains and serves, reassembling shard forecasts.
* :class:`InferenceExecutor` — the :class:`repro.tensor.inference_mode`
  graph-free fast path with optional scaler/shape handling; training
  raises.
* :class:`ExecutorSpec` + :func:`make_executor` — declarative selection.

:class:`repro.training.Trainer` and :class:`repro.serve.ServingEngine`
both execute exclusively through this seam, so backends land once and
apply everywhere — ``ExecutorSpec(kind="compiled")`` selects the
trace-once/replay-many backend in :mod:`repro.compile`, which replays a
fixed-shape step as a preallocated instruction program and transparently
falls back to the interpreted executors when a step cannot be compiled.
"""

from .base import (
    Batch,
    Executor,
    ExecutorError,
    ExecutorStateError,
    StepResult,
    eval_forward,
)
from .inference import InferenceExecutor
from .parallel import ParallelExecutor
from .serial import SerialExecutor
from .sharded import ShardedExecutor
from .spec import EXECUTOR_KINDS, ExecutorSpec, make_executor

__all__ = [
    "Batch",
    "EXECUTOR_KINDS",
    "Executor",
    "ExecutorError",
    "ExecutorStateError",
    "ExecutorSpec",
    "InferenceExecutor",
    "ParallelExecutor",
    "SerialExecutor",
    "ShardedExecutor",
    "StepResult",
    "eval_forward",
    "make_executor",
]
