"""Data-parallel executor: shard every batch across a WorkerPool.

Wraps :class:`repro.parallel.WorkerPool` + :func:`repro.optim.allreduce`
behind the :class:`repro.exec.Executor` contract.  Every ``train_step``:

1. serializes the step's weights once through the schema-v2 checkpoint
   codec (``weights`` arg, or the model's current state when ``None``),
2. splits the batch into contiguous shards (:func:`repro.parallel.shard_batch`),
3. runs forward/backward on every worker,
4. tree-reduces the shard gradients into the parent model's parameters
   (:func:`repro.optim.all_reduce_gradients`) and combines the losses as
   the shard-weight-weighted mean — exactly the loss and gradient serial
   execution produces, merely re-associated.

The pool is a real resource: :meth:`open` starts the worker processes
(pickling the model exactly once) and :meth:`close` stops them; a closed
executor can be re-opened, which starts a fresh pool.  Worker/serialize/
reduce wall times are attributed to the active :mod:`repro.obs` profiler's
``parallel`` section and mirrored into :class:`StepResult.stats`.

``predict`` runs on the parent model in-process — prediction is not
sharded (yet; sensor-sharded serving is the roadmap's next step), and the
parent's weights are authoritative between optimizer steps.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from .base import Batch, Executor, StepResult, Weights, eval_forward

__all__ = ["ParallelExecutor"]


class ParallelExecutor(Executor):
    """Sharded forward/backward on N persistent worker processes."""

    def __init__(
        self,
        model,
        *,
        n_workers: int = 2,
        start_method: Optional[str] = None,
        prefetch: bool = True,
        detect_anomaly: bool = False,
        step_timeout: float = 300.0,
        seed: int = 0,
        huber_delta: float = 1.0,
        kl_weight: float = 0.0,
    ):
        super().__init__(model)
        self.n_workers = n_workers
        self.start_method = start_method
        self.prefetch = prefetch
        self.detect_anomaly = detect_anomaly
        self.step_timeout = step_timeout
        self.seed = seed
        self.huber_delta = huber_delta
        self.kl_weight = kl_weight
        self._pool = None

    # ------------------------------------------------------------------ #
    # lifecycle: the pool is the resource
    # ------------------------------------------------------------------ #
    def _acquire(self) -> None:
        from ..parallel import ParallelConfig, WorkerPool

        self._pool = WorkerPool(
            self.model,
            ParallelConfig(
                n_workers=self.n_workers,
                start_method=self.start_method,
                detect_anomaly=self.detect_anomaly,
                seed=self.seed,
                step_timeout=self.step_timeout,
            ),
            huber_delta=self.huber_delta,
            kl_weight=self.kl_weight,
        )

    def _release(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------ #
    def _make_shards(self, x: np.ndarray, y: np.ndarray):
        """Split one batch into per-worker shards (subclasses swap the axis)."""
        from ..parallel import shard_batch

        return shard_batch(x, y, self._pool.n_workers)

    def train_step(self, weights: Weights, batch: Batch) -> StepResult:
        """One sharded step; the reduced gradient lands on the parent model."""
        self._require_open("train_step")
        from ..obs import current_profiler
        from ..optim import all_reduce_gradients
        from ..training import checkpoint as checkpoint_module

        x, y = batch
        serialize_start = time.perf_counter()
        state = weights if weights is not None else self.model.state_dict()
        weights_blob = checkpoint_module.dumps_state_dict(state)
        serialize_seconds = time.perf_counter() - serialize_start
        shards = self._make_shards(x, y)
        results = self._pool.train_step(weights_blob, shards)
        reduce_start = time.perf_counter()
        total = all_reduce_gradients(
            self._parameters,
            [result.grads for result in results],
            [result.weight for result in results],
        )
        value = float(
            np.sum([result.weight * result.loss for result in results]) / total
        )
        reduce_seconds = time.perf_counter() - reduce_start
        stats = {"serialize": serialize_seconds, "reduce": reduce_seconds}
        for result in results:
            stats[f"worker{result.worker_id}"] = result.seconds
        profiler = current_profiler()
        if profiler is not None:
            for name, seconds in stats.items():
                profiler.record_parallel(name, seconds)
        if not np.isfinite(value):
            raise FloatingPointError(
                f"training diverged: loss became {value}; lower the learning "
                "rate or tighten grad_clip"
            )
        return StepResult(
            loss=value,
            grads=[parameter.grad for parameter in self._parameters],
            stats=stats,
        )

    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        """Eval-mode inference forward on the parent copy of the model."""
        self._require_open("predict")
        if weights is not None:
            self.model.load_state_dict(weights)
        return eval_forward(self.model, inputs)

    # ------------------------------------------------------------------ #
    def make_batch_iterator(
        self,
        windows,
        *,
        batch_size: int,
        shuffle: bool = True,
        rng=None,
        max_batches: Optional[int] = None,
    ):
        """Shared-memory prefetching iterator (unless ``prefetch=False``)."""
        if not self.prefetch:
            return super().make_batch_iterator(
                windows,
                batch_size=batch_size,
                shuffle=shuffle,
                rng=rng,
                max_batches=max_batches,
            )
        from ..parallel import PrefetchingBatchIterator

        return PrefetchingBatchIterator(
            windows,
            batch_size=batch_size,
            shuffle=shuffle,
            rng=rng,
            max_batches=max_batches,
            start_method=self.start_method,
        )
