"""Executor selection: a declarative spec + the factory that builds one.

:class:`ExecutorSpec` is the single configuration surface for *how* a model
executes — serial in-process, sharded across a multiprocess worker pool, or
gradient-free inference — independent of *what* runs (the model, the loss,
the dataset).  :class:`repro.training.TrainerConfig` carries one, the
serving plane builds one per artifact, and the harness benches sweep them.

>>> from repro.exec import ExecutorSpec, make_executor
>>> spec = ExecutorSpec.parallel(n_workers=4)
>>> executor = make_executor(model, spec, huber_delta=1.0, kl_weight=0.02)
>>> with executor:
...     result = executor.train_step(None, (x, y))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["EXECUTOR_KINDS", "ExecutorSpec", "make_executor"]

#: the execution strategies the factory knows how to build
EXECUTOR_KINDS = ("serial", "parallel", "inference", "compiled", "sharded")

#: kinds whose executor is backed by a multiprocess worker pool
_POOLED_KINDS = ("parallel", "sharded")


@dataclass(frozen=True)
class ExecutorSpec:
    """Declarative description of an execution strategy.

    Parameters
    ----------
    kind:
        ``"serial"`` — in-process forward/backward;
        ``"parallel"`` — every batch sharded across ``n_workers`` worker
        processes (:mod:`repro.parallel`), gradients tree-reduced;
        ``"inference"`` — gradient-free prediction only (training raises);
        ``"compiled"`` — trace-once/replay-many compiled plans
        (:mod:`repro.compile`), falling back to the interpreted executors
        for unsupported or shape-changing steps;
        ``"sharded"`` — contiguous sensor-dimension sharding across a
        worker pool (:class:`repro.exec.ShardedExecutor`): sensor-axis for
        ``sensor_shardable`` models (SimST), batch-axis fallback otherwise;
        trains *and* serves.
    n_workers / start_method / step_timeout:
        Worker-pool knobs, meaningful for ``kind="parallel"``/``"sharded"``.
    prefetch:
        Assemble training batches in a background shared-memory process
        (pooled kinds only; serial assembly is already overlapped by nothing).
    detect_anomaly:
        Per-op NaN/Inf screening during training steps (slow; debugging).
    """

    kind: str = "serial"
    n_workers: int = 0
    start_method: Optional[str] = None  # fork | spawn | None (auto)
    prefetch: bool = True
    detect_anomaly: bool = False
    step_timeout: float = 300.0

    def __post_init__(self):
        if self.kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor kind must be one of {EXECUTOR_KINDS}, got {self.kind!r}"
            )
        if self.kind in _POOLED_KINDS and self.n_workers < 2:
            raise ValueError(
                f"a {self.kind} executor needs n_workers >= 2, got {self.n_workers}"
            )
        if self.kind not in _POOLED_KINDS and self.n_workers:
            raise ValueError(
                f"n_workers={self.n_workers} only makes sense with kind "
                f"'parallel' or 'sharded'"
            )

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def serial(cls, *, detect_anomaly: bool = False) -> "ExecutorSpec":
        return cls(kind="serial", detect_anomaly=detect_anomaly)

    @classmethod
    def parallel(
        cls,
        n_workers: int = 2,
        *,
        start_method: Optional[str] = None,
        prefetch: bool = True,
        detect_anomaly: bool = False,
        step_timeout: float = 300.0,
    ) -> "ExecutorSpec":
        return cls(
            kind="parallel",
            n_workers=n_workers,
            start_method=start_method,
            prefetch=prefetch,
            detect_anomaly=detect_anomaly,
            step_timeout=step_timeout,
        )

    @classmethod
    def sharded(
        cls,
        n_workers: int = 2,
        *,
        start_method: Optional[str] = None,
        prefetch: bool = True,
        detect_anomaly: bool = False,
        step_timeout: float = 300.0,
    ) -> "ExecutorSpec":
        return cls(
            kind="sharded",
            n_workers=n_workers,
            start_method=start_method,
            prefetch=prefetch,
            detect_anomaly=detect_anomaly,
            step_timeout=step_timeout,
        )

    @classmethod
    def inference(cls) -> "ExecutorSpec":
        return cls(kind="inference")

    @classmethod
    def compiled(cls, *, detect_anomaly: bool = False) -> "ExecutorSpec":
        return cls(kind="compiled", detect_anomaly=detect_anomaly)

    def with_overrides(self, **changes) -> "ExecutorSpec":
        return replace(self, **changes)


def make_executor(
    model,
    spec: ExecutorSpec,
    *,
    huber_delta: float = 1.0,
    kl_weight: float = 0.0,
    seed: int = 0,
    scaler=None,
    history: Optional[int] = None,
):
    """Build the :class:`Executor` described by ``spec`` over ``model``.

    ``huber_delta`` / ``kl_weight`` parameterize the training loss (unused
    by inference executors); ``seed`` feeds the parallel workers' RNG
    streams; ``scaler`` / ``history`` configure inference executors that
    serve raw-unit windows (see
    :class:`repro.exec.inference.InferenceExecutor`).
    """
    from .inference import InferenceExecutor
    from .parallel import ParallelExecutor
    from .serial import SerialExecutor

    if spec.kind == "serial":
        return SerialExecutor(
            model,
            huber_delta=huber_delta,
            kl_weight=kl_weight,
            detect_anomaly=spec.detect_anomaly,
        )
    if spec.kind == "compiled":
        from repro.compile import CompiledExecutor

        return CompiledExecutor(
            model,
            huber_delta=huber_delta,
            kl_weight=kl_weight,
            detect_anomaly=spec.detect_anomaly,
            scaler=scaler,
            history=history,
        )
    if spec.kind == "sharded":
        from .sharded import ShardedExecutor

        return ShardedExecutor(
            model,
            n_workers=spec.n_workers,
            start_method=spec.start_method,
            prefetch=spec.prefetch,
            detect_anomaly=spec.detect_anomaly,
            step_timeout=spec.step_timeout,
            seed=seed,
            huber_delta=huber_delta,
            kl_weight=kl_weight,
            scaler=scaler,
            history=history,
        )
    if spec.kind == "parallel":
        return ParallelExecutor(
            model,
            n_workers=spec.n_workers,
            start_method=spec.start_method,
            prefetch=spec.prefetch,
            detect_anomaly=spec.detect_anomaly,
            step_timeout=spec.step_timeout,
            seed=seed,
            huber_delta=huber_delta,
            kl_weight=kl_weight,
        )
    return InferenceExecutor(model, scaler=scaler, history=history)
