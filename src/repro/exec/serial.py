"""In-process executor: the classic forward/backward loop as an Executor.

This is the exact step the pre-``repro.exec`` Trainer ran inline — zero
the gradients, forward, loss (+ KL when the model exposes
``kl_divergence``), finite check *before* backward, backward — packaged
behind the :class:`repro.exec.Executor` contract so the serial path, the
parallel path, and the future compiled plan are interchangeable.  It holds
no external resources: ``open``/``close`` only drive the lifecycle state
machine.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Optional

import numpy as np

from ..core.loss import STWALoss
from ..tensor import Tensor, detect_anomaly
from .base import Batch, Executor, StepResult, Weights, eval_forward

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Forward/backward on the calling process, one batch at a time."""

    def __init__(
        self,
        model,
        *,
        huber_delta: float = 1.0,
        kl_weight: float = 0.0,
        detect_anomaly: bool = False,
        loss_fn: Optional[STWALoss] = None,
    ):
        super().__init__(model)
        self.detect_anomaly = detect_anomaly
        self.loss_fn = loss_fn or STWALoss(delta=huber_delta, kl_weight=kl_weight)
        self._kl_model = model if hasattr(model, "kl_divergence") else None

    def train_step(self, weights: Weights, batch: Batch) -> StepResult:
        """One forward/backward; gradients land on the model's parameters."""
        self._require_open("train_step")
        x, y = batch
        if weights is not None:
            self.model.load_state_dict(weights)
        start = time.perf_counter()
        target = Tensor(y)
        for parameter in self._parameters:
            parameter.zero_grad()
        guard = detect_anomaly() if self.detect_anomaly else nullcontext()
        with guard:
            prediction = self.model(Tensor(x))
            loss = self.loss_fn(prediction, target, model=self._kl_model)
            value = float(loss.item())
            if not np.isfinite(value):
                raise FloatingPointError(
                    f"training diverged: loss became {value}; lower the learning "
                    "rate or tighten grad_clip"
                )
            loss.backward()
        return StepResult(
            loss=value,
            grads=[parameter.grad for parameter in self._parameters],
            stats={"seconds": time.perf_counter() - start},
        )

    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        """Eval-mode inference forward in scaled model space."""
        self._require_open("predict")
        if weights is not None:
            self.model.load_state_dict(weights)
        return eval_forward(self.model, inputs)
