"""Sensor-sharded executor: split the *network*, not the batch.

:class:`ShardedExecutor` reuses the data-parallel machinery — persistent
:class:`repro.parallel.WorkerPool`, schema-v2 weight transport, the
finite-target-count all-reduce — but splits every batch along the sensor
axis into contiguous ranges (:func:`repro.parallel.shard_sensors`), so each
worker holds the *whole model* while only ever evaluating its slice of the
network.  That is the execution shape that scales N past one process:
activation memory per worker is ``O(N/K)`` while the graph-free SimST
track's parameters stay ``O(N·E)`` (see DESIGN.md §15 and
:class:`repro.training.CapacityPlanner`).

Exactness (why sensor shards reduce like batch shards)
------------------------------------------------------
The masked-Huber loss is a mean over *finite target elements*.  Sensors
partition those elements exactly like batch samples do, so the serial loss
is the finite-count-weighted mean of shard losses and the serial gradient
is the same weighted mean of shard gradients — the identical all-reduce
identity PR 5 proved for the batch axis, merely along axis 1.  Per-sensor
parameters (SimST's node embeddings) are consistent too: each worker's
embedding gradient is a full-size array that is zero outside its sensor
rows, so the weighted tree-reduce scatters every row's exact serial
gradient back onto the parent.

The one cross-sensor coupling SimST has — the proximity-aggregate input
channel — is computed **in the parent** on the full network
(:meth:`SimSTForecaster.augment`, pure NumPy) before slicing, so workers
receive pre-augmented windows and never need a neighbor's activations.

Axis selection
--------------
Only models declaring ``sensor_shardable = True`` (and exposing
``augment`` / ``set_sensor_shard``) split along sensors.  For every other
model — including ST-WA, whose :class:`SensorCorrelationAttention` mixes
across sensors inside the forward — the executor degrades to batch-axis
sharding, which is :class:`ParallelExecutor` semantics exactly.  The chosen
axis is exposed as :attr:`shard_axis` and stamped into step stats.

``predict`` fans out across the same pool (``("predict", ...)`` protocol
message) and reassembles with :func:`repro.parallel.unshard_sensors`,
with the scaler/rank/history bookkeeping of
:class:`repro.exec.InferenceExecutor` so :class:`repro.serve.ServingEngine`
can put a sharded executor directly behind a tenant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import Weights
from .parallel import ParallelExecutor

__all__ = ["ShardedExecutor"]


class ShardedExecutor(ParallelExecutor):
    """Sensor-axis (or fallback batch-axis) sharding over a WorkerPool."""

    def __init__(
        self,
        model,
        *,
        n_workers: int = 2,
        start_method: Optional[str] = None,
        prefetch: bool = True,
        detect_anomaly: bool = False,
        step_timeout: float = 300.0,
        seed: int = 0,
        huber_delta: float = 1.0,
        kl_weight: float = 0.0,
        scaler=None,
        history: Optional[int] = None,
    ):
        super().__init__(
            model,
            n_workers=n_workers,
            start_method=start_method,
            prefetch=prefetch,
            detect_anomaly=detect_anomaly,
            step_timeout=step_timeout,
            seed=seed,
            huber_delta=huber_delta,
            kl_weight=kl_weight,
        )
        self.scaler = scaler
        self.history = None if history is None else int(history)
        shardable = bool(getattr(model, "sensor_shardable", False))
        num_sensors = int(getattr(model, "num_sensors", 0))
        # a single-sensor network (or a non-shardable model) degrades to
        # batch-axis sharding, which is plain ParallelExecutor semantics
        self.shard_axis = "sensor" if shardable and num_sensors >= 2 else "batch"
        self._ranges: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # lifecycle: pool sized to the shard plan, workers pinned to ranges
    # ------------------------------------------------------------------ #
    def _acquire(self) -> None:
        if self.shard_axis != "sensor":
            super()._acquire()
            return
        from ..parallel import ParallelConfig, WorkerPool, sensor_shard_ranges

        self._ranges = sensor_shard_ranges(self.model.num_sensors, self.n_workers)
        self._pool = WorkerPool(
            self.model,
            ParallelConfig(
                n_workers=len(self._ranges),
                start_method=self.start_method,
                detect_anomaly=self.detect_anomaly,
                seed=self.seed,
                step_timeout=self.step_timeout,
            ),
            huber_delta=self.huber_delta,
            kl_weight=self.kl_weight,
            worker_extras=[{"sensor_shard": r} for r in self._ranges],
        )

    def _release(self) -> None:
        super()._release()
        self._ranges = []

    @property
    def shard_ranges(self) -> List[Tuple[int, int]]:
        """The ``[start, stop)`` sensor range each worker owns (open pools)."""
        return list(self._ranges)

    # ------------------------------------------------------------------ #
    # training: parent-side augmentation, sensor-axis split
    # ------------------------------------------------------------------ #
    def _make_shards(self, x: np.ndarray, y: np.ndarray):
        if self.shard_axis != "sensor":
            return super()._make_shards(x, y)
        augmented = self.model.augment(np.asarray(x, dtype=np.float64))
        return [
            (augmented[:, start:stop], y[:, start:stop])
            for start, stop in self._ranges
        ]

    def train_step(self, weights, batch):
        result = super().train_step(weights, batch)
        result.stats["shard_axis"] = self.shard_axis
        return result

    # ------------------------------------------------------------------ #
    # serving: shard-fanout prediction across the same pool
    # ------------------------------------------------------------------ #
    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        """Fan a forecast out over the shard workers and reassemble.

        Accepts ``(N, H, F)`` or ``(B, N, H, F)`` windows, applies the
        configured scaler around the forward like
        :class:`~repro.exec.inference.InferenceExecutor`, and always ships
        the current parent weights — the workers' copies are stale after
        any parent-side optimizer step.
        """
        self._require_open("predict")
        from ..parallel import unshard_sensors
        from ..training import checkpoint as checkpoint_module

        if weights is not None:
            self.model.load_state_dict(weights)
        window = np.asarray(inputs, dtype=np.float64)
        squeeze = window.ndim == 3
        if squeeze:
            window = window[None]
        if self.history is not None and (
            window.ndim != 4 or window.shape[2] != self.history
        ):
            raise ValueError(
                f"expected (B, N, {self.history}, F) window, got shape {inputs.shape}"
            )
        if self.scaler is not None:
            window = self.scaler.transform(window)
        weights_blob = checkpoint_module.dumps_state_dict(self.model.state_dict())
        if self.shard_axis == "sensor":
            augmented = self.model.augment(window)
            shards: Sequence[np.ndarray] = [
                augmented[:, start:stop] for start, stop in self._ranges
            ]
            forecast = unshard_sensors(self._pool.predict(weights_blob, shards))
        else:
            pieces = min(self._pool.n_workers, len(window))
            shards = [s for s in np.array_split(window, pieces) if len(s)]
            forecast = np.concatenate(
                self._pool.predict(weights_blob, shards), axis=0
            )
        if self.scaler is not None:
            forecast = self.scaler.inverse_transform(forecast)
        return forecast[0] if squeeze else forecast
