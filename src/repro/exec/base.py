"""The Executor contract: one step API under training and serving.

Historically the repo grew four divergent execution paths — the serial
forward/backward inside :class:`repro.training.Trainer`, the multiprocess
:class:`repro.parallel.WorkerPool` path, ``inference_mode`` prediction in
:class:`repro.serve.ForecasterArtifact`, and micro-batched serving in
:class:`repro.serve.ServingEngine` — each hand-threading its own weight
shipping, gradient handling, and eval-mode bookkeeping.  ``repro.exec``
collapses them onto one seam:

* :meth:`Executor.train_step(weights, batch) <Executor.train_step>` runs
  forward + backward on a ``(x, y)`` batch (both in scaled model space) and
  returns a :class:`StepResult` — the scalar loss, the per-parameter
  gradients (left on the model's parameters *and* returned), and a
  free-form ``stats`` dict of timings.
* :meth:`Executor.predict(weights, inputs) <Executor.predict>` runs a
  gradient-free forward pass and returns the outputs.
* :meth:`Executor.open` / :meth:`Executor.close` bracket resource
  ownership (worker processes, shared-memory buffers).  Opening an open
  executor or stepping a closed one raises :class:`ExecutorStateError`;
  ``close`` is idempotent and a closed executor may be re-opened.

``weights`` is either ``None`` — *use the model's current in-process
weights* — or a state dict to load first; parallel implementations ship it
to their workers, serial ones load it locally, so callers never care which
kind they hold.  Anything that wants to extend execution (a compiled
trace-once backend, sensor-sharded spatial ops, batched serving) implements
this interface once and every caller — Trainer, ServingEngine, the harness
benches — picks it up for free.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Batch",
    "Executor",
    "ExecutorError",
    "ExecutorStateError",
    "StepResult",
    "eval_forward",
]

#: one training batch in scaled model space: ``(x, y)`` float arrays
Batch = Tuple[np.ndarray, np.ndarray]

#: optional weights argument: ``None`` = the executor's current weights
Weights = Optional[Dict[str, np.ndarray]]


class ExecutorError(RuntimeError):
    """An executor was asked to do something it cannot do."""


class ExecutorStateError(ExecutorError):
    """Lifecycle violation: double-open, or step/predict outside open()."""


@dataclass
class StepResult:
    """What one :meth:`Executor.train_step` call produced.

    ``grads`` is aligned with ``model.parameters()``; entries are ``None``
    for parameters that received no gradient.  The same arrays are also
    left on ``parameter.grad``, so optimizer code that reads gradients off
    the parameters keeps working unchanged.
    """

    loss: float
    grads: List[Optional[np.ndarray]] = field(repr=False, default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)


def eval_forward(model, inputs: np.ndarray) -> np.ndarray:
    """One gradient-free forward pass; restores the model's train/eval mode.

    Dropout and latent sampling are switched off for the pass and the
    previous mode is restored afterward, so calling this mid-training never
    perturbs the run.  Runs under :class:`repro.tensor.inference_mode` —
    no graph construction, no gradient buffers, no op tracing — which is
    the fast path every prediction surface (Trainer.evaluate/predict,
    artifacts, serving) now shares.  Under an active ``repro.obs.profile``
    context it drops to :func:`repro.tensor.no_grad` instead, so forward
    ops still reach the profiler (inference_mode bypasses op dispatch
    entirely and would record nothing).
    """
    from ..tensor import Tensor, inference_mode, no_grad
    from ..tensor.ops import op_trace_active

    guard = no_grad if op_trace_active() else inference_mode
    was_training = model.training
    model.eval()
    try:
        with guard():
            return model(Tensor(np.asarray(inputs, dtype=np.float64))).numpy()
    finally:
        model.train(was_training)


class Executor(abc.ABC):
    """Abstract execution backend over one model.

    Subclasses implement :meth:`_acquire` / :meth:`_release` for resource
    ownership and the two step methods; the base class owns the lifecycle
    state machine and the context-manager protocol.
    """

    #: lifecycle states
    _CREATED, _OPEN, _CLOSED = "created", "open", "closed"

    def __init__(self, model):
        self.model = model
        self._parameters = model.parameters()
        self._state = self._CREATED

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_open(self) -> bool:
        return self._state == self._OPEN

    def open(self) -> "Executor":
        """Acquire resources (worker processes, buffers); returns ``self``.

        Opening an already-open executor raises
        :class:`ExecutorStateError`; re-opening a closed one is allowed and
        acquires fresh resources.
        """
        if self._state == self._OPEN:
            raise ExecutorStateError(f"{type(self).__name__} is already open")
        self._acquire()
        self._state = self._OPEN
        return self

    def close(self) -> None:
        """Release resources; idempotent and safe to call in any state."""
        if self._state != self._OPEN:
            self._state = self._CLOSED
            return
        try:
            self._release()
        finally:
            self._state = self._CLOSED

    def _require_open(self, what: str) -> None:
        if self._state != self._OPEN:
            raise ExecutorStateError(
                f"{type(self).__name__}.{what} needs an open executor "
                f"(state is {self._state!r}; call open() first)"
            )

    def _acquire(self) -> None:  # pragma: no cover - trivial default
        """Subclass hook: acquire resources.  Default: nothing to acquire."""

    def _release(self) -> None:  # pragma: no cover - trivial default
        """Subclass hook: release resources.  Default: nothing to release."""

    def __enter__(self) -> "Executor":
        if self._state != self._OPEN:
            self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the step contract
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def train_step(self, weights: Weights, batch: Batch) -> StepResult:
        """Forward + backward on ``batch``; gradients land on the model.

        ``weights`` of ``None`` uses the executor's current in-process
        weights; a state dict is loaded (or shipped to workers) first.
        Raises ``FloatingPointError`` when the loss is non-finite so the
        resilience layer's rollback/retry machinery works identically
        against every implementation.
        """

    @abc.abstractmethod
    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        """Gradient-free forward pass on ``inputs``; returns the outputs."""

    # ------------------------------------------------------------------ #
    # data plumbing
    # ------------------------------------------------------------------ #
    def make_batch_iterator(
        self,
        windows,
        *,
        batch_size: int,
        shuffle: bool = True,
        rng=None,
        max_batches: Optional[int] = None,
    ):
        """The training-batch source this executor prefers.

        The default is the in-process
        :class:`repro.data.windows.BatchIterator`; implementations that
        overlap batch assembly with compute (the parallel executor's
        shared-memory prefetcher) override this.  Both draw the epoch order
        from the caller's ``rng`` with identical consumption, so swapping
        executors never changes which samples land in which batch.
        """
        from ..data.windows import BatchIterator

        return BatchIterator(
            windows,
            batch_size=batch_size,
            shuffle=shuffle,
            rng=rng,
            max_batches=max_batches,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(model={type(self.model).__name__}, state={self._state!r})"
