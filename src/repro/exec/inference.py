"""Inference executor: the gradient-free fast path as an Executor.

Wraps :class:`repro.tensor.inference_mode` (no graph construction, no
gradient buffers, no op tracing) plus the window bookkeeping every
prediction surface used to hand-roll: optional raw↔scaled conversion
through a baked-in scaler, ``(N, H, F)`` vs ``(B, N, H, F)`` rank
handling, and history-length validation.

Three callers share it, so the step logic exists exactly once:

* :class:`repro.serve.ForecasterArtifact` builds one over its frozen model
  (``scaler`` set, ``history`` validated) and delegates ``predict`` to it;
* :class:`repro.serve.ServingEngine` routes both the micro-batched model
  path and the circuit-breaker persistence fallback through inference
  executors instead of reaching into artifact internals;
* :class:`repro.training.Trainer` evaluates and predicts through a
  scaler-less instance (its inputs are already in scaled model space).

``train_step`` always raises :class:`ExecutorError`: an inference executor
is the one place gradients must be impossible, which is what makes it safe
to share behind a serving replica.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Batch, Executor, ExecutorError, StepResult, Weights, eval_forward

__all__ = ["InferenceExecutor"]


class InferenceExecutor(Executor):
    """Prediction-only executor over an eval-mode forward pass.

    Parameters
    ----------
    scaler:
        Optional scaler applied around the forward pass (raw units in,
        raw units out).  ``None`` means inputs and outputs stay in the
        model's scaled space.
    history:
        Optional expected window length; when set, inputs whose time axis
        disagrees raise ``ValueError`` before touching the model.
    """

    def __init__(self, model, *, scaler=None, history: Optional[int] = None):
        super().__init__(model)
        self.scaler = scaler
        self.history = None if history is None else int(history)

    def train_step(self, weights: Weights, batch: Batch) -> StepResult:
        raise ExecutorError(
            "InferenceExecutor cannot train: it exists so serving replicas "
            "can never accumulate gradients; use a serial or parallel executor"
        )

    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        """Forecast from a history window (single snapshot or batch).

        ``inputs`` is ``(N, H, F)`` for one network snapshot or
        ``(B, N, H, F)`` for a batch; the result keeps the input's rank.
        With a scaler configured: scaling in, inference-mode forward,
        inverse scaling out — raw units end to end.
        """
        self._require_open("predict")
        if weights is not None:
            self.model.load_state_dict(weights)
        window = np.asarray(inputs, dtype=np.float64)
        squeeze = window.ndim == 3
        if squeeze:
            window = window[None]
        if self.history is not None and (
            window.ndim != 4 or window.shape[2] != self.history
        ):
            raise ValueError(
                f"expected (B, N, {self.history}, F) window, got shape {inputs.shape}"
            )
        if self.scaler is not None:
            window = self.scaler.transform(window)
        forecast = eval_forward(self.model, window)
        if self.scaler is not None:
            forecast = self.scaler.inverse_transform(forecast)
        return forecast[0] if squeeze else forecast
