"""Sliding-window sampling: turn ``(N, T, F)`` series into forecast samples.

A sample at anchor ``t`` pairs the history ``x[:, t-H+1 : t+1]`` with the
target ``x[:, t+1 : t+U+1]`` — exactly the problem definition in paper
Eq. 1.  Windows are indexed lazily (anchors only) and materialized per batch
to keep memory proportional to the batch, not the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class WindowSpec:
    """History length H and horizon U of the forecasting task."""

    history: int
    horizon: int

    def __post_init__(self):
        if self.history < 1 or self.horizon < 1:
            raise ValueError("history and horizon must be >= 1")


class SlidingWindowDataset:
    """Lazy sliding-window view over a ``(N, T, F)`` array.

    ``data`` should already be scaled; ``raw`` (optional) carries the
    unscaled values used as evaluation targets so metrics are computed in
    original units.
    """

    def __init__(self, data: np.ndarray, spec: WindowSpec, raw: Optional[np.ndarray] = None):
        if data.ndim != 3:
            raise ValueError(f"expected (N, T, F) array, got shape {data.shape}")
        total = data.shape[1]
        if total < spec.history + spec.horizon:
            raise ValueError(
                f"series length {total} too short for H={spec.history}, U={spec.horizon}"
            )
        self.data = data
        self.raw = raw if raw is not None else data
        if self.raw.shape != data.shape:
            raise ValueError("raw must have the same shape as data")
        self.spec = spec
        # anchors index the *last* history step; valid range per Eq. 1
        self.anchors = np.arange(spec.history - 1, total - spec.horizon)

    def __len__(self) -> int:
        return len(self.anchors)

    def sample(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize scaled inputs and *raw* targets for ``indices``.

        Returns ``x (B, N, H, F)`` and ``y (B, N, U, F)``.
        """
        spec = self.spec
        anchors = self.anchors[indices]
        x = np.stack([self.data[:, a - spec.history + 1 : a + 1] for a in anchors])
        y = np.stack([self.raw[:, a + 1 : a + 1 + spec.horizon] for a in anchors])
        return x, y

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        x, y = self.sample(np.array([index]))
        return x[0], y[0]


def chronological_split(
    data: np.ndarray,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(N, T, F)`` along time into train/val/test (paper: 60/20/20)."""
    if not 0 < train_fraction < 1 or not 0 < val_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if train_fraction + val_fraction >= 1:
        raise ValueError("train + val fractions must leave room for test")
    total = data.shape[1]
    train_end = int(total * train_fraction)
    val_end = int(total * (train_fraction + val_fraction))
    return data[:, :train_end], data[:, train_end:val_end], data[:, val_end:]


class BatchIterator:
    """Iterate over batches of a :class:`SlidingWindowDataset`."""

    def __init__(
        self,
        dataset: SlidingWindowDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        max_batches: Optional[int] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng()
        self.max_batches = max_batches

    def __len__(self) -> int:
        full = (len(self.dataset) + self.batch_size - 1) // self.batch_size
        return min(full, self.max_batches) if self.max_batches else full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        emitted = 0
        for start in range(0, len(order), self.batch_size):
            if self.max_batches is not None and emitted >= self.max_batches:
                return
            indices = order[start : start + self.batch_size]
            yield self.dataset.sample(indices)
            emitted += 1
