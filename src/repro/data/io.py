"""Dataset persistence: save/load simulated datasets, CSV export.

A release-quality dataset pipeline needs reproducible artifacts: these
helpers freeze a simulated :class:`TrafficDataset` to a single ``.npz``
(including the adjacency and scaler statistics) and export per-sensor CSVs
for inspection in external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from .datasets import TrafficDataset
from .graph_gen import RoadNetwork, SensorMeta
from .scalers import StandardScaler

import networkx as nx

PathLike = Union[str, Path]


def save_dataset(dataset: TrafficDataset, path: PathLike) -> Path:
    """Freeze a dataset bundle (splits, scaler, graph, metadata) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sensor_meta = [
        {
            "sensor_id": s.sensor_id,
            "corridor": s.corridor,
            "direction": s.direction,
            "position": s.position,
            "coordinates": list(s.coordinates),
        }
        for s in dataset.network.sensors
    ]
    header = json.dumps(
        {
            "name": dataset.name,
            "profile": dataset.profile,
            "scaler_mean": dataset.scaler.mean,
            "scaler_std": dataset.scaler.std,
            "sensors": sensor_meta,
        }
    )
    np.savez_compressed(
        path,
        train_raw=dataset.train_raw,
        val_raw=dataset.val_raw,
        test_raw=dataset.test_raw,
        adjacency=dataset.network.adjacency,
        header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_saved_dataset(path: PathLike) -> TrafficDataset:
    """Load a dataset frozen by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        header = json.loads(archive["header"].tobytes().decode("utf-8"))
        train_raw = archive["train_raw"]
        val_raw = archive["val_raw"]
        test_raw = archive["test_raw"]
        adjacency = archive["adjacency"]

    sensors = [
        SensorMeta(
            sensor_id=s["sensor_id"],
            corridor=s["corridor"],
            direction=s["direction"],
            position=s["position"],
            coordinates=tuple(s["coordinates"]),
        )
        for s in header["sensors"]
    ]
    graph = nx.DiGraph()
    for sensor in sensors:
        graph.add_node(sensor.sensor_id, **sensor.__dict__)
    rows, cols = np.nonzero(adjacency)
    for row, col in zip(rows, cols):
        graph.add_edge(int(row), int(col), weight=float(adjacency[row, col]))
    network = RoadNetwork(sensors=sensors, graph=graph, adjacency=adjacency)

    scaler = StandardScaler()
    scaler.mean = header["scaler_mean"]
    scaler.std = header["scaler_std"]
    return TrafficDataset(
        name=header["name"],
        profile=header["profile"],
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=network,
    )


def export_sensor_csv(dataset: TrafficDataset, sensor_id: int, path: PathLike, split: str = "train") -> Path:
    """Write one sensor's raw series (timestamp index, flow) to CSV."""
    raw = {"train": dataset.train_raw, "val": dataset.val_raw, "test": dataset.test_raw}
    if split not in raw:
        raise KeyError(f"split must be one of {sorted(raw)}")
    series = raw[split][sensor_id, :, 0]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["step", "flow"])
        writer.writerows(enumerate(series.tolist()))
    return path
