"""Synthetic road-network generation (networkx substrate).

Real PEMS deployments put loop detectors along highway corridors; sensors on
the same corridor and direction see strongly correlated, lagged traffic,
while different corridors have distinct daily profiles (paper Fig. 1).  We
generate networks with exactly that structure: a set of corridors, each a
directed chain of sensors, with two travel directions per corridor and a few
interchange links between corridors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class SensorMeta:
    """Static description of one sensor (node in the road graph)."""

    sensor_id: int
    corridor: int
    direction: int  # 0 = inbound (AM-peaked), 1 = outbound (PM-peaked)
    position: int  # index along the corridor (upstream -> downstream)
    coordinates: Tuple[float, float]


@dataclass
class RoadNetwork:
    """A generated road network: sensors, directed graph, adjacency."""

    sensors: List[SensorMeta]
    graph: nx.DiGraph
    adjacency: np.ndarray  # (N, N) weighted, directed (upstream -> downstream)

    @property
    def num_sensors(self) -> int:
        return len(self.sensors)

    def corridor_members(self, corridor: int, direction: int) -> List[int]:
        """Sensor ids along one corridor/direction, upstream first."""
        members = [s for s in self.sensors if s.corridor == corridor and s.direction == direction]
        members.sort(key=lambda s: s.position)
        return [s.sensor_id for s in members]


def generate_road_network(
    num_sensors: int,
    num_corridors: int = 4,
    seed: int = 0,
    interchange_probability: float = 0.15,
) -> RoadNetwork:
    """Generate a corridor-structured road network with ``num_sensors`` nodes.

    Sensors are distributed round-robin over ``num_corridors`` corridors and
    two directions per corridor.  Consecutive sensors in a corridor/direction
    are linked upstream->downstream with distance-decayed weights; a few
    random interchange edges connect different corridors, mimicking highway
    junctions.
    """
    if num_sensors < 2:
        raise ValueError("need at least 2 sensors")
    if num_corridors < 1:
        raise ValueError("need at least 1 corridor")
    rng = np.random.default_rng(seed)
    lanes = max(1, 2 * num_corridors)  # corridor x direction combinations
    sensors: List[SensorMeta] = []
    counters = [0] * lanes
    for sensor_id in range(num_sensors):
        lane = sensor_id % lanes
        corridor, direction = divmod(lane, 2)
        position = counters[lane]
        counters[lane] += 1
        # corridors fan out at distinct angles from a common origin
        angle = 2.0 * np.pi * corridor / num_corridors
        radius = 1.0 + position + 0.1 * rng.standard_normal()
        offset = 0.05 if direction == 0 else -0.05  # two carriageways
        x = radius * np.cos(angle) + offset * np.sin(angle)
        y = radius * np.sin(angle) - offset * np.cos(angle)
        sensors.append(SensorMeta(sensor_id, corridor, direction, position, (float(x), float(y))))

    graph = nx.DiGraph()
    for sensor in sensors:
        graph.add_node(sensor.sensor_id, **sensor.__dict__)

    adjacency = np.zeros((num_sensors, num_sensors))
    # chain each corridor/direction
    for corridor in range(num_corridors):
        for direction in (0, 1):
            chain = [s for s in sensors if s.corridor == corridor and s.direction == direction]
            chain.sort(key=lambda s: s.position)
            for upstream, downstream in zip(chain[:-1], chain[1:]):
                weight = float(np.exp(-0.5 * rng.random()))
                graph.add_edge(upstream.sensor_id, downstream.sensor_id, weight=weight)
                adjacency[upstream.sensor_id, downstream.sensor_id] = weight

    # interchanges between corridors at matching positions
    for sensor in sensors:
        if rng.random() < interchange_probability:
            other_corridor = int(rng.integers(num_corridors))
            if other_corridor == sensor.corridor:
                continue
            candidates = [
                s
                for s in sensors
                if s.corridor == other_corridor and abs(s.position - sensor.position) <= 1
            ]
            if candidates:
                target = candidates[int(rng.integers(len(candidates)))]
                weight = float(0.3 * np.exp(-0.5 * rng.random()))
                graph.add_edge(sensor.sensor_id, target.sensor_id, weight=weight)
                adjacency[sensor.sensor_id, target.sensor_id] = weight

    return RoadNetwork(sensors=sensors, graph=graph, adjacency=adjacency)
