"""Degraded-input handling: NaN masks and imputation for dead sensors.

Real PEMS deployments lose sensors routinely — streams go silent, report
garbage, or drop whole intervals.  This module turns such gaps (encoded as
NaN/Inf in the raw ``(N, T, F)`` series) into trainable inputs:

* :func:`impute_series` fills non-finite entries along the time axis using
  last-value carry-forward (``"last"``) or zeros (``"zero"``) and returns
  the validity mask alongside, so downstream losses/metrics can ignore the
  imputed positions (:func:`repro.tensor.masked_huber_loss`,
  :mod:`repro.training.metrics`).
* :func:`finite_mask` is the shared mask convention: ``1.0`` observed,
  ``0.0`` missing.

Fault injection for chaos drills lives in :mod:`repro.resilience.faults`
(:func:`~repro.resilience.faults.inject_sensor_dropout`), which builds a
degraded :class:`repro.data.TrafficDataset` on top of these primitives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: imputation strategies accepted by :func:`impute_series`
IMPUTE_METHODS = ("last", "zero")


def finite_mask(data: np.ndarray) -> np.ndarray:
    """Validity mask of ``data``: 1.0 where finite, 0.0 where missing."""
    return np.isfinite(data).astype(np.float64)


def impute_series(data: np.ndarray, method: str = "last") -> Tuple[np.ndarray, np.ndarray]:
    """Fill non-finite entries of an ``(N, T, F)`` series along time (axis 1).

    ``"last"`` carries the most recent observed value forward per sensor and
    feature (gaps before the first observation fall back to zero);
    ``"zero"`` substitutes zeros everywhere.  Returns ``(filled, mask)``
    where ``mask`` follows the :func:`finite_mask` convention and ``filled``
    is always a new array.
    """
    if method not in IMPUTE_METHODS:
        raise ValueError(f"unknown imputation method {method!r}; available: {IMPUTE_METHODS}")
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(f"expected (N, T, F) array, got shape {data.shape}")
    observed = np.isfinite(data)
    mask = observed.astype(np.float64)
    if observed.all():
        return data.copy(), mask
    if method == "zero":
        return np.where(observed, data, 0.0), mask
    # last-value carry-forward: for each position take the index of the most
    # recent observed step (running maximum of observed indices over time)
    time_index = np.arange(data.shape[1])[None, :, None]
    last_observed = np.where(observed, time_index, 0)
    np.maximum.accumulate(last_observed, axis=1, out=last_observed)
    filled = np.take_along_axis(data, last_observed, axis=1)
    # leading gaps point at index 0 which may itself be missing -> zero-fill
    return np.where(np.isfinite(filled), filled, 0.0), mask
