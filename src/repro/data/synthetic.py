"""Synthetic traffic-flow time series calibrated to PEMS characteristics.

Substitute for the proprietary-download PEMS03/04/07/08 datasets (offline
environment).  The generator reproduces the phenomena the paper's model is
designed to exploit, so the *relative* ordering of methods is preserved:

* **location-distinct daily profiles** (paper Fig. 1): each corridor draws
  its own profile — some have AM+PM peaks, others a single AM peak with a
  slow afternoon decay;
* **direction asymmetry**: inbound carriageways peak in the morning,
  outbound in the evening;
* **temporal regimes**: weekday vs weekend profiles differ (flatter, later,
  lower on weekends) — the signal temporal-aware parameters can exploit;
* **sensor correlations**: downstream flow follows upstream flow with a
  1-2 step lag along each corridor — the signal graph/sensor-correlation
  modules exploit;
* **incidents**: occasional capacity drops spanning a stretch of road, so
  patterns deviate from the daily template (motivating time-varying
  parameters);
* **measurement noise** at realistic levels.

Flow units are vehicles / 5 minutes with magnitudes matching PEMS districts
(tens to hundreds), so MAE/RMSE land in the same numeric range as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .graph_gen import RoadNetwork, generate_road_network

STEPS_PER_HOUR = 12  # 5-minute sampling, as in PEMS
STEPS_PER_DAY = 24 * STEPS_PER_HOUR
STEPS_PER_WEEK = 7 * STEPS_PER_DAY


@dataclass
class SyntheticTrafficConfig:
    """Knobs of the traffic simulator."""

    num_sensors: int = 24
    num_days: int = 21
    num_corridors: int = 4
    seed: int = 0
    base_flow_low: float = 120.0
    base_flow_high: float = 320.0
    noise_std: float = 8.0
    incident_rate_per_day: float = 0.25  # expected incidents per corridor per day
    incident_min_steps: int = 6  # 30 minutes
    incident_max_steps: int = 36  # 3 hours
    propagation_lag: int = 1  # steps of upstream->downstream delay
    propagation_strength: float = 0.35
    weekend_scale: float = 0.62
    start_weekday: int = 0  # 0 = Monday
    missing_rate: float = 0.0  # fraction of readings zeroed (sensor dropouts)


def _daily_profile_bimodal(hours: np.ndarray, am_peak: float, pm_peak: float, width: float) -> np.ndarray:
    """Two rush-hour bumps over a low nighttime base (Fig. 1 sensors 1-2)."""
    am = np.exp(-0.5 * ((hours - am_peak) / width) ** 2)
    pm = 0.9 * np.exp(-0.5 * ((hours - pm_peak) / width) ** 2)
    base = 0.18 + 0.12 * np.sin(np.pi * np.clip((hours - 6) / 14, 0, 1))
    return base + am + pm


def _daily_profile_decay(hours: np.ndarray, am_peak: float, width: float) -> np.ndarray:
    """One AM peak followed by a gradual decline (Fig. 1 sensors 3-4)."""
    am = np.exp(-0.5 * ((hours - am_peak) / width) ** 2)
    tail = 0.65 * np.clip((hours - am_peak) / (24 - am_peak), 0, 1)
    decline = np.where(hours > am_peak, np.maximum(0.75 - tail, 0.15), 0.2)
    return 0.15 + am + decline * (hours > am_peak)


def _weekend_profile(hours: np.ndarray, midday_peak: float) -> np.ndarray:
    """Single flat midday bump — leisure traffic."""
    return 0.2 + 0.7 * np.exp(-0.5 * ((hours - midday_peak) / 3.5) ** 2)


class TrafficSimulator:
    """Generates ``(N, T, F)`` traffic-flow series on a road network."""

    def __init__(self, config: Optional[SyntheticTrafficConfig] = None):
        self.config = config or SyntheticTrafficConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.network: RoadNetwork = generate_road_network(
            self.config.num_sensors,
            num_corridors=self.config.num_corridors,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------ #
    def generate(self) -> np.ndarray:
        """Produce the flow tensor ``(num_sensors, num_days * 288, 1)``."""
        cfg = self.config
        total_steps = cfg.num_days * STEPS_PER_DAY
        hours_of_day = (np.arange(total_steps) % STEPS_PER_DAY) / STEPS_PER_HOUR
        weekday = ((np.arange(total_steps) // STEPS_PER_DAY) + cfg.start_weekday) % 7
        is_weekend = weekday >= 5

        flows = np.zeros((cfg.num_sensors, total_steps))
        corridor_styles = self._corridor_styles()
        base_flows = self._rng.uniform(cfg.base_flow_low, cfg.base_flow_high, size=cfg.num_sensors)

        for sensor in self.network.sensors:
            style = corridor_styles[sensor.corridor]
            profile = self._sensor_profile(hours_of_day, is_weekend, style, sensor.direction)
            flows[sensor.sensor_id] = base_flows[sensor.sensor_id] * profile

        self._apply_propagation(flows)
        self._apply_incidents(flows, total_steps)
        flows += self._rng.normal(0.0, cfg.noise_std, size=flows.shape)
        np.maximum(flows, 0.0, out=flows)
        if cfg.missing_rate > 0:
            # PEMS loop detectors drop out; readings are recorded as 0 and
            # masked out of MAPE downstream (training.metrics)
            dropout = self._rng.random(flows.shape) < cfg.missing_rate
            flows[dropout] = 0.0
        return flows[..., None]

    # ------------------------------------------------------------------ #
    def _corridor_styles(self) -> list[dict]:
        """Each corridor draws its own profile family and peak hours."""
        styles = []
        for corridor in range(self.config.num_corridors):
            family = "bimodal" if corridor % 2 == 0 else "decay"
            styles.append(
                {
                    "family": family,
                    "am_peak": float(self._rng.uniform(7.2, 9.0)),
                    "pm_peak": float(self._rng.uniform(16.3, 18.2)),
                    "width": float(self._rng.uniform(1.1, 1.8)),
                    "weekend_peak": float(self._rng.uniform(12.0, 15.0)),
                }
            )
        return styles

    def _sensor_profile(
        self,
        hours: np.ndarray,
        is_weekend: np.ndarray,
        style: dict,
        direction: int,
    ) -> np.ndarray:
        if style["family"] == "bimodal":
            weekday_profile = _daily_profile_bimodal(hours, style["am_peak"], style["pm_peak"], style["width"])
            if direction == 1:  # outbound: swap peak dominance to the evening
                weekday_profile = _daily_profile_bimodal(
                    hours, style["pm_peak"], style["am_peak"], style["width"]
                )
        else:
            peak = style["am_peak"] if direction == 0 else style["pm_peak"]
            weekday_profile = _daily_profile_decay(hours, peak, style["width"])
        weekend_profile = self.config.weekend_scale * _weekend_profile(hours, style["weekend_peak"])
        return np.where(is_weekend, weekend_profile, weekday_profile)

    def _apply_propagation(self, flows: np.ndarray) -> None:
        """Mix lagged upstream flow into each downstream sensor along corridors."""
        lag = self.config.propagation_lag
        strength = self.config.propagation_strength
        for corridor in range(self.config.num_corridors):
            for direction in (0, 1):
                chain = self.network.corridor_members(corridor, direction)
                for upstream_id, downstream_id in zip(chain[:-1], chain[1:]):
                    lagged = np.roll(flows[upstream_id], lag)
                    lagged[:lag] = flows[upstream_id][:lag]
                    flows[downstream_id] = (1 - strength) * flows[downstream_id] + strength * lagged

    def _apply_incidents(self, flows: np.ndarray, total_steps: int) -> None:
        """Randomly drop capacity on a stretch of corridor for a while."""
        cfg = self.config
        expected = cfg.incident_rate_per_day * cfg.num_days * cfg.num_corridors
        num_incidents = int(self._rng.poisson(expected))
        for _ in range(num_incidents):
            corridor = int(self._rng.integers(cfg.num_corridors))
            direction = int(self._rng.integers(2))
            chain = self.network.corridor_members(corridor, direction)
            if len(chain) < 2:
                continue
            start_idx = int(self._rng.integers(len(chain)))
            affected = chain[start_idx : start_idx + 3]
            onset = int(self._rng.integers(total_steps - cfg.incident_max_steps - 1))
            duration = int(self._rng.integers(cfg.incident_min_steps, cfg.incident_max_steps + 1))
            severity = float(self._rng.uniform(0.35, 0.75))
            window = slice(onset, onset + duration)
            ramp = np.ones(duration)
            fade = max(1, duration // 4)
            ramp[:fade] = np.linspace(1.0, severity, fade)
            ramp[fade:] = severity
            ramp[-fade:] = np.linspace(severity, 1.0, fade)
            for sensor_id in affected:
                flows[sensor_id, window] *= ramp


def generate_traffic(config: Optional[SyntheticTrafficConfig] = None) -> tuple[np.ndarray, RoadNetwork]:
    """Convenience: simulate and return ``(flows (N, T, 1), network)``."""
    simulator = TrafficSimulator(config)
    return simulator.generate(), simulator.network
