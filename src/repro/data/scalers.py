"""Feature scaling fit on the training split only (no leakage)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Z-score normalization ``(x - mean) / std``.

    Fit over all sensors and timestamps of the training portion, matching
    standard practice in the traffic-forecasting literature (DCRNN, GWN).
    """

    def __init__(self):
        self.mean: Optional[float] = None
        self.std: Optional[float] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Compute statistics from ``data`` (any shape)."""
        self.mean = float(np.mean(data))
        std = float(np.std(data))
        self.std = std if std > 0 else 1.0
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (data - self.mean) / self.std

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return data * self.std + self.mean

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def _check_fitted(self) -> None:
        if self.mean is None:
            raise RuntimeError("StandardScaler used before fit()")


class MinMaxScaler:
    """Scale to ``[0, 1]`` using training-split extrema."""

    def __init__(self):
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        self.low = float(np.min(data))
        high = float(np.max(data))
        self.high = high if high > self.low else self.low + 1.0
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (data - self.low) / (self.high - self.low)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return data * (self.high - self.low) + self.low

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def _check_fitted(self) -> None:
        if self.low is None:
            raise RuntimeError("MinMaxScaler used before fit()")
