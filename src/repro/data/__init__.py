"""Traffic data substrate: simulator, datasets, windows, scalers."""

from .datasets import (
    DatasetSpec,
    TrafficDataset,
    available_datasets,
    dataset_spec,
    load_dataset,
    sensors_for_profile,
)
from .graph_gen import RoadNetwork, SensorMeta, generate_road_network
from .imputation import IMPUTE_METHODS, finite_mask, impute_series
from .io import export_sensor_csv, load_saved_dataset, save_dataset
from .scalers import MinMaxScaler, StandardScaler
from .synthetic import (
    STEPS_PER_DAY,
    STEPS_PER_HOUR,
    STEPS_PER_WEEK,
    SyntheticTrafficConfig,
    TrafficSimulator,
    generate_traffic,
)
from .windows import BatchIterator, SlidingWindowDataset, WindowSpec, chronological_split

__all__ = [
    "DatasetSpec",
    "TrafficDataset",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "sensors_for_profile",
    "RoadNetwork",
    "SensorMeta",
    "generate_road_network",
    "IMPUTE_METHODS",
    "finite_mask",
    "impute_series",
    "save_dataset",
    "load_saved_dataset",
    "export_sensor_csv",
    "StandardScaler",
    "MinMaxScaler",
    "SyntheticTrafficConfig",
    "TrafficSimulator",
    "generate_traffic",
    "STEPS_PER_DAY",
    "STEPS_PER_HOUR",
    "STEPS_PER_WEEK",
    "WindowSpec",
    "SlidingWindowDataset",
    "BatchIterator",
    "chronological_split",
]
