"""Dataset registry: simulated stand-ins for PEMS03/04/07/08.

The paper evaluates on four PEMS traffic-flow datasets (Table IV).  The raw
data requires an online Caltrans account, so this module exposes simulated
datasets with the same naming, sensor counts, and durations — plus scaled
"fast" profiles for CI and benchmarks (the relative comparisons that define
the paper's results are preserved at small scale; see DESIGN.md §1).

Profiles:

* ``fast``   — small N and ~2-3 weeks, for tests/benchmarks (seconds to train)
* ``medium`` — intermediate scale for the examples
* ``paper``  — the paper's N and duration (hours of CPU; provided for
  completeness)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .graph_gen import RoadNetwork
from .scalers import StandardScaler
from .synthetic import SyntheticTrafficConfig, TrafficSimulator
from .windows import chronological_split


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one (simulated) PEMS dataset."""

    name: str
    paper_sensors: int
    paper_days: int
    seed: int
    corridors: int


_REGISTRY: Dict[str, DatasetSpec] = {
    # durations: PEMS03 3 months, PEMS04 2, PEMS07 4, PEMS08 2 (paper Table IV)
    "PEMS03": DatasetSpec("PEMS03", paper_sensors=358, paper_days=91, seed=3, corridors=8),
    "PEMS04": DatasetSpec("PEMS04", paper_sensors=307, paper_days=59, seed=4, corridors=8),
    "PEMS07": DatasetSpec("PEMS07", paper_sensors=883, paper_days=120, seed=7, corridors=12),
    "PEMS08": DatasetSpec("PEMS08", paper_sensors=170, paper_days=62, seed=8, corridors=6),
}

_PROFILES: Dict[str, Tuple[float, int]] = {
    # (sensor_scale, days): sensors are scaled down proportionally per dataset
    # so PEMS07 remains the largest, PEMS08 the smallest — size *ordering*
    # matters for the OOM result in Table VI.
    "fast": (0.06, 15),
    "medium": (0.15, 28),
    "paper": (1.0, -1),  # -1 = use the paper's duration
}


@dataclass
class TrafficDataset:
    """A ready-to-train dataset bundle.

    ``train/val/test`` are scaled ``(N, T, F)`` arrays; ``*_raw`` hold the
    original units for metric computation; ``scaler`` converts predictions
    back (fit on train only).
    """

    name: str
    profile: str
    train: np.ndarray
    val: np.ndarray
    test: np.ndarray
    train_raw: np.ndarray
    val_raw: np.ndarray
    test_raw: np.ndarray
    scaler: StandardScaler
    network: RoadNetwork

    @property
    def num_sensors(self) -> int:
        return self.train.shape[0]

    @property
    def adjacency(self) -> np.ndarray:
        return self.network.adjacency


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the registry entry for ``name`` (case-insensitive)."""
    key = name.upper().replace("-SIM", "")
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _REGISTRY[key]


def sensors_for_profile(name: str, profile: str) -> int:
    """Number of sensors the simulated dataset will have under ``profile``."""
    spec = dataset_spec(name)
    scale, _ = _profile(profile)
    return max(8, int(round(spec.paper_sensors * scale)))


def load_dataset(
    name: str,
    profile: str = "fast",
    seed_offset: int = 0,
) -> TrafficDataset:
    """Simulate and split a PEMS-like dataset.

    Parameters
    ----------
    name:
        One of ``PEMS03``, ``PEMS04``, ``PEMS07``, ``PEMS08`` (optionally
        with a ``-sim`` suffix).
    profile:
        ``fast`` | ``medium`` | ``paper`` — controls N and duration.
    seed_offset:
        Shift the simulation seed (for repeated-trial experiments).
    """
    spec = dataset_spec(name)
    scale, days = _profile(profile)
    num_sensors = max(8, int(round(spec.paper_sensors * scale)))
    num_days = spec.paper_days if days < 0 else days
    corridors = max(2, int(round(spec.corridors * (0.5 if profile == "fast" else 1.0))))
    config = SyntheticTrafficConfig(
        num_sensors=num_sensors,
        num_days=num_days,
        num_corridors=corridors,
        seed=spec.seed + 1000 * seed_offset,
    )
    simulator = TrafficSimulator(config)
    flows = simulator.generate()

    train_raw, val_raw, test_raw = chronological_split(flows)
    scaler = StandardScaler().fit(train_raw)
    return TrafficDataset(
        name=spec.name,
        profile=profile,
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=simulator.network,
    )


def _profile(profile: str) -> Tuple[float, int]:
    if profile not in _PROFILES:
        raise KeyError(f"unknown profile {profile!r}; available: {sorted(_PROFILES)}")
    return _PROFILES[profile]
