"""Graph WaveNet-lite [22].

Defining mechanisms kept: dilated causal temporal convolutions with gated
activations, a *learned adaptive adjacency* (node embeddings) alongside the
given road graph, and skip connections aggregated into the predictor.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    AdaptiveAdjacency,
    GatedTemporalConv,
    GraphConv,
    Linear,
    Module,
    ModuleList,
)
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class GWNLayer(Module):
    """Gated dilated TCN + dual graph convolution (fixed + adaptive)."""

    def __init__(self, channels: int, adj: np.ndarray, dilation: int, adaptive: AdaptiveAdjacency, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.temporal = GatedTemporalConv(channels, channels, kernel_size=2, dilation=dilation, rng=rng)
        self.fixed_graph = GraphConv(channels, channels, adj, rng=rng)
        self.adaptive = adaptive
        self.adaptive_proj = Linear(channels, channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.temporal(x)
        spatial_in = ops.swapaxes(out, 1, 2)  # (B, T, N, C)
        fixed = self.fixed_graph(spatial_in)
        adaptive_adj = self.adaptive()
        adaptive = self.adaptive_proj(ops.matmul(adaptive_adj, spatial_in))
        mixed = ops.swapaxes(ops.relu(fixed + adaptive), 1, 2)
        return mixed + out  # residual


class GWNForecaster(Module):
    """Stacked GWN layers with exponentially growing dilation."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        channels: int = 16,
        num_layers: int = 3,
        embed_dim: int = 8,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.input_proj = Linear(in_features, channels, rng=rng)
        self.adaptive = AdaptiveAdjacency(num_sensors, embed_dim=embed_dim, rng=rng)
        self.layers = ModuleList(
            GWNLayer(channels, adj, dilation=2**i, adaptive=self.adaptive, rng=rng) for i in range(num_layers)
        )
        self.skip_projs = ModuleList(Linear(channels, channels, rng=rng) for _ in range(num_layers))
        self.head = PredictorHead(channels, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        hidden = self.input_proj(x)
        skip_total = None
        for layer, proj in zip(self.layers, self.skip_projs):
            hidden = layer(hidden)
            skip = proj(hidden[:, :, -1, :])  # contribution of the last step
            skip_total = skip if skip_total is None else skip_total + skip
        return self.head(ops.relu(skip_total))
