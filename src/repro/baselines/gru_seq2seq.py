"""Plain GRU forecaster — the spatio-temporal agnostic RNN base of Table VII.

One GRU shared across all sensors (sensors ride along the batch dimension),
so the parameters are explicitly spatial-agnostic; no sensor correlation is
modeled.  The paper's GRU+S / GRU+ST enhancements live in
:mod:`repro.core.st_gru`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import GRU, Module
from ..tensor import Tensor
from .base import PredictorHead, check_input


class GRUForecaster(Module):
    """GRU encoder + MLP predictor per sensor."""

    def __init__(
        self,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 24,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.gru = GRU(in_features, hidden_size, rng=rng)
        self.head = PredictorHead(hidden_size, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        _, last_hidden = self.gru(x)  # (B, N, hidden)
        return self.head(last_hidden)
