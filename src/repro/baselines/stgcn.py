"""STGCN-lite: spatio-temporal graph convolutional network [29]/[23].

Keeps the sandwich block structure that defines STGCN — gated temporal
convolution, Chebyshev graph convolution, gated temporal convolution — with
two stacked blocks and the shared predictor head.
"""

from __future__ import annotations

import numpy as np

from ..nn import ChebGraphConv, GatedTemporalConv, LayerNorm, Module, ModuleList
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class STGCNBlock(Module):
    """Temporal conv -> graph conv -> temporal conv (the 'sandwich')."""

    def __init__(self, in_channels: int, hidden: int, adj: np.ndarray, cheb_order: int = 2, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.temporal1 = GatedTemporalConv(in_channels, hidden, kernel_size=3, rng=rng)
        self.graph = ChebGraphConv(hidden, hidden, adj, order=cheb_order, rng=rng)
        self.temporal2 = GatedTemporalConv(hidden, hidden, kernel_size=3, rng=rng)
        self.norm = LayerNorm(hidden)

    def forward(self, x: Tensor) -> Tensor:
        """``(B, N, T, C)`` -> ``(B, N, T, hidden)``."""
        out = self.temporal1(x)
        # graph conv mixes the sensor axis: move N next to features
        mixed = ops.swapaxes(out, 1, 2)  # (B, T, N, hidden)
        mixed = ops.relu(self.graph(mixed))
        out = ops.swapaxes(mixed, 1, 2)
        out = self.temporal2(out)
        return self.norm(out)


class STGCNForecaster(Module):
    """Two STGCN blocks + MLP predictor over the flattened time axis."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden: int = 16,
        num_blocks: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.blocks = ModuleList()
        channels = in_features
        for _ in range(num_blocks):
            self.blocks.append(STGCNBlock(channels, hidden, adj, rng=rng))
            channels = hidden
        self.head = PredictorHead(history * hidden, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = x
        for block in self.blocks:
            hidden = block(hidden)
        flat = ops.reshape(hidden, (batch, sensors, history * hidden.shape[-1]))
        return self.head(flat)
