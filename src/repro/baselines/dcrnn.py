"""DCRNN-lite: diffusion-convolutional recurrent network [17].

The defining mechanism — GRU gates computed with bidirectional diffusion
graph convolution over the road network instead of dense matmuls — is kept;
the seq2seq decoder of the original is replaced by the shared MLP predictor
head for capacity parity with the other models in the study.
"""

from __future__ import annotations

import numpy as np

from ..nn import DiffusionGraphConv, Module
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class DCGRUCell(Module):
    """GRU cell whose gate transforms are diffusion graph convolutions."""

    def __init__(self, in_features: int, hidden_size: int, adj: np.ndarray, steps: int = 2, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.gate_conv = DiffusionGraphConv(in_features + hidden_size, 2 * hidden_size, adj, steps=steps, rng=rng)
        self.candidate_conv = DiffusionGraphConv(in_features + hidden_size, hidden_size, adj, steps=steps, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """``x (B, N, F)``, ``h (B, N, hidden)`` -> next hidden."""
        combined = ops.concat([x, h], axis=-1)
        gates = ops.sigmoid(self.gate_conv(combined))
        reset = gates[..., : self.hidden_size]
        update = gates[..., self.hidden_size :]
        candidate = ops.tanh(self.candidate_conv(ops.concat([x, reset * h], axis=-1)))
        return update * h + (1.0 - update) * candidate


class DCRNNSeq2Seq(Module):
    """Full DCRNN: diffusion-conv GRU encoder + autoregressive decoder.

    The original architecture [17]: a decoder DCGRU unrolls the horizon,
    feeding back its own one-step predictions; during training, *scheduled
    sampling* mixes ground-truth feedback in with probability that decays
    over training (``teacher_forcing`` is set per-call by the caller).
    """

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 16,
        diffusion_steps: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.horizon = horizon
        self.in_features = in_features
        self.encoder = DCGRUCell(in_features, hidden_size, adj, steps=diffusion_steps, rng=rng)
        self.decoder = DCGRUCell(in_features, hidden_size, adj, steps=diffusion_steps, rng=rng)
        self.output_proj = DiffusionGraphConv(hidden_size, in_features, adj, steps=1, rng=rng)
        self._rng = rng

    def forward(self, x: Tensor, targets: Tensor = None, teacher_forcing: float = 0.0) -> Tensor:
        """Encode the history, then decode ``horizon`` steps autoregressively.

        ``targets`` (scaled ``(B, N, U, F)``) enables scheduled sampling:
        each decoder step uses the ground truth as input with probability
        ``teacher_forcing`` (training only).
        """
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = Tensor(np.zeros((batch, sensors, self.encoder.hidden_size)))
        for t in range(history):
            hidden = self.encoder(x[:, :, t, :], hidden)

        step_input = x[:, :, -1, :]  # GO symbol: the last observation
        outputs = []
        for t in range(self.horizon):
            hidden = self.decoder(step_input, hidden)
            prediction = self.output_proj(hidden)
            outputs.append(prediction)
            use_truth = (
                self.training
                and targets is not None
                and teacher_forcing > 0.0
                and self._rng.random() < teacher_forcing
            )
            if self.training and targets is not None and teacher_forcing > 0.0:
                # scheduled sampling branches on an RNG draw outside the op
                # stream — a compiled plan would freeze one branch choice
                ops.notify_compile_unsupported("DCRNN: teacher-forcing coin flip")
            step_input = targets[:, :, t, :] if use_truth else prediction
        return ops.stack(outputs, axis=2)


class DCRNNForecaster(Module):
    """Diffusion-convolutional GRU encoder + MLP predictor."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 16,
        diffusion_steps: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.num_sensors = num_sensors
        self.cell = DCGRUCell(in_features, hidden_size, adj, steps=diffusion_steps, rng=rng)
        self.head = PredictorHead(hidden_size, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = Tensor(np.zeros((batch, sensors, self.cell.hidden_size)))
        for t in range(history):
            hidden = self.cell(x[:, :, t, :], hidden)
        return self.head(hidden)
