"""meta-LSTM [42]: temporal-aware, spatial-agnostic baseline.

The defining mechanism: a *meta* LSTM runs alongside a base LSTM; the meta
hidden state — which varies across time — generates time-varying
modulations of the base LSTM's gate pre-activations.  No sensor correlation
is modeled (the reason it trails every other baseline in Table IV).
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, LSTMCell, Module
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class MetaLSTMForecaster(Module):
    """Base LSTM with meta-LSTM-generated time-varying gate modulation."""

    def __init__(
        self,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 16,
        meta_size: int = 8,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.hidden_size = hidden_size
        self.meta_size = meta_size
        self.base = LSTMCell(in_features, hidden_size, rng=rng)
        self.meta = LSTMCell(in_features, meta_size, rng=rng)
        # meta hidden -> scale & shift of the base LSTM's 4h pre-activations
        self.modulator = MLP([meta_size, 16, 2 * 4 * hidden_size], activation="relu", rng=rng)
        self.head = PredictorHead(hidden_size, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        h = Tensor(np.zeros((batch, sensors, self.hidden_size)))
        c = Tensor(np.zeros((batch, sensors, self.hidden_size)))
        mh = Tensor(np.zeros((batch, sensors, self.meta_size)))
        mc = Tensor(np.zeros((batch, sensors, self.meta_size)))
        n = self.hidden_size
        for t in range(history):
            step = x[:, :, t, :]
            mh, mc = self.meta(step, (mh, mc))
            modulation = self.modulator(mh)  # time-varying parameters
            scale = 1.0 + 0.1 * ops.tanh(modulation[..., : 4 * n])
            shift = 0.1 * ops.tanh(modulation[..., 4 * n :])
            gates = (
                ops.matmul(step, self.base.weight_x)
                + ops.matmul(h, self.base.weight_h)
                + self.base.bias
            ) * scale + shift
            input_gate = ops.sigmoid(gates[..., :n])
            forget_gate = ops.sigmoid(gates[..., n : 2 * n])
            cell_update = ops.tanh(gates[..., 2 * n : 3 * n])
            output_gate = ops.sigmoid(gates[..., 3 * n :])
            c = forget_gate * c + input_gate * cell_update
            h = output_gate * ops.tanh(c)
        return self.head(h)
