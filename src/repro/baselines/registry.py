"""Model zoo: build any model in the paper's tables by name.

Names match the paper's column headers (case-insensitive):

ST-agnostic  — LongFormer, DCRNN, STGCN, STG2Seq, GWN, STSGCN, ASTGNN,
               STFGNN, GRU, ATT
S-aware      — EnhanceNet, AGCRN, GRU+S, ATT+S
T-aware      — meta-LSTM
ST-aware     — ST-WA, GRU+ST, ATT+ST
Ablations    — SA, WA-1, WA, S-WA, ST-WA-det, ST-WA-mean
Classical    — Persistence, WindowMean, VAR

Construction API
----------------
Builders take a single keyword-friendly :class:`BuildSpec` — dataset, task
shape, seed, and free-form hyper-parameter ``overrides``::

    spec = BuildSpec(dataset=ds, history=12, horizon=12, seed=0,
                     overrides={"model_dim": 32})
    model = build_from_spec("st-wa", spec)

The legacy positional contract ``builder(dataset, history, horizon, seed)``
is no longer accepted: :func:`register_model` rejects it with a
``TypeError`` naming the replacement.  (It was adapted with a
``DeprecationWarning`` for one release.)  :func:`build_model` keeps its
historical positional signature on top of the spec API.

Every builder returns a model obeying the common forecaster contract
(scaled ``(B, N, H, F)`` -> scaled ``(B, N, U, F)``).  ``MODEL_FAMILIES``
maps each name onto the analytic memory-model family used for the Table VI
OOM reproduction.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from ..core import (
    SimSTForecaster,
    STAttentionConfig,
    STAwareTCN,
    STTCNConfig,
    STAwareGRU,
    STAwareTransformer,
    STGRUConfig,
    make_deterministic_st_wa,
    make_flow_st_wa,
    make_mean_aggregator_st_wa,
    make_s_wa,
    make_st_wa,
    make_wa,
    make_wa1,
)
from ..data.datasets import TrafficDataset
from ..nn import Module
from .agcrn import AGCRNForecaster
from .astgnn import ASTGNNForecaster
from .classical import PersistenceForecaster, VARForecaster, WindowMeanForecaster
from .dcrnn import DCRNNForecaster, DCRNNSeq2Seq
from .enhancenet import EnhanceNetForecaster
from .gru_seq2seq import GRUForecaster
from .gwn import GWNForecaster
from .meta_lstm import MetaLSTMForecaster
from .stfgnn import STFGNNForecaster
from .stg2seq import STG2SeqForecaster
from .stgcn import STGCNForecaster
from .stsgcn import STSGCNForecaster
from .tcn import TCNForecaster
from .transformer import ATTForecaster, LongFormerForecaster


@dataclass(frozen=True, eq=False)
class BuildSpec:
    """Everything a builder needs, passed by keyword.

    Parameters
    ----------
    dataset:
        The target :class:`TrafficDataset` (sensors, adjacency, splits).
    history / horizon:
        Input window length H and forecast length U.
    seed:
        Weight-initialization seed.
    overrides:
        Free-form hyper-parameter overrides forwarded to the underlying
        model constructor (e.g. ``{"model_dim": 32}`` for the ST-WA family).
        Unknown keys raise ``TypeError`` at construction, on purpose.
    """

    dataset: TrafficDataset
    history: int
    horizon: int
    seed: int = 0
    overrides: Mapping[str, object] = field(default_factory=dict)

    def replace(self, **changes) -> "BuildSpec":
        """Return a copy with the given fields swapped out."""
        values = {
            "dataset": self.dataset,
            "history": self.history,
            "horizon": self.horizon,
            "seed": self.seed,
            "overrides": self.overrides,
        }
        values.update(changes)
        return BuildSpec(**values)


#: the builder contract: one keyword-friendly spec in, a forecaster out
Builder = Callable[[BuildSpec], Module]


def _looks_legacy(builder: Callable) -> bool:
    """Detect the removed 4-positional-argument contract (for the error)."""
    try:
        signature = inspect.signature(builder, follow_wrapped=False)
    except (TypeError, ValueError):
        return False
    parameters = [
        p
        for p in signature.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(parameters) >= 4


def register_model(name: str, builder: Callable, family: Optional[str] = None) -> None:
    """Register (or replace) a builder under ``name`` (case-insensitive).

    Builders take one :class:`BuildSpec`.  The pre-redesign positional
    contract ``builder(dataset, history, horizon, seed)`` is rejected with
    a ``TypeError`` — wrap it yourself::

        register_model(name, lambda spec: old(spec.dataset, spec.history,
                                              spec.horizon, spec.seed))
    """
    if _looks_legacy(builder):
        raise TypeError(
            f"builder for {name!r} uses the removed positional contract "
            "(dataset, history, horizon, seed); register a callable taking "
            "a single BuildSpec instead"
        )
    MODEL_BUILDERS[name.lower()] = builder
    if family is not None:
        MODEL_FAMILIES[name.lower()] = family


# --------------------------------------------------------------------- #
# in-repo builders (all new-style: one BuildSpec in)
# --------------------------------------------------------------------- #
#: shared hyper-parameters of the ST-WA family at reproduction scale
_ST_WA_DEFAULTS = dict(model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196)
_WA_DEFAULTS = dict(model_dim=24, skip_dim=48, predictor_hidden=196)


def _st_wa_family(factory, defaults):
    def build(spec: BuildSpec) -> Module:
        kwargs = dict(defaults)
        kwargs.update(spec.overrides)
        return factory(
            spec.dataset.num_sensors,
            history=spec.history,
            horizon=spec.horizon,
            seed=spec.seed,
            **kwargs,
        )

    return build


def _att_enhanced(mode):
    def build(spec: BuildSpec) -> Module:
        config = STAttentionConfig(
            num_sensors=spec.dataset.num_sensors,
            history=spec.history,
            horizon=spec.horizon,
            latent_mode=mode,
            seed=spec.seed,
            **spec.overrides,
        )
        return STAwareTransformer(config)

    return build


def _gru_enhanced(mode):
    def build(spec: BuildSpec) -> Module:
        config = STGRUConfig(
            num_sensors=spec.dataset.num_sensors,
            history=spec.history,
            horizon=spec.horizon,
            latent_mode=mode,
            seed=spec.seed,
            **spec.overrides,
        )
        return STAwareGRU(config)

    return build


def _tcn_enhanced(mode):
    def build(spec: BuildSpec) -> Module:
        config = STTCNConfig(
            num_sensors=spec.dataset.num_sensors,
            history=spec.history,
            horizon=spec.horizon,
            latent_mode=mode,
            seed=spec.seed,
            **spec.overrides,
        )
        return STAwareTCN(config)

    return build


def _var(spec: BuildSpec) -> Module:
    model = VARForecaster(spec.dataset.num_sensors, spec.history, spec.horizon, **spec.overrides)
    model.fit(spec.dataset.train)
    return model


def _plain(factory):
    """Builder for models shaped ``factory(history, horizon, seed=...)``."""

    def build(spec: BuildSpec) -> Module:
        return factory(spec.history, spec.horizon, seed=spec.seed, **spec.overrides)

    return build


def _graph(factory):
    """Builder for models shaped ``factory(N, adjacency, history, horizon, seed=...)``."""

    def build(spec: BuildSpec) -> Module:
        return factory(
            spec.dataset.num_sensors,
            spec.dataset.adjacency,
            spec.history,
            spec.horizon,
            seed=spec.seed,
            **spec.overrides,
        )

    return build


def _persistence(spec: BuildSpec) -> Module:
    return PersistenceForecaster(spec.history, spec.horizon, **spec.overrides)


def _windowmean(spec: BuildSpec) -> Module:
    return WindowMeanForecaster(spec.history, spec.horizon, **spec.overrides)


def _agcrn(spec: BuildSpec) -> Module:
    return AGCRNForecaster(spec.dataset.num_sensors, spec.history, spec.horizon, seed=spec.seed, **spec.overrides)


def _stfgnn(spec: BuildSpec) -> Module:
    return STFGNNForecaster(
        spec.dataset.num_sensors,
        spec.dataset.adjacency,
        spec.dataset.train,
        spec.history,
        spec.horizon,
        seed=spec.seed,
        **spec.overrides,
    )


MODEL_BUILDERS: Dict[str, Builder] = {
    # classical
    "persistence": _persistence,
    "windowmean": _windowmean,
    "var": _var,
    # ST-agnostic deep baselines
    "gru": _plain(GRUForecaster),
    "tcn": _plain(TCNForecaster),
    "att": _plain(ATTForecaster),
    "sa": _plain(ATTForecaster),  # Table VIII alias
    "longformer": _plain(LongFormerForecaster),
    "dcrnn": _graph(DCRNNForecaster),
    "dcrnn-seq2seq": _graph(DCRNNSeq2Seq),
    "stgcn": _graph(STGCNForecaster),
    "stg2seq": _graph(STG2SeqForecaster),
    "gwn": _graph(GWNForecaster),
    "stsgcn": _graph(STSGCNForecaster),
    "astgnn": _graph(ASTGNNForecaster),
    "stfgnn": _stfgnn,
    # spatial-aware
    "enhancenet": _graph(EnhanceNetForecaster),
    "agcrn": _agcrn,
    "gru+s": _gru_enhanced("spatial"),
    "att+s": _att_enhanced("spatial"),
    "tcn+s": _tcn_enhanced("spatial"),
    # temporal-aware
    "meta-lstm": _plain(MetaLSTMForecaster),
    # spatio-temporal aware (ours)
    "st-wa": _st_wa_family(make_st_wa, _ST_WA_DEFAULTS),
    "gru+st": _gru_enhanced("st"),
    "att+st": _att_enhanced("st"),
    "tcn+st": _tcn_enhanced("st"),
    # ablations
    "s-wa": _st_wa_family(make_s_wa, _ST_WA_DEFAULTS),
    "wa": _st_wa_family(make_wa, _WA_DEFAULTS),
    "wa-1": _st_wa_family(make_wa1, _WA_DEFAULTS),
    "st-wa-det": _st_wa_family(make_deterministic_st_wa, _ST_WA_DEFAULTS),
    "st-wa-mean": _st_wa_family(make_mean_aggregator_st_wa, _ST_WA_DEFAULTS),
    # extension: normalizing-flow latents (the paper's stated future work)
    "st-wa-flow": _st_wa_family(make_flow_st_wa, _ST_WA_DEFAULTS),
    # extension: graph-free per-sensor track (SimST), sensor-shardable
    "simst": _graph(SimSTForecaster),
}

#: architecture family per model, for the analytic memory model (Table VI)
MODEL_FAMILIES: Dict[str, str] = {
    "persistence": "rnn",
    "windowmean": "rnn",
    "var": "rnn",
    "gru": "rnn",
    "tcn": "graph_conv",
    "tcn+s": "graph_conv",
    "tcn+st": "graph_conv",
    "att": "attention",
    "sa": "attention",
    "longformer": "attention",
    "dcrnn": "rnn",
    "dcrnn-seq2seq": "rnn",
    "stgcn": "graph_conv",
    "stg2seq": "graph_conv",
    "gwn": "graph_conv",
    "stsgcn": "graph_conv",
    "astgnn": "attention",
    "stfgnn": "stfgnn",
    "enhancenet": "enhancenet",
    "agcrn": "agcrn",
    "gru+s": "rnn",
    "att+s": "attention",
    "meta-lstm": "rnn",
    "st-wa": "window_attention",
    "gru+st": "rnn",
    "att+st": "attention",
    "s-wa": "window_attention",
    "wa": "window_attention",
    "wa-1": "window_attention",
    "st-wa-det": "window_attention",
    "st-wa-mean": "window_attention",
    "st-wa-flow": "window_attention",
    "simst": "per_sensor",
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_from_spec` / :func:`build_model`."""
    return sorted(MODEL_BUILDERS)


def build_from_spec(name: str, spec: BuildSpec) -> Module:
    """Instantiate a model by its paper name from a :class:`BuildSpec`."""
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_BUILDERS[key](spec)


def build_model(
    name: str,
    dataset: TrafficDataset,
    history: int,
    horizon: int,
    seed: int = 0,
    overrides: Optional[Mapping[str, object]] = None,
) -> Module:
    """Positional convenience wrapper over :func:`build_from_spec`."""
    spec = BuildSpec(
        dataset=dataset,
        history=history,
        horizon=horizon,
        seed=seed,
        overrides=dict(overrides or {}),
    )
    return build_from_spec(name, spec)


def model_family(name: str) -> str:
    """Memory-model family of a model name (see :mod:`repro.training.memory`)."""
    key = name.lower()
    if key not in MODEL_FAMILIES:
        raise KeyError(f"unknown model {name!r}")
    return MODEL_FAMILIES[key]
