"""Model zoo: build any model in the paper's tables by name.

Names match the paper's column headers (case-insensitive):

ST-agnostic  — LongFormer, DCRNN, STGCN, STG2Seq, GWN, STSGCN, ASTGNN,
               STFGNN, GRU, ATT
S-aware      — EnhanceNet, AGCRN, GRU+S, ATT+S
T-aware      — meta-LSTM
ST-aware     — ST-WA, GRU+ST, ATT+ST
Ablations    — SA, WA-1, WA, S-WA, ST-WA-det, ST-WA-mean
Classical    — Persistence, WindowMean, VAR

Every builder returns a model obeying the common forecaster contract
(scaled ``(B, N, H, F)`` -> scaled ``(B, N, U, F)``).  ``MODEL_FAMILIES``
maps each name onto the analytic memory-model family used for the Table VI
OOM reproduction.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core import (
    STAttentionConfig,
    STAwareTCN,
    STTCNConfig,
    STAwareGRU,
    STAwareTransformer,
    STGRUConfig,
    make_deterministic_st_wa,
    make_flow_st_wa,
    make_mean_aggregator_st_wa,
    make_s_wa,
    make_st_wa,
    make_wa,
    make_wa1,
)
from ..data.datasets import TrafficDataset
from ..nn import Module
from .agcrn import AGCRNForecaster
from .astgnn import ASTGNNForecaster
from .classical import PersistenceForecaster, VARForecaster, WindowMeanForecaster
from .dcrnn import DCRNNForecaster, DCRNNSeq2Seq
from .enhancenet import EnhanceNetForecaster
from .gru_seq2seq import GRUForecaster
from .gwn import GWNForecaster
from .meta_lstm import MetaLSTMForecaster
from .stfgnn import STFGNNForecaster
from .stg2seq import STG2SeqForecaster
from .stgcn import STGCNForecaster
from .stsgcn import STSGCNForecaster
from .tcn import TCNForecaster
from .transformer import ATTForecaster, LongFormerForecaster

Builder = Callable[[TrafficDataset, int, int, int], Module]


def _st_wa(ds, history, horizon, seed):
    return make_st_wa(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196)


def _s_wa(ds, history, horizon, seed):
    return make_s_wa(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196)


def _wa(ds, history, horizon, seed):
    return make_wa(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, skip_dim=48, predictor_hidden=196)


def _wa1(ds, history, horizon, seed):
    return make_wa1(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, skip_dim=48, predictor_hidden=196)


def _st_wa_det(ds, history, horizon, seed):
    return make_deterministic_st_wa(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196)


def _st_wa_mean(ds, history, horizon, seed):
    return make_mean_aggregator_st_wa(ds.num_sensors, history=history, horizon=horizon, seed=seed, model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196)


def _att_enhanced(mode):
    def build(ds, history, horizon, seed):
        return STAwareTransformer(
            STAttentionConfig(num_sensors=ds.num_sensors, history=history, horizon=horizon, latent_mode=mode, seed=seed)
        )

    return build


def _gru_enhanced(mode):
    def build(ds, history, horizon, seed):
        return STAwareGRU(
            STGRUConfig(num_sensors=ds.num_sensors, history=history, horizon=horizon, latent_mode=mode, seed=seed)
        )

    return build


def _tcn_enhanced(mode):
    def build(ds, history, horizon, seed):
        return STAwareTCN(
            STTCNConfig(num_sensors=ds.num_sensors, history=history, horizon=horizon, latent_mode=mode, seed=seed)
        )

    return build


def _var(ds, history, horizon, seed):
    model = VARForecaster(ds.num_sensors, history, horizon)
    model.fit(ds.train)
    return model


MODEL_BUILDERS: Dict[str, Builder] = {
    # classical
    "persistence": lambda ds, h, u, s: PersistenceForecaster(h, u),
    "windowmean": lambda ds, h, u, s: WindowMeanForecaster(h, u),
    "var": _var,
    # ST-agnostic deep baselines
    "gru": lambda ds, h, u, s: GRUForecaster(h, u, seed=s),
    "tcn": lambda ds, h, u, s: TCNForecaster(h, u, seed=s),
    "att": lambda ds, h, u, s: ATTForecaster(h, u, seed=s),
    "sa": lambda ds, h, u, s: ATTForecaster(h, u, seed=s),  # Table VIII alias
    "longformer": lambda ds, h, u, s: LongFormerForecaster(h, u, seed=s),
    "dcrnn": lambda ds, h, u, s: DCRNNForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "dcrnn-seq2seq": lambda ds, h, u, s: DCRNNSeq2Seq(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "stgcn": lambda ds, h, u, s: STGCNForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "stg2seq": lambda ds, h, u, s: STG2SeqForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "gwn": lambda ds, h, u, s: GWNForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "stsgcn": lambda ds, h, u, s: STSGCNForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "astgnn": lambda ds, h, u, s: ASTGNNForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "stfgnn": lambda ds, h, u, s: STFGNNForecaster(ds.num_sensors, ds.adjacency, ds.train, h, u, seed=s),
    # spatial-aware
    "enhancenet": lambda ds, h, u, s: EnhanceNetForecaster(ds.num_sensors, ds.adjacency, h, u, seed=s),
    "agcrn": lambda ds, h, u, s: AGCRNForecaster(ds.num_sensors, h, u, seed=s),
    "gru+s": _gru_enhanced("spatial"),
    "att+s": _att_enhanced("spatial"),
    "tcn+s": _tcn_enhanced("spatial"),
    # temporal-aware
    "meta-lstm": lambda ds, h, u, s: MetaLSTMForecaster(h, u, seed=s),
    # spatio-temporal aware (ours)
    "st-wa": _st_wa,
    "gru+st": _gru_enhanced("st"),
    "att+st": _att_enhanced("st"),
    "tcn+st": _tcn_enhanced("st"),
    # ablations
    "s-wa": _s_wa,
    "wa": _wa,
    "wa-1": _wa1,
    "st-wa-det": _st_wa_det,
    "st-wa-mean": _st_wa_mean,
    # extension: normalizing-flow latents (the paper's stated future work)
    "st-wa-flow": lambda ds, h, u, s: make_flow_st_wa(
        ds.num_sensors, history=h, horizon=u, seed=s, model_dim=24, latent_dim=12, skip_dim=48, predictor_hidden=196
    ),
}

#: architecture family per model, for the analytic memory model (Table VI)
MODEL_FAMILIES: Dict[str, str] = {
    "persistence": "rnn",
    "windowmean": "rnn",
    "var": "rnn",
    "gru": "rnn",
    "tcn": "graph_conv",
    "tcn+s": "graph_conv",
    "tcn+st": "graph_conv",
    "att": "attention",
    "sa": "attention",
    "longformer": "attention",
    "dcrnn": "rnn",
    "dcrnn-seq2seq": "rnn",
    "stgcn": "graph_conv",
    "stg2seq": "graph_conv",
    "gwn": "graph_conv",
    "stsgcn": "graph_conv",
    "astgnn": "attention",
    "stfgnn": "stfgnn",
    "enhancenet": "enhancenet",
    "agcrn": "agcrn",
    "gru+s": "rnn",
    "att+s": "attention",
    "meta-lstm": "rnn",
    "st-wa": "window_attention",
    "gru+st": "rnn",
    "att+st": "attention",
    "s-wa": "window_attention",
    "wa": "window_attention",
    "wa-1": "window_attention",
    "st-wa-det": "window_attention",
    "st-wa-mean": "window_attention",
    "st-wa-flow": "window_attention",
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(MODEL_BUILDERS)


def build_model(name: str, dataset: TrafficDataset, history: int, horizon: int, seed: int = 0) -> Module:
    """Instantiate a model by its paper name for the given dataset/task."""
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_BUILDERS[key](dataset, history, horizon, seed)


def model_family(name: str) -> str:
    """Memory-model family of a model name (see :mod:`repro.training.memory`)."""
    key = name.lower()
    if key not in MODEL_FAMILIES:
        raise KeyError(f"unknown model {name!r}")
    return MODEL_FAMILIES[key]
