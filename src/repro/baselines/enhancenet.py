"""EnhanceNet-lite [44]: per-location deterministic memory enhancement.

The defining mechanism: each location owns a *deterministic memory vector*
from which parameter adjustments for the base model (here a GRU) are
generated.  The paper positions EnhanceNet as the special case of ST-WA
whose latent has zero variance and no temporal branch — implemented here
literally: a deterministic per-node embedding decoded into multiplicative
and additive gate adjustments, plus graph convolution for sensor
correlations.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, GraphConv, GRUCell, Module
from ..tensor import Tensor, ops
from ..nn.module import Parameter
from .base import PredictorHead, check_input


class EnhanceNetForecaster(Module):
    """GRU whose gates are scaled/shifted by decoded per-node memories."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 16,
        memory_dim: int = 8,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.hidden_size = hidden_size
        self.cell = GRUCell(in_features, hidden_size, rng=rng)
        # deterministic per-location memory (zero-variance z^(i))
        self.memory = Parameter(rng.standard_normal((num_sensors, memory_dim)) * 0.1)
        # decoder producing per-node scale and shift of the 3h gate pre-activations
        self.adjuster = MLP([memory_dim, 16, 2 * 3 * hidden_size], activation="relu", rng=rng)
        self.graph = GraphConv(hidden_size, hidden_size, adj, rng=rng)
        self.head = PredictorHead(hidden_size, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        adjust = self.adjuster(self.memory)  # (N, 6h)
        gate_scale = 1.0 + 0.1 * ops.tanh(adjust[:, : 3 * self.hidden_size])
        gate_shift = 0.1 * ops.tanh(adjust[:, 3 * self.hidden_size :])

        hidden = Tensor(np.zeros((batch, sensors, self.hidden_size)))
        n = self.hidden_size
        for t in range(history):
            step = x[:, :, t, :]
            gates_x = (ops.matmul(step, self.cell.weight_x) + self.cell.bias) * gate_scale + gate_shift
            gates_h = ops.matmul(hidden, self.cell.weight_h)
            reset = ops.sigmoid(gates_x[..., :n] + gates_h[..., :n])
            update = ops.sigmoid(gates_x[..., n : 2 * n] + gates_h[..., n : 2 * n])
            candidate = ops.tanh(gates_x[..., 2 * n :] + reset * gates_h[..., 2 * n :])
            hidden = update * hidden + (1.0 - update) * candidate
        mixed = hidden + ops.relu(self.graph(hidden))
        return self.head(mixed)
