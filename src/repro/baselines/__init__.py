"""Baseline forecasters: every comparison model of the paper's Table IV.

See :mod:`repro.baselines.registry` for the name -> builder map used by the
experiment harness; DESIGN.md §3 documents what each "lite" reimplementation
preserves from the original.
"""

from .agcrn import AGCRNCell, AGCRNForecaster
from .astgnn import ASTGNNForecaster, TrendAwareAttention
from .base import PredictorHead, check_input, flatten_time
from .classical import PersistenceForecaster, VARForecaster, WindowMeanForecaster
from .dcrnn import DCGRUCell, DCRNNForecaster, DCRNNSeq2Seq
from .enhancenet import EnhanceNetForecaster
from .gru_seq2seq import GRUForecaster
from .gwn import GWNForecaster
from .meta_lstm import MetaLSTMForecaster
from .registry import (
    MODEL_BUILDERS,
    MODEL_FAMILIES,
    BuildSpec,
    available_models,
    build_from_spec,
    build_model,
    model_family,
    register_model,
)
from .stfgnn import STFGNNForecaster, similarity_graph
from .stg2seq import STG2SeqForecaster
from .stgcn import STGCNBlock, STGCNForecaster
from .tcn import TCNForecaster
from .stsgcn import STSGCNForecaster, build_st_block_adjacency
from .transformer import ATTForecaster, LongFormerForecaster

__all__ = [
    "PredictorHead",
    "check_input",
    "flatten_time",
    "PersistenceForecaster",
    "WindowMeanForecaster",
    "VARForecaster",
    "GRUForecaster",
    "ATTForecaster",
    "LongFormerForecaster",
    "DCRNNForecaster",
    "DCRNNSeq2Seq",
    "DCGRUCell",
    "STGCNForecaster",
    "TCNForecaster",
    "STGCNBlock",
    "STG2SeqForecaster",
    "GWNForecaster",
    "STSGCNForecaster",
    "build_st_block_adjacency",
    "ASTGNNForecaster",
    "TrendAwareAttention",
    "STFGNNForecaster",
    "similarity_graph",
    "EnhanceNetForecaster",
    "AGCRNForecaster",
    "AGCRNCell",
    "MetaLSTMForecaster",
    "MODEL_BUILDERS",
    "MODEL_FAMILIES",
    "BuildSpec",
    "available_models",
    "build_from_spec",
    "build_model",
    "model_family",
    "register_model",
]
