"""Classical (non-deep) baselines: persistence, window mean, VAR.

The paper's related work dismisses ARIMA/VAR for missing nonlinear dynamics;
we include them both as sanity floors for the deep models and because a
reproduction should demonstrate *that* gap, not assume it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module
from ..tensor import Tensor, ops
from .base import check_input


class PersistenceForecaster(Module):
    """Repeat the last observed value across the horizon (no parameters)."""

    def __init__(self, history: int, horizon: int):
        super().__init__()
        self.history = history
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        last = x[:, :, self.history - 1 : self.history, :]
        return ops.concat([last] * self.horizon, axis=2)


class WindowMeanForecaster(Module):
    """Repeat the history-window mean across the horizon (no parameters)."""

    def __init__(self, history: int, horizon: int):
        super().__init__()
        self.history = history
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        mean = ops.mean(x, axis=2, keepdims=True)
        return ops.concat([mean] * self.horizon, axis=2)


class VARForecaster(Module):
    """Vector auto-regression fit by ridge-regularized least squares.

    One linear map from the flattened history of *all* sensors to the next
    step of all sensors, applied recursively over the horizon.  ``fit``
    consumes a scaled ``(N, T, F)`` training array (F must be 1).  Shows the
    linear-model ceiling the deep baselines must clear.
    """

    def __init__(self, num_sensors: int, history: int, horizon: int, ridge: float = 1e-3):
        super().__init__()
        self.num_sensors = num_sensors
        self.history = history
        self.horizon = horizon
        self.ridge = ridge
        self.coefficients: Optional[np.ndarray] = None  # (N*H + 1, N)

    def fit(self, train: np.ndarray) -> "VARForecaster":
        """Estimate AR coefficients from ``(N, T, 1)`` training data."""
        if train.ndim != 3 or train.shape[2] != 1:
            raise ValueError(f"expected (N, T, 1) training data, got {train.shape}")
        if train.shape[0] != self.num_sensors:
            raise ValueError("sensor count mismatch")
        series = train[:, :, 0]  # (N, T)
        n, total = series.shape
        h = self.history
        rows = total - h
        if rows < n * h:
            # keep the regression overdetermined; thin out lags if needed
            pass
        design = np.empty((rows, n * h))
        target = np.empty((rows, n))
        for row in range(rows):
            design[row] = series[:, row : row + h].reshape(-1)
            target[row] = series[:, row + h]
        design = np.hstack([design, np.ones((rows, 1))])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.coefficients = np.linalg.solve(gram, design.T @ target)
        return self

    def forward(self, x: Tensor) -> Tensor:
        if self.coefficients is None:
            raise RuntimeError("VARForecaster.fit() must be called before forecasting")
        batch, sensors, history, features = check_input(x, self.history)
        window = x.numpy()[..., 0]  # (B, N, H)
        outputs = np.empty((batch, sensors, self.horizon, 1))
        for step in range(self.horizon):
            flat = window.reshape(batch, sensors * history)
            flat = np.hstack([flat, np.ones((batch, 1))])
            next_step = flat @ self.coefficients  # (B, N)
            outputs[:, :, step, 0] = next_step
            window = np.concatenate([window[:, :, 1:], next_step[:, :, None]], axis=2)
        return Tensor(outputs)
