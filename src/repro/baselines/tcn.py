"""Plain TCN forecaster — the third spatio-temporal agnostic family.

The paper names three families its framework can enhance: RNNs, TCNs, and
attentions (Section IV-A.1).  Tables VII covers GRU and ATT; this baseline
completes the set so the TCN enhancement (repro.core.st_tcn) has its
agnostic reference point.  Stacked gated dilated causal convolutions with
residuals, shared across all sensors.
"""

from __future__ import annotations

import numpy as np

from ..nn import GatedTemporalConv, Linear, Module, ModuleList
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class TCNForecaster(Module):
    """Gated dilated TCN stack + MLP predictor (spatio-temporal agnostic)."""

    def __init__(
        self,
        history: int,
        horizon: int,
        in_features: int = 1,
        channels: int = 16,
        num_layers: int = 3,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.input_proj = Linear(in_features, channels, rng=rng)
        self.layers = ModuleList(
            GatedTemporalConv(channels, channels, kernel_size=2, dilation=2**i, rng=rng)
            for i in range(num_layers)
        )
        self.head = PredictorHead(channels, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        hidden = self.input_proj(x)
        for layer in self.layers:
            hidden = layer(hidden) + hidden  # residual
        return self.head(hidden[:, :, -1, :])
