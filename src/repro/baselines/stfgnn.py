"""STFGNN-lite [28]: spatial-temporal fusion graph neural network.

The defining mechanism: alongside the road graph, a *data-driven temporal
graph* connects sensors whose historical series are similar (the original
uses DTW; we use a cheap normalized-correlation "DTW-lite" that tolerates
small lags), and gated dilated convolutions process the fused result.
"""

from __future__ import annotations

import numpy as np

from ..nn import GatedTemporalConv, GraphConv, Module, ModuleList
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


def similarity_graph(train: np.ndarray, top_k: int = 4, max_lag: int = 2) -> np.ndarray:
    """Lag-tolerant correlation graph between sensor series ("DTW-lite").

    For each sensor pair, the similarity is the best absolute Pearson
    correlation over shifts in ``[-max_lag, max_lag]``; each sensor keeps its
    ``top_k`` most similar peers.  Input ``(N, T, F)`` (training split only,
    so the graph is leakage-free).
    """
    series = np.asarray(train, dtype=np.float64)[:, :, 0]
    n, t = series.shape
    centered = series - series.mean(axis=1, keepdims=True)
    std = centered.std(axis=1, keepdims=True)
    std[std == 0] = 1.0
    normalized = centered / std
    best = np.zeros((n, n))
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            left, right = normalized[:, : t - lag], normalized[:, lag:]
        else:
            left, right = normalized[:, -lag:], normalized[:, : t + lag]
        corr = np.abs(left @ right.T) / left.shape[1]
        np.maximum(best, corr, out=best)
    np.fill_diagonal(best, 0.0)
    graph = np.zeros_like(best)
    for i in range(n):
        keep = np.argsort(best[i])[-top_k:]
        graph[i, keep] = best[i, keep]
    return np.maximum(graph, graph.T)


class STFGNNForecaster(Module):
    """Gated dilated convolutions over road + similarity fusion graphs."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        train_data: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden: int = 16,
        num_layers: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        fused = np.maximum(np.asarray(adj, dtype=np.float64), similarity_graph(train_data))
        self.temporals = ModuleList()
        self.graphs = ModuleList()
        channels = in_features
        for i in range(num_layers):
            self.temporals.append(GatedTemporalConv(channels, hidden, kernel_size=2, dilation=2**i, rng=rng))
            self.graphs.append(GraphConv(hidden, hidden, fused, rng=rng))
            channels = hidden
        self.head = PredictorHead(history * hidden, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = x
        for temporal, graph in zip(self.temporals, self.graphs):
            out = temporal(hidden)
            spatial = ops.swapaxes(out, 1, 2)
            spatial = ops.relu(graph(spatial))
            hidden = out + ops.swapaxes(spatial, 1, 2)
        flat = ops.reshape(hidden, (batch, sensors, history * hidden.shape[-1]))
        return self.head(flat)
