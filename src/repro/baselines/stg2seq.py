"""STG2Seq-lite [41]: gated residual graph convolution over stacked history.

The defining mechanism: the history window is treated as a channel axis and
processed by stacked *gated graph convolution* blocks with residuals — a
"graph conv instead of RNN" sequence model — followed by an attention
readout over the horizon.
"""

from __future__ import annotations

import numpy as np

from ..nn import GraphConv, Linear, Module, ModuleList
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class GatedGraphBlock(Module):
    """Gated residual graph convolution: ``GLU(GCN(x)) + x``."""

    def __init__(self, channels: int, adj: np.ndarray, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.value_conv = GraphConv(channels, channels, adj, rng=rng)
        self.gate_conv = GraphConv(channels, channels, adj, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """``(B, N, C)`` -> gated update with residual."""
        return self.value_conv(x) * ops.sigmoid(self.gate_conv(x)) + x


class STG2SeqForecaster(Module):
    """History-as-channels gated graph conv stack + predictor."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden: int = 24,
        num_blocks: int = 3,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.input_proj = Linear(history * in_features, hidden, rng=rng)
        self.blocks = ModuleList(GatedGraphBlock(hidden, adj, rng=rng) for _ in range(num_blocks))
        self.head = PredictorHead(hidden, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, features = check_input(x, self.history)
        hidden = self.input_proj(ops.reshape(x, (batch, sensors, history * features)))
        for block in self.blocks:
            hidden = block(hidden)
        return self.head(ops.relu(hidden))
