"""ASTGNN-lite [33]: self-attention with local-context embedding.

The defining mechanism: before attention, queries/keys are produced by a 1-D
*causal convolution* over the time axis so each position carries local trend
context ("trend-aware attention"), combined with graph convolution over the
sensor axis.  This was the strongest ST-agnostic baseline in Table IV.
"""

from __future__ import annotations

import numpy as np

from ..nn import CausalConv1d, GraphConv, LayerNorm, Module, ModuleList, Parameter, init
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input, flatten_time


class TrendAwareAttention(Module):
    """Self-attention whose Q/K come from causal convolutions (local context)."""

    def __init__(self, in_features: int, model_dim: int, kernel_size: int = 3, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.model_dim = model_dim
        self.query_conv = CausalConv1d(in_features, model_dim, kernel_size=kernel_size, rng=rng)
        self.key_conv = CausalConv1d(in_features, model_dim, kernel_size=kernel_size, rng=rng)
        self.value_proj = Parameter(init.xavier_uniform((in_features, model_dim), rng))

    def forward(self, x: Tensor) -> Tensor:
        query = self.query_conv(x)
        key = self.key_conv(x)
        value = ops.matmul(x, self.value_proj)
        scale = 1.0 / np.sqrt(self.model_dim)
        scores = ops.softmax(ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale, axis=-1)
        return ops.matmul(scores, value)


class ASTGNNForecaster(Module):
    """Trend-aware attention + graph convolution blocks, stacked."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        model_dim: int = 16,
        num_layers: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.attentions = ModuleList()
        self.graphs = ModuleList()
        self.norms = ModuleList()
        channels = in_features
        for _ in range(num_layers):
            self.attentions.append(TrendAwareAttention(channels, model_dim, rng=rng))
            self.graphs.append(GraphConv(model_dim, model_dim, adj, rng=rng))
            self.norms.append(LayerNorm(model_dim))
            channels = model_dim
        self.head = PredictorHead(history * model_dim, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        hidden = x
        for attention, graph, norm in zip(self.attentions, self.graphs, self.norms):
            out = attention(hidden)
            spatial = ops.swapaxes(out, 1, 2)  # (B, T, N, d)
            spatial = ops.relu(graph(spatial))
            out = out + ops.swapaxes(spatial, 1, 2)
            if hidden.shape[-1] == out.shape[-1]:
                out = out + hidden
            hidden = norm(out)
        return self.head(flatten_time(hidden))
