"""AGCRN-lite: adaptive graph convolutional recurrent network [18].

The defining mechanism — Node Adaptive Parameter Learning, where each node's
weights are selected from a shared pool via a learned node embedding, plus a
fully learned adaptive adjacency — is kept inside a GRU recurrence.  This is
the strongest *spatial-aware* baseline of the paper (Table IV).
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, NodeAdaptiveGraphConv
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


class AGCRNCell(Module):
    """GRU cell whose gate transforms are node-adaptive graph convolutions."""

    def __init__(self, in_features: int, hidden_size: int, num_nodes: int, embed_dim: int = 8, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.gate_conv = NodeAdaptiveGraphConv(
            in_features + hidden_size, 2 * hidden_size, num_nodes, embed_dim=embed_dim, rng=rng
        )
        self.candidate_conv = NodeAdaptiveGraphConv(
            in_features + hidden_size, hidden_size, num_nodes, embed_dim=embed_dim, rng=rng
        )

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = ops.concat([x, h], axis=-1)
        gates = ops.sigmoid(self.gate_conv(combined))
        reset = gates[..., : self.hidden_size]
        update = gates[..., self.hidden_size :]
        candidate = ops.tanh(self.candidate_conv(ops.concat([x, reset * h], axis=-1)))
        return update * h + (1.0 - update) * candidate


class AGCRNForecaster(Module):
    """AGCRN encoder + MLP predictor."""

    def __init__(
        self,
        num_sensors: int,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden_size: int = 16,
        embed_dim: int = 8,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.cell = AGCRNCell(in_features, hidden_size, num_sensors, embed_dim=embed_dim, rng=rng)
        self.head = PredictorHead(hidden_size, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = Tensor(np.zeros((batch, sensors, self.cell.hidden_size)))
        for t in range(history):
            hidden = self.cell(x[:, :, t, :], hidden)
        return self.head(hidden)
