"""STSGCN-lite: spatial-temporal synchronous graph convolution [30].

The defining mechanism: a *localized spatio-temporal graph* spanning K=3
consecutive timestamps (each sensor connected to itself at t-1/t/t+1 and to
its road neighbours at t), convolved synchronously, sliding over the input.
We materialize the (3N x 3N) block adjacency once and apply a shared graph
convolution to every sliding group, taking the middle slice as output.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, ModuleList, normalized_adjacency
from ..nn.module import Parameter
from ..nn import init
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input


def build_st_block_adjacency(adj: np.ndarray, steps: int = 3) -> np.ndarray:
    """Block adjacency over ``steps`` copies of the sensor graph.

    Diagonal blocks carry the spatial graph; off-diagonal identity blocks
    connect each sensor to itself at adjacent timestamps (STSGCN Fig. 2).
    """
    n = adj.shape[0]
    block = np.zeros((steps * n, steps * n))
    spatial = np.asarray(adj, dtype=np.float64)
    eye = np.eye(n)
    for i in range(steps):
        block[i * n : (i + 1) * n, i * n : (i + 1) * n] = spatial
        if i + 1 < steps:
            block[i * n : (i + 1) * n, (i + 1) * n : (i + 2) * n] = eye
            block[(i + 1) * n : (i + 2) * n, i * n : (i + 1) * n] = eye
    return normalized_adjacency(block)


class STSGCMModule(Module):
    """One synchronous graph convolution over a 3-step local ST graph."""

    def __init__(self, in_features: int, out_features: int, adj: np.ndarray, steps: int = 3, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.steps = steps
        self.block_adj = Tensor(build_st_block_adjacency(adj, steps))
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features))

    def forward(self, group: Tensor) -> Tensor:
        """``(B, steps*N, F)`` -> ``(B, N, out)`` (the middle time slice)."""
        mixed = ops.matmul(self.block_adj, group)
        out = ops.relu(ops.matmul(mixed, self.weight) + self.bias)
        n = group.shape[1] // self.steps
        middle = self.steps // 2
        return out[:, middle * n : (middle + 1) * n, :]


class STSGCNForecaster(Module):
    """Sliding synchronous ST graph convolutions + MLP predictor."""

    def __init__(
        self,
        num_sensors: int,
        adj: np.ndarray,
        history: int,
        horizon: int,
        in_features: int = 1,
        hidden: int = 16,
        num_layers: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        if history < 3:
            raise ValueError("STSGCN needs history >= 3")
        rng = np.random.default_rng(seed)
        self.history = history
        self.num_sensors = num_sensors
        self.layers = ModuleList()
        channels = in_features
        for _ in range(num_layers):
            self.layers.append(STSGCMModule(channels, hidden, adj, rng=rng))
            channels = hidden
        # after each layer the time axis shrinks by 2 (valid sliding window)
        final_steps = history - 2 * num_layers
        if final_steps < 1:
            raise ValueError("too many layers for this history length")
        self.final_steps = final_steps
        self.head = PredictorHead(final_steps * hidden, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = check_input(x, self.history)
        hidden = x
        for layer in self.layers:
            steps = hidden.shape[2]
            outputs = []
            for t in range(steps - 2):
                group = ops.concat(
                    [hidden[:, :, t, :], hidden[:, :, t + 1, :], hidden[:, :, t + 2, :]], axis=1
                )  # (B, 3N, F)
                outputs.append(layer(group))
            hidden = ops.stack(outputs, axis=2)  # (B, N, steps-2, hidden)
        flat = ops.reshape(hidden, (batch, sensors, self.final_steps * hidden.shape[-1]))
        return self.head(flat)
