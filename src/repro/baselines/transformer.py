"""Attention baselines: canonical Transformer (ATT / SA) and LongFormer.

* :class:`ATTForecaster` — stacked canonical self-attention with *static*
  Q/K/V shared across sensors and time: the spatio-temporal agnostic
  attention the paper starts from (Eq. 2-3) and the "SA" row of Table VIII.
* :class:`LongFormerForecaster` — the sliding-window attention baseline [35]
  with O(H·S) complexity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import LayerNorm, Linear, Module, ModuleList, MultiHeadSelfAttention, SlidingWindowSelfAttention
from ..tensor import Tensor, ops
from .base import PredictorHead, check_input, flatten_time


class ATTForecaster(Module):
    """Canonical self-attention forecaster (paper's ATT baseline / SA ablation)."""

    def __init__(
        self,
        history: int,
        horizon: int,
        in_features: int = 1,
        model_dim: int = 16,
        num_layers: int = 2,
        num_heads: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.model_dim = model_dim
        self.layers = ModuleList()
        self.norms = ModuleList()
        dims = in_features
        for _ in range(num_layers):
            self.layers.append(MultiHeadSelfAttention(dims, model_dim, num_heads=num_heads, rng=rng))
            self.norms.append(LayerNorm(model_dim))
            dims = model_dim
        self.head = PredictorHead(history * model_dim, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        hidden = x
        for layer, norm in zip(self.layers, self.norms):
            out = layer(hidden)
            if hidden.shape[-1] == out.shape[-1]:
                out = out + hidden  # residual once dimensions align
            hidden = norm(out)
        return self.head(flatten_time(hidden))


class LongFormerForecaster(Module):
    """Sliding-window attention forecaster (LongFormer [35])."""

    def __init__(
        self,
        history: int,
        horizon: int,
        in_features: int = 1,
        model_dim: int = 16,
        window: int = 2,
        num_layers: int = 2,
        num_heads: int = 2,
        predictor_hidden: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.history = history
        self.layers = ModuleList()
        self.norms = ModuleList()
        dims = in_features
        for _ in range(num_layers):
            self.layers.append(
                SlidingWindowSelfAttention(dims, model_dim, window=window, num_heads=num_heads, rng=rng)
            )
            self.norms.append(LayerNorm(model_dim))
            dims = model_dim
        self.head = PredictorHead(history * model_dim, horizon, in_features, hidden=predictor_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        check_input(x, self.history)
        hidden = x
        for layer, norm in zip(self.layers, self.norms):
            out = layer(hidden)
            if hidden.shape[-1] == out.shape[-1]:
                out = out + hidden
            hidden = norm(out)
        return self.head(flatten_time(hidden))
