"""Shared plumbing for baseline forecasters.

Every baseline maps scaled histories ``(B, N, H, F)`` to scaled forecasts
``(B, N, U, F)`` — the same contract as :class:`repro.core.STWA` — so the
harness can swap models freely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops


class PredictorHead(Module):
    """Two-layer ReLU head mapping per-sensor features to a U-step forecast.

    Mirrors the predictor of the paper's full model (Eq. 19) so capacity is
    comparable across every model in the study.
    """

    def __init__(
        self,
        in_features: int,
        horizon: int,
        out_features: int = 1,
        hidden: int = 128,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.horizon = horizon
        self.out_features = out_features
        self.mlp = MLP([in_features, hidden, horizon * out_features], activation="relu", rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        """``(B, N, in_features)`` -> ``(B, N, U, F)``."""
        out = self.mlp(features)
        batch, sensors, _ = features.shape
        return ops.reshape(out, (batch, sensors, self.horizon, self.out_features))


def flatten_time(x: Tensor) -> Tensor:
    """``(B, N, H, F)`` -> ``(B, N, H*F)``."""
    batch, sensors, history, features = x.shape
    return ops.reshape(x, (batch, sensors, history * features))


def check_input(x: Tensor, history: int) -> tuple[int, int, int, int]:
    """Validate a ``(B, N, H, F)`` batch and return its dimensions."""
    if x.ndim != 4:
        raise ValueError(f"expected (B, N, H, F) input, got shape {x.shape}")
    batch, sensors, got_history, features = x.shape
    if got_history != history:
        raise ValueError(f"expected history {history}, got {got_history}")
    return batch, sensors, got_history, features
