"""Sensor-correlation attention (paper Section IV-C, Eq. 15-16).

After proxy aggregation each window is summarized as ``(N, d)``; traffic at
one sensor is influenced by nearby sensors, so an embedded-Gaussian
attention mixes information across the sensor axis:

    B(i, j) = softmax_j( θ1(h_i)ᵀ θ2(h_j) )          (Eq. 15)
    h̄_i    = Σ_j B(i, j) ⊙ h_j                       (Eq. 16)

The embedding functions θ1/θ2 may be static (shared across sensors) or
generated per sensor by the ST-aware parameter generator — matching the
paper's note that a single set of transformations may not describe all
interactions.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Linear, Module
from ..tensor import Tensor, ops


class SensorCorrelationAttention(Module):
    """Embedded-Gaussian attention over the sensor axis.

    Input ``(..., N, d)`` — typically ``(B, W, N, d)`` after window
    attention; output has the same shape with a residual connection so the
    module can fall back to per-sensor behaviour when correlations are weak.
    """

    def __init__(self, model_dim: int, residual: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.model_dim = model_dim
        self.residual = residual
        self.theta1 = Linear(model_dim, model_dim, bias=False, rng=rng)
        self.theta2 = Linear(model_dim, model_dim, bias=False, rng=rng)

    def forward(self, h: Tensor, projections: Optional[Dict[str, Tensor]] = None) -> Tensor:
        """Mix sensor representations.

        ``projections`` may supply generated per-sensor embeddings
        ``{"theta1": (..., N, d, d), "theta2": (..., N, d, d)}``; otherwise
        the static linear embeddings are used.
        """
        if projections is None:
            query = self.theta1(h)
            key = self.theta2(h)
        else:
            # per-sensor embedding: h (..., N, d) x theta (..., N, d, d)
            expanded = ops.reshape(h, (*h.shape, 1))
            query = ops.sum(expanded * projections["theta1"], axis=-2)
            key = ops.sum(expanded * projections["theta2"], axis=-2)
        scale = 1.0 / np.sqrt(self.model_dim)
        logits = ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale  # (..., N, N)
        scores = ops.softmax(logits, axis=-1)
        mixed = ops.matmul(scores, h)
        return h + mixed if self.residual else mixed
