"""The full ST-WA forecasting model (paper Section IV-D, Fig. 8).

Stacked window-attention layers with spatio-temporal aware Key/Value
projections, sensor-correlation attention per layer, skip connections from
every layer to the predictor (Eq. 17-18), and a two-layer ReLU predictor
(Eq. 19).  The input length shrinks by the window size at every layer
(H -> H/S1 -> H/(S1 S2) ...), which keeps the stack linear in H overall.

The same class covers the paper's ablations through its configuration:

==============  =======================================================
Paper variant   Configuration
==============  =======================================================
ST-WA           ``latent_mode="st"`` (default)
S-WA            ``latent_mode="spatial"``
WA              ``latent_mode=None`` (static, agnostic projections)
WA-1            ``window_sizes=(H,)`` single layer, or any 1-layer stack
Deterministic   ``deterministic=True`` (Table XI)
Mean aggregator ``aggregator="mean"`` (Table XIV)
==============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import MLP, Linear, Module, ModuleList
from ..tensor import Tensor, ops
from .generator import ParameterDecoder
from .latent import STLatent
from .sensor_attention import SensorCorrelationAttention
from .window_attention import WindowAttention


@dataclass
class STWAConfig:
    """Hyper-parameters of ST-WA (defaults follow the paper, scaled down).

    The paper's default for H=12 stacks 3 layers with window sizes (3, 2, 2)
    and p=1; for H=72 it uses (6, 6, 6)-style stacks with p=2.
    """

    num_sensors: int
    in_features: int = 1
    history: int = 12
    horizon: int = 12
    model_dim: int = 16
    latent_dim: int = 8
    window_sizes: Tuple[int, ...] = (3, 2, 2)
    num_proxies: int = 1
    num_heads: int = 1
    latent_mode: Optional[str] = "st"  # "st" | "spatial" | "temporal" | None
    deterministic: bool = False
    aggregator: str = "weighted"
    sensor_attention: bool = True
    kl_weight: float = 0.02
    flow_layers: int = 0  # >0 enables normalizing-flow latents (future work)
    skip_dim: int = 32
    predictor_hidden: int = 128
    decoder_hidden: Tuple[int, ...] = (16, 32)
    encoder_hidden: int = 32
    seed: int = 0

    def layer_lengths(self) -> List[int]:
        """Input length of each layer; validates divisibility."""
        lengths = [self.history]
        for size in self.window_sizes:
            if lengths[-1] % size:
                raise ValueError(
                    f"window sizes {self.window_sizes} do not divide history "
                    f"{self.history}: layer input {lengths[-1]} % {size} != 0"
                )
            lengths.append(lengths[-1] // size)
        return lengths[:-1]  # input length per layer


class STWA(Module):
    """Spatio-Temporal Aware Window Attention forecaster.

    ``forward(x)`` maps ``(B, N, H, F)`` histories to ``(B, N, U, F)``
    forecasts.  After a forward pass, :meth:`kl_divergence` exposes the KL
    regularizer of the latent variables for the loss (Eq. 20).
    """

    def __init__(self, config: STWAConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        lengths = config.layer_lengths()

        if config.latent_mode is not None:
            latent_kwargs = dict(
                mode=config.latent_mode,
                deterministic=config.deterministic,
                encoder_hidden=config.encoder_hidden,
                rng=rng,
            )
            if config.flow_layers > 0:
                from .flows import FlowSTLatent

                self.latent = FlowSTLatent(
                    config.num_sensors,
                    config.history,
                    config.in_features,
                    config.latent_dim,
                    flow_layers=config.flow_layers,
                    **latent_kwargs,
                )
            else:
                self.latent = STLatent(
                    config.num_sensors,
                    config.history,
                    config.in_features,
                    config.latent_dim,
                    **latent_kwargs,
                )
        else:
            self.latent = None

        self.layers = ModuleList()
        self.decoders = ModuleList()
        self.sensor_attentions = ModuleList()
        self.skips = ModuleList()
        in_features = config.in_features
        for depth, (length, window_size) in enumerate(zip(lengths, config.window_sizes)):
            num_windows = length // window_size
            self.layers.append(
                WindowAttention(
                    config.num_sensors,
                    in_features,
                    config.model_dim,
                    num_windows,
                    window_size,
                    num_proxies=config.num_proxies,
                    num_heads=config.num_heads,
                    aggregator=config.aggregator,
                    static_projections=config.latent_mode is None,
                    rng=rng,
                )
            )
            if self.latent is not None:
                self.decoders.append(
                    ParameterDecoder(
                        config.latent_dim,
                        {"K": (in_features, config.model_dim), "V": (in_features, config.model_dim)},
                        hidden=config.decoder_hidden,
                        rng=rng,
                    )
                )
            if config.sensor_attention:
                self.sensor_attentions.append(SensorCorrelationAttention(config.model_dim, rng=rng))
            # skip connection: flatten this layer's (W_l, d) output to skip_dim
            self.skips.append(Linear(num_windows * config.model_dim, config.skip_dim, rng=rng))
            in_features = config.model_dim

        self.predictor = MLP(
            [config.skip_dim, config.predictor_hidden, config.horizon * config.in_features],
            activation="relu",
            rng=rng,
        )
        self._last_kl: Optional[Tensor] = None

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, features = x.shape
        cfg = self.config
        if history != cfg.history:
            raise ValueError(f"expected history {cfg.history}, got {history}")

        projections: Optional[List[Dict[str, Tensor]]] = None
        if self.latent is not None:
            theta = self.latent(x)
            self._last_kl = self.latent.kl_divergence()
            projections = [decoder(theta) for decoder in self.decoders]
        else:
            self._last_kl = None

        hidden = x
        skip_total: Optional[Tensor] = None
        for depth, layer in enumerate(self.layers):
            generated = projections[depth] if projections is not None else None
            out = layer(hidden, generated)  # (B, N, W, d)
            if cfg.sensor_attention:
                mixed = ops.swapaxes(out, 1, 2)  # (B, W, N, d)
                mixed = self.sensor_attentions[depth](mixed)
                out = ops.swapaxes(mixed, 1, 2)
            flat = ops.reshape(out, (batch, sensors, out.shape[2] * cfg.model_dim))
            skip = self.skips[depth](flat)  # (B, N, skip_dim)
            skip_total = skip if skip_total is None else skip_total + skip
            hidden = out

        prediction = self.predictor(ops.relu(skip_total))
        return ops.reshape(prediction, (batch, sensors, cfg.horizon, cfg.in_features))

    def kl_divergence(self) -> Optional[Tensor]:
        """KL regularizer of the latest forward pass (None when agnostic)."""
        return self._last_kl

    # ------------------------------------------------------------------ #
    def generated_projections(self, x: Tensor) -> List[Dict[str, Tensor]]:
        """Decode the projection matrices for input ``x`` (analysis helper).

        Used by the Figure 9 reproduction to embed the generated φ_t^(i)
        with t-SNE.  Returns one ``{"K": ..., "V": ...}`` dict per layer.
        """
        if self.latent is None:
            raise RuntimeError("model is spatio-temporal agnostic; nothing is generated")
        theta = self.latent(x)
        return [decoder(theta) for decoder in self.decoders]
