"""The paper's contribution: ST-aware parameter generation + window attention.

Public surface:

* :class:`STWA` / :class:`STWAConfig` — the full forecasting model.
* :class:`STLatent`, :class:`SpatialLatent`, :class:`TemporalLatentEncoder`
  — stochastic latent variables Θ = z + z_t (Eq. 4-7).
* :class:`ParameterDecoder` — D_ω, latent -> model parameters (Eq. 8).
* :class:`WindowAttention`, :class:`ProxyAggregator` — linear-complexity
  attention with proxies (Eq. 10-14).
* :class:`SensorCorrelationAttention` — Eq. 15-16.
* :class:`STAwareTransformer`, :class:`STAwareGRU` — the model-agnostic
  enhancements of Table VII.
* :class:`STWALoss` — Huber + α·KL (Eq. 20-21).
* ``make_*`` factories — paper-named variants for ablations.
"""

from .flows import FlowSTLatent, PlanarFlow
from .generator import ParameterDecoder
from .latent import SpatialLatent, STLatent, TemporalLatentEncoder
from .loss import STWALoss
from .model import STWA, STWAConfig
from .sensor_attention import SensorCorrelationAttention
from .simst import SimSTForecaster, make_simst, topk_neighbors
from .st_attention import STAttentionConfig, STAwareTransformer
from .st_gru import STAwareGRU, STGRUConfig
from .st_tcn import STAwareTCN, STTCNConfig
from .variants import (
    default_window_sizes,
    make_flow_st_wa,
    make_deterministic_st_wa,
    make_mean_aggregator_st_wa,
    make_s_wa,
    make_st_wa,
    make_wa,
    make_wa1,
)
from .window_attention import ProxyAggregator, WindowAttention

__all__ = [
    "STWA",
    "STWAConfig",
    "STLatent",
    "SpatialLatent",
    "TemporalLatentEncoder",
    "ParameterDecoder",
    "WindowAttention",
    "ProxyAggregator",
    "SensorCorrelationAttention",
    "STAwareTransformer",
    "STAttentionConfig",
    "STAwareGRU",
    "STGRUConfig",
    "STAwareTCN",
    "STTCNConfig",
    "STWALoss",
    "make_st_wa",
    "make_s_wa",
    "make_wa",
    "make_wa1",
    "make_deterministic_st_wa",
    "make_flow_st_wa",
    "FlowSTLatent",
    "PlanarFlow",
    "make_mean_aggregator_st_wa",
    "default_window_sizes",
    "SimSTForecaster",
    "make_simst",
    "topk_neighbors",
]
