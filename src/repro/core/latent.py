"""Stochastic latent variables Θ_t^(i) (paper Section IV-A).

Θ_t^(i) = z^(i) + z_t^(i)  (Eq. 4), where

* z^(i)   ~ N(μ^(i), Σ^(i))      — *spatial-aware*: μ, Σ are directly
  learnable per sensor (Eq. 5); captures each location's prominent pattern.
* z_t^(i) ~ N(μ_t^(i), Σ_t^(i))  — *temporal adaption*: a variational
  encoder E_ψ maps the most recent H observations of sensor i to the
  distribution parameters (Eq. 6-7); captures deviations at time t.

Covariances are diagonal (as the paper enforces) and carried as log-variance
for numerical stability.  Sampling uses the reparameterization trick so the
whole parameter-generation pipeline trains end-to-end (Eq. 20).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module, Parameter
from ..tensor import Tensor, ops


class SpatialLatent(Module):
    """Directly learnable per-sensor Gaussian z^(i) ~ N(μ^(i), Σ^(i)) (Eq. 5).

    Purely data-driven — no POI or location features, per the paper's design
    consideration.  ``deterministic=True`` collapses the distribution to its
    mean (the ablation of Table XI / the EnhanceNet special case).
    """

    def __init__(
        self,
        num_sensors: int,
        latent_dim: int,
        deterministic: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_sensors = num_sensors
        self.latent_dim = latent_dim
        self.deterministic = deterministic
        self.mu = Parameter(rng.standard_normal((num_sensors, latent_dim)) * 0.1)
        self.log_var = Parameter(np.full((num_sensors, latent_dim), -4.0))
        self._rng = rng

    def distribution(self) -> Tuple[Tensor, Tensor]:
        """Return ``(mu, log_var)``, each ``(N, k)``."""
        return self.mu, self.log_var

    def sample(self) -> Tensor:
        """Draw z ``(N, k)`` via reparameterization (mean if deterministic)."""
        if self.deterministic or not self.training:
            return self.mu
        draw, shape = self._rng.standard_normal, self.mu.shape
        eps = Tensor(ops.notify_host_input(draw(shape), lambda: draw(shape)))
        return self.mu + ops.exp(0.5 * self.log_var) * eps


class TemporalLatentEncoder(Module):
    """Variational encoder E_ψ producing z_t^(i) from recent history (Eq. 6-7).

    Input: the most recent ``history`` steps of each sensor,
    ``(..., N, H, F)``; the window is flattened and passed through a
    3-layer fully connected network (32 hidden units, ReLU — the paper's
    setting) with two output heads for μ_t and log Σ_t.
    """

    def __init__(
        self,
        history: int,
        in_features: int,
        latent_dim: int,
        hidden: int = 32,
        deterministic: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.history = history
        self.in_features = in_features
        self.latent_dim = latent_dim
        self.deterministic = deterministic
        self.backbone = MLP([history * in_features, hidden, hidden], activation="relu", rng=rng)
        self.mu_head = MLP([hidden, latent_dim], rng=rng)
        self.log_var_head = MLP([hidden, latent_dim], rng=rng)
        self._rng = rng

    def distribution(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Encode ``x (..., N, H, F)`` to ``(mu_t, log_var_t)`` ``(..., N, k)``."""
        flat = ops.reshape(x, (*x.shape[:-2], x.shape[-2] * x.shape[-1]))
        hidden = ops.relu(self.backbone(flat))
        mu_t = self.mu_head(hidden)
        # clip log-variance so early training cannot explode the sampler
        log_var_t = ops.clip(self.log_var_head(hidden), -8.0, 4.0)
        return mu_t, log_var_t

    def sample(self, x: Tensor) -> Tensor:
        """Draw z_t ``(..., N, k)`` (mean if deterministic or eval mode)."""
        mu_t, log_var_t = self.distribution(x)
        if self.deterministic or not self.training:
            return mu_t
        draw, shape = self._rng.standard_normal, mu_t.shape
        eps = Tensor(ops.notify_host_input(draw(shape), lambda: draw(shape)))
        return mu_t + ops.exp(0.5 * log_var_t) * eps


class STLatent(Module):
    """Combined latent Θ_t = z + z_t with its KL regularizer (Eq. 4, 20).

    ``mode`` selects what the ablations of the paper call:

    * ``"st"`` — full spatio-temporal: Θ = z + z_t (ST-WA),
    * ``"spatial"`` — Θ = z only (S-WA),
    * ``"temporal"`` — Θ = z_t only (meta-style, temporal-aware only).

    Because z and z_t are independent Gaussians, Θ is Gaussian with mean
    μ + μ_t and variance Σ + Σ_t; the KL term against N(0, I) is analytic.
    """

    MODES = ("st", "spatial", "temporal")

    def __init__(
        self,
        num_sensors: int,
        history: int,
        in_features: int,
        latent_dim: int,
        mode: str = "st",
        deterministic: bool = False,
        encoder_hidden: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.mode = mode
        self.latent_dim = latent_dim
        self.deterministic = deterministic
        if mode in ("st", "spatial"):
            self.spatial = SpatialLatent(num_sensors, latent_dim, deterministic=deterministic, rng=rng)
        else:
            self.spatial = None
        if mode in ("st", "temporal"):
            self.temporal = TemporalLatentEncoder(
                history, in_features, latent_dim, hidden=encoder_hidden, deterministic=deterministic, rng=rng
            )
        else:
            self.temporal = None
        self._rng = rng
        self._last_kl: Optional[Tensor] = None

    def forward(self, x: Tensor) -> Tensor:
        """Sample Θ for input ``x (..., N, H, F)``.

        Returns ``(..., N, k)`` when temporal adaption is active (Θ varies
        per sample) or ``(N, k)`` in pure-spatial mode.  Also computes and
        stashes the KL regularizer for :meth:`kl_divergence`.
        """
        mu_parts = []
        var_parts = []
        theta = None
        if self.spatial is not None:
            mu_s, log_var_s = self.spatial.distribution()
            mu_parts.append(mu_s)
            var_parts.append(ops.exp(log_var_s))
            theta = self.spatial.sample()
        if self.temporal is not None:
            mu_t, log_var_t = self.temporal.distribution(x)
            mu_parts.append(mu_t)
            var_parts.append(ops.exp(log_var_t))
            z_t = self.temporal.sample(x)
            theta = z_t if theta is None else theta + z_t

        mu = mu_parts[0] if len(mu_parts) == 1 else mu_parts[0] + mu_parts[1]
        var = var_parts[0] if len(var_parts) == 1 else var_parts[0] + var_parts[1]
        if self.deterministic:
            self._last_kl = None
        else:
            element = 0.5 * (var + mu * mu - 1.0 - ops.log(var))
            self._last_kl = ops.mean(ops.sum(element, axis=-1))
        return theta

    def kl_divergence(self) -> Optional[Tensor]:
        """KL[Θ || N(0, I)] of the latest forward pass (None if deterministic)."""
        return self._last_kl
