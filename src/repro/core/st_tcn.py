"""ST-aware TCN: generated convolution filters (completing the
model-agnostic claim).

Section IV-A.1 of the paper: the decoder "can produce model parameters for
different types of models", naming RNNs, TCNs, and attentions.  Table VII
demonstrates RNNs (GRU+S/+ST) and attentions (ATT+S/+ST); this module adds
the third family: a causal temporal convolution whose *filters* are decoded
per sensor (and per time window in "st" mode) from the latent Θ_t^(i).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops
from .generator import ParameterDecoder
from .latent import STLatent


@dataclass
class STTCNConfig:
    """Hyper-parameters of the enhanced TCN forecaster."""

    num_sensors: int
    in_features: int = 1
    history: int = 12
    horizon: int = 12
    channels: int = 16
    kernel_size: int = 2
    num_layers: int = 2
    latent_dim: int = 8
    latent_mode: str = "st"  # "st" -> TCN+ST, "spatial" -> TCN+S
    kl_weight: float = 0.02
    decoder_hidden: Tuple[int, ...] = (16, 32)
    predictor_hidden: int = 128
    seed: int = 0


class STAwareTCN(Module):
    """Causal TCN whose filters come from the ST-aware parameter generator.

    Each layer's kernel ``(K, C_in, C_out)`` is decoded per sensor from Θ;
    the convolution is applied with per-sensor weights via batched matmuls
    over the taps.  ``forward(x)``: ``(B, N, H, F)`` -> ``(B, N, U, F)``.
    """

    def __init__(self, config: STTCNConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.latent = STLatent(
            config.num_sensors,
            config.history,
            config.in_features,
            config.latent_dim,
            mode=config.latent_mode,
            rng=rng,
        )
        shapes = {}
        in_channels = config.in_features
        for layer in range(config.num_layers):
            for tap in range(config.kernel_size):
                shapes[f"l{layer}t{tap}"] = (in_channels, config.channels)
            shapes[f"l{layer}b"] = (1, config.channels)
            in_channels = config.channels
        self.decoder = ParameterDecoder(config.latent_dim, shapes, hidden=config.decoder_hidden, rng=rng)
        self.predictor = MLP(
            [config.channels, config.predictor_hidden, config.horizon * config.in_features],
            activation="relu",
            rng=rng,
        )
        self._last_kl: Optional[Tensor] = None

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, features = x.shape
        cfg = self.config
        theta = self.latent(x)
        self._last_kl = self.latent.kl_divergence()
        weights = self.decoder(theta)

        hidden = x
        for layer in range(cfg.num_layers):
            dilation = 2**layer
            left = (cfg.kernel_size - 1) * dilation
            pad_width = [(0, 0)] * (hidden.ndim - 2) + [(left, 0), (0, 0)]
            padded = ops.pad(hidden, pad_width)
            out = None
            for tap in range(cfg.kernel_size):
                start = tap * dilation
                slab = padded[:, :, start : start + history, :]  # (B, N, H, C_in)
                kernel = weights[f"l{layer}t{tap}"]  # (..., N, C_in, C_out)
                term = ops.matmul(slab, kernel)
                out = term if out is None else out + term
            bias = weights[f"l{layer}b"]  # (..., N, 1, C_out)
            out = out + bias
            out = ops.tanh(out)
            if out.shape[-1] == hidden.shape[-1]:
                out = out + hidden  # residual once channel widths align
            hidden = out

        last = hidden[:, :, -1, :]
        prediction = self.predictor(last)
        return ops.reshape(prediction, (batch, sensors, cfg.horizon, cfg.in_features))

    def kl_divergence(self) -> Optional[Tensor]:
        return self._last_kl
