"""Decoding latent variables to model parameters (paper Eq. 8).

The decoder D_ω is a shared MLP that maps each sensor's latent Θ_t^(i) to
that sensor's *model parameters* — projection matrices for attentions, gate
weights for RNNs.  Sharing D_ω across sensors is what makes the approach
scale: the naive per-sensor parameterization is O(N·d²) while this is
O(N·k + k·m₁ + m₁·m₂ + m₂·d²) (Section IV-A.3 of the paper).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops


class ParameterDecoder(Module):
    """Shared decoder D_ω: latent ``(..., k)`` -> named weight matrices.

    Parameters
    ----------
    latent_dim:
        Size k of the latent space.
    shapes:
        Mapping from parameter name to ``(in_features, out_features)``; e.g.
        ``{"K": (F, d), "V": (F, d)}`` for window attention or
        ``{"Q": ..., "K": ..., "V": ...}`` for canonical attention (Fig. 5).
    hidden:
        Widths of the decoder's hidden layers (paper default: 16, 32).
    """

    def __init__(
        self,
        latent_dim: int,
        shapes: Mapping[str, Tuple[int, int]],
        hidden: Sequence[int] = (16, 32),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if not shapes:
            raise ValueError("shapes must contain at least one parameter")
        rng = rng if rng is not None else np.random.default_rng()
        self.latent_dim = latent_dim
        self.shapes: Dict[str, Tuple[int, int]] = dict(shapes)
        self._offsets: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for name, (fan_in, fan_out) in self.shapes.items():
            size = fan_in * fan_out
            self._offsets[name] = (offset, offset + size)
            offset += size
        self.total_size = offset
        self.mlp = MLP([latent_dim, *hidden, self.total_size], activation="relu", rng=rng)
        # Small output scale keeps generated projections near the magnitude a
        # Xavier-initialized static projection would have at the start.
        self._scale = 1.0 / np.sqrt(max(hidden[-1], 1))

    def forward(self, theta: Tensor) -> Dict[str, Tensor]:
        """Decode ``theta (..., k)`` to ``{name: (..., in, out)}`` matrices.

        Each named block is produced by its own fused ``linear`` over a
        column slice of the final layer's weight, i.e.
        ``(h @ W + b)[..., s:e] == h @ W[:, s:e] + b[s:e]``.  Slicing the
        (small, 2-D) weight parameter instead of the (large, batched) MLP
        output keeps the backward scatter on a few-hundred-KB buffer rather
        than a full ``batch x sensors x total_size`` one — this was the
        dominant ``getitem`` backward cost of an ST-WA step.
        """
        hidden = theta
        last_index = len(self.mlp.layers) - 1
        for i in range(last_index):
            hidden = self.mlp._activation(self.mlp.layers[i](hidden))
        head = self.mlp.layers[last_index]
        out: Dict[str, Tensor] = {}
        for name, (fan_in, fan_out) in self.shapes.items():
            start, stop = self._offsets[name]
            bias = head.bias[start:stop] if head.bias is not None else None
            block = ops.linear(hidden, head.weight[:, start:stop], bias) * self._scale
            out[name] = ops.reshape(block, (*block.shape[:-1], fan_in, fan_out))
        return out
