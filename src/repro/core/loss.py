"""Training objective (paper Section IV-E, Eq. 20-21).

Huber loss on the forecasts plus an α-weighted KL divergence pulling the
latent posterior towards the standard-normal prior.  The KL term is taken
from the model's latest forward pass (it depends on the input batch through
the temporal encoder).
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from ..tensor import Tensor, functional


class _HasKL(Protocol):
    def kl_divergence(self) -> Optional[Tensor]: ...


class STWALoss:
    """Huber + α·KL objective.

    Parameters
    ----------
    delta:
        Huber threshold (Eq. 21).
    kl_weight:
        α in Eq. 20; 0 disables the regularizer (Table X's "without" run).
    """

    def __init__(self, delta: float = 1.0, kl_weight: float = 0.1):
        if delta <= 0:
            raise ValueError("delta must be positive")
        if kl_weight < 0:
            raise ValueError("kl_weight must be non-negative")
        self.delta = delta
        self.kl_weight = kl_weight

    def __call__(self, prediction: Tensor, target: Tensor, model: Optional[_HasKL] = None) -> Tensor:
        """Compute the full objective for one batch.

        Targets containing NaN/Inf (dead sensors, see
        :mod:`repro.data.imputation`) switch the Huber term to its masked
        variant so missing positions contribute neither loss nor gradient.
        """
        if np.isfinite(target.data).all():
            loss = functional.huber_loss(prediction, target, delta=self.delta)
        else:
            loss = functional.masked_huber_loss(prediction, target, delta=self.delta)
        if model is not None and self.kl_weight > 0:
            kl = model.kl_divergence()
            if kl is not None:
                loss = loss + self.kl_weight * kl
        return loss
