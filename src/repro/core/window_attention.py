"""Window Attention with learnable proxies (paper Section IV-B).

The input series of length H is split into W = H / S windows.  Inside each
window, a small constant number p of learnable *proxies* replaces the Query
of canonical attention: every timestamp computes one score per proxy rather
than per timestamp, reducing complexity from O(H²) to O(p·H) = O(H)
(Eq. 10-11).  The p proxy outputs of a window are aggregated into a single
vector by a learned gate (Eq. 12-13), and information flows across windows
by fusing the previous window's output into the next window's proxies
through ϑ (Eq. 14) — restoring the long receptive field the windowing
removed.

The Key/Value projections may be

* static shared parameters (the *WA* ablation),
* generated per sensor from z (the *S-WA* ablation), or
* generated per sensor per sample from Θ_t (the full *ST-WA*),

all through the same ``projections`` argument.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Linear, Module, Parameter, init
from ..nn.attention import merge_heads, split_heads
from ..tensor import Tensor, ops


class ProxyAggregator(Module):
    """Weighted proxy aggregation (Eq. 12-13).

    A two-layer gate ``A = sigmoid(W2 tanh(W1 h))`` scores each proxy
    elementwise; the window representation is the gated sum over proxies.
    ``mode="mean"`` replaces the gate with a uniform average — the weaker
    variant of Table XIV.
    """

    MODES = ("weighted", "mean")

    def __init__(self, model_dim: int, mode: str = "weighted", rng: Optional[np.random.Generator] = None):
        super().__init__()
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.mode = mode
        if mode == "weighted":
            self.w1 = Linear(model_dim, model_dim, rng=rng)
            self.w2 = Linear(model_dim, model_dim, rng=rng)

    def forward(self, proxy_outputs: Tensor) -> Tensor:
        """Aggregate ``(..., p, d)`` proxy outputs into ``(..., d)``."""
        if self.mode == "mean":
            return ops.mean(proxy_outputs, axis=-2)
        weights = ops.sigmoid(self.w2(ops.tanh(self.w1(proxy_outputs))))
        return ops.sum(weights * proxy_outputs, axis=-2)


class WindowAttention(Module):
    """One layer of proxy-based window attention (Eq. 10-14).

    Parameters
    ----------
    num_sensors:
        N — each sensor owns its own proxies (the proxy tensor P is
        ``(W, N, p, d)``, as in the paper).
    in_features:
        Feature size of the incoming series (F for the first layer, d after).
    model_dim:
        d — proxy/output dimensionality.
    num_windows / window_size:
        W and S with ``W * S = input length``.
    num_proxies:
        p — a small constant (1-3 in the paper).
    num_heads:
        Multi-head split of the score computation (the paper uses 8 at full
        scale; 1 is the default at reproduction scale).
    cross_window_fusion:
        Enables ϑ (Eq. 14).  Disabled for the single-layer WA-1 ablation
        studies on receptive field.
    """

    def __init__(
        self,
        num_sensors: int,
        in_features: int,
        model_dim: int,
        num_windows: int,
        window_size: int,
        num_proxies: int = 1,
        num_heads: int = 1,
        aggregator: str = "weighted",
        cross_window_fusion: bool = True,
        static_projections: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if model_dim % num_heads:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_sensors = num_sensors
        self.in_features = in_features
        self.model_dim = model_dim
        self.num_windows = num_windows
        self.window_size = window_size
        self.num_proxies = num_proxies
        self.num_heads = num_heads
        self.cross_window_fusion = cross_window_fusion
        # P ∈ R^{W x N x p x d}: per-window, per-sensor learnable proxies
        self.proxies = Parameter(init.xavier_uniform((num_windows, num_sensors, num_proxies, model_dim), rng))
        self.aggregator = ProxyAggregator(model_dim, mode=aggregator, rng=rng)
        # ϑ (Eq. 14) only exists when there is a previous window to fuse from
        use_fusion = cross_window_fusion and num_windows > 1
        self.fusion = Linear(2 * model_dim, model_dim, rng=rng) if use_fusion else None
        # static projections back the spatio-temporal *agnostic* configuration
        # (plain WA); layers that always receive generated projections skip
        # them so parameter counts stay honest (Table VIII).
        if static_projections:
            self.static_key = Parameter(init.xavier_uniform((in_features, model_dim), rng))
            self.static_value = Parameter(init.xavier_uniform((in_features, model_dim), rng))
        else:
            self.static_key = None
            self.static_value = None

    @property
    def input_length(self) -> int:
        return self.num_windows * self.window_size

    def forward(self, x: Tensor, projections: Optional[Dict[str, Tensor]] = None) -> Tensor:
        """Apply window attention.

        Parameters
        ----------
        x:
            ``(B, N, T, in_features)`` with ``T = W * S``.
        projections:
            Optional ``{"K": ..., "V": ...}`` generated projections with
            shape ``(in, d)``, ``(N, in, d)`` or ``(B, N, in, d)``; when
            omitted the layer's static (agnostic) projections are used.

        Returns
        -------
        ``(B, N, W, d)`` — one aggregated representation per window.
        """
        batch, sensors, length, features = x.shape
        if length != self.input_length:
            raise ValueError(
                f"input length {length} != num_windows*window_size = {self.input_length}"
            )
        if sensors != self.num_sensors:
            raise ValueError(f"expected {self.num_sensors} sensors, got {sensors}")
        if features != self.in_features:
            raise ValueError(f"expected {self.in_features} input features, got {features}")
        if projections is not None:
            key_proj, value_proj = projections["K"], projections["V"]
        else:
            if self.static_key is None:
                raise RuntimeError(
                    "layer was built without static projections; pass generated ones"
                )
            key_proj, value_proj = self.static_key, self.static_value

        scale = 1.0 / np.sqrt(self.model_dim // self.num_heads)
        outputs = []
        previous: Optional[Tensor] = None
        for w in range(self.num_windows):
            window = x[:, :, w * self.window_size : (w + 1) * self.window_size, :]
            keys = ops.matmul(window, key_proj)  # (B, N, S, d)
            values = ops.matmul(window, value_proj)
            proxies = self.proxies[w]  # (N, p, d)
            if self.fusion is not None and previous is not None:
                # ϑ(ĥ_{w-1} || P_w,j): broadcast the previous window output
                # over the p proxies and fuse through a linear layer (Eq. 14)
                prev = ops.reshape(previous, (batch, sensors, 1, self.model_dim))
                prev = ops.broadcast_to(prev, (batch, sensors, self.num_proxies, self.model_dim))
                base = ops.broadcast_to(
                    ops.reshape(proxies, (1, sensors, self.num_proxies, self.model_dim)),
                    (batch, sensors, self.num_proxies, self.model_dim),
                )
                proxies = self.fusion(ops.concat([prev, base], axis=-1))
            proxy_outputs = self._attend(proxies, keys, values, scale)
            aggregated = self.aggregator(proxy_outputs)  # (B, N, d)
            outputs.append(aggregated)
            previous = aggregated
        return ops.stack(outputs, axis=2)  # (B, N, W, d)

    def _attend(self, proxies: Tensor, keys: Tensor, values: Tensor, scale: float) -> Tensor:
        """Proxy attention within one window (Eq. 10), with head splitting."""
        if self.num_heads == 1:
            logits = ops.matmul(proxies, ops.swapaxes(keys, -1, -2)) * scale  # (B, N, p, S)
            scores = ops.softmax(logits, axis=-1)
            return ops.matmul(scores, values)  # (B, N, p, d)
        proxies_h = split_heads(proxies, self.num_heads)  # (N, h, p, dh) or (B, N, h, p, dh)
        keys_h = split_heads(keys, self.num_heads)  # (B, N, h, S, dh)
        values_h = split_heads(values, self.num_heads)
        logits = ops.matmul(proxies_h, ops.swapaxes(keys_h, -1, -2)) * scale
        scores = ops.softmax(logits, axis=-1)
        return merge_heads(ops.matmul(scores, values_h))
