"""ST-aware canonical self-attention (paper Eq. 9 / Table VII's ATT+S, ATT+ST).

Demonstrates that the parameter-generation framework is *model-agnostic*:
the same latent/decoder machinery that powers ST-WA here generates the
Q/K/V projection matrices of a plain Transformer-style forecaster, turning
the spatio-temporal agnostic ATT baseline into ATT+S (spatial-aware) or
ATT+ST (spatio-temporal aware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Linear, Module, ModuleList
from ..tensor import Tensor, ops
from .generator import ParameterDecoder
from .latent import STLatent


@dataclass
class STAttentionConfig:
    """Hyper-parameters for the enhanced canonical-attention forecaster."""

    num_sensors: int
    in_features: int = 1
    history: int = 12
    horizon: int = 12
    model_dim: int = 16
    latent_dim: int = 8
    num_layers: int = 2
    latent_mode: str = "st"  # "st" -> ATT+ST, "spatial" -> ATT+S
    kl_weight: float = 0.1
    decoder_hidden: Tuple[int, ...] = (16, 32)
    predictor_hidden: int = 128
    seed: int = 0


class STAwareAttentionLayer(Module):
    """One canonical attention layer with *generated* projections (Eq. 9)."""

    def __init__(self, in_features: int, model_dim: int, latent_dim: int, decoder_hidden, rng):
        super().__init__()
        self.model_dim = model_dim
        self.decoder = ParameterDecoder(
            latent_dim,
            {"Q": (in_features, model_dim), "K": (in_features, model_dim), "V": (in_features, model_dim)},
            hidden=decoder_hidden,
            rng=rng,
        )

    def forward(self, x: Tensor, theta: Tensor) -> Tensor:
        """``x (B, N, H, F)``, ``theta (B, N, k)`` or ``(N, k)`` -> ``(B, N, H, d)``."""
        projections = self.decoder(theta)
        query = ops.matmul(x, projections["Q"])
        key = ops.matmul(x, projections["K"])
        value = ops.matmul(x, projections["V"])
        scale = 1.0 / np.sqrt(self.model_dim)
        scores = ops.softmax(ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale, axis=-1)
        return ops.matmul(scores, value)


class STAwareTransformer(Module):
    """Stacked ST-aware attention + predictor (the +S / +ST rows of Table VII)."""

    def __init__(self, config: STAttentionConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.latent = STLatent(
            config.num_sensors,
            config.history,
            config.in_features,
            config.latent_dim,
            mode=config.latent_mode,
            rng=rng,
        )
        self.layers = ModuleList()
        in_features = config.in_features
        for _ in range(config.num_layers):
            self.layers.append(
                STAwareAttentionLayer(in_features, config.model_dim, config.latent_dim, config.decoder_hidden, rng)
            )
            in_features = config.model_dim
        self.predictor = MLP(
            [config.history * config.model_dim, config.predictor_hidden, config.horizon * config.in_features],
            activation="relu",
            rng=rng,
        )
        self._last_kl: Optional[Tensor] = None

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, _ = x.shape
        cfg = self.config
        theta = self.latent(x)
        self._last_kl = self.latent.kl_divergence()
        hidden = x
        for layer in self.layers:
            hidden = layer(hidden, theta)
        flat = ops.reshape(hidden, (batch, sensors, history * cfg.model_dim))
        out = self.predictor(flat)
        return ops.reshape(out, (batch, sensors, cfg.horizon, cfg.in_features))

    def kl_divergence(self) -> Optional[Tensor]:
        return self._last_kl
