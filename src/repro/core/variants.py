"""Factories for the paper's model variants and ablations (Table VIII etc.).

Each factory takes the shared experiment dimensions and returns a ready
model; they exist so harness code and tests name variants the way the paper
does (SA, WA-1, WA, S-WA, ST-WA, deterministic, mean-aggregator).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .model import STWA, STWAConfig


def _base_config(
    num_sensors: int,
    history: int,
    horizon: int,
    window_sizes: Optional[Tuple[int, ...]],
    seed: int,
    **overrides,
) -> STWAConfig:
    if window_sizes is None:
        window_sizes = default_window_sizes(history)
    return STWAConfig(
        num_sensors=num_sensors,
        history=history,
        horizon=horizon,
        window_sizes=window_sizes,
        seed=seed,
        **overrides,
    )


def default_window_sizes(history: int) -> Tuple[int, ...]:
    """The paper's stacking: (3, 2, 2) for H=12, (6, 6, ...) style for long H.

    For other H values we greedily pick small divisors so the stack depth
    is ~3 and every layer length divides evenly.
    """
    if history == 12:
        return (3, 2, 2)
    if history == 72:
        return (6, 6, 2)
    sizes = []
    remaining = history
    for _ in range(3):
        for candidate in (3, 2, 4, 6, 5):
            if remaining % candidate == 0 and remaining // candidate >= 1:
                sizes.append(candidate)
                remaining //= candidate
                break
        else:
            break
        if remaining == 1:
            break
    if not sizes:
        sizes = [history]
    return tuple(sizes)


def make_st_wa(
    num_sensors: int,
    history: int = 12,
    horizon: int = 12,
    window_sizes: Optional[Tuple[int, ...]] = None,
    seed: int = 0,
    **overrides,
) -> STWA:
    """Full ST-WA: spatio-temporal aware window attention (the paper's model)."""
    overrides.setdefault("latent_mode", "st")
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))


def make_s_wa(num_sensors: int, history: int = 12, horizon: int = 12, window_sizes=None, seed: int = 0, **overrides) -> STWA:
    """S-WA ablation: spatial-aware only (z_t removed)."""
    overrides.setdefault("latent_mode", "spatial")
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))


def make_wa(num_sensors: int, history: int = 12, horizon: int = 12, window_sizes=None, seed: int = 0, **overrides) -> STWA:
    """WA ablation: stacked window attention, agnostic (static) projections."""
    overrides.setdefault("latent_mode", None)
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))


def make_wa1(num_sensors: int, history: int = 12, horizon: int = 12, window_size: Optional[int] = None, seed: int = 0, **overrides) -> STWA:
    """WA-1 ablation: a single window-attention layer (no stacking)."""
    size = window_size if window_size is not None else (3 if history % 3 == 0 else history)
    overrides.setdefault("latent_mode", None)
    return STWA(_base_config(num_sensors, history, horizon, (size,), seed, **overrides))


def make_deterministic_st_wa(num_sensors: int, history: int = 12, horizon: int = 12, window_sizes=None, seed: int = 0, **overrides) -> STWA:
    """Deterministic ST-WA (Table XI): latents collapse to their means, no KL."""
    overrides.setdefault("latent_mode", "st")
    overrides.setdefault("deterministic", True)
    overrides.setdefault("kl_weight", 0.0)
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))


def make_flow_st_wa(num_sensors: int, history: int = 12, horizon: int = 12, window_sizes=None, flow_layers: int = 2, seed: int = 0, **overrides) -> STWA:
    """ST-WA with normalizing-flow (non-Gaussian) latents — the paper's
    stated future-work extension (see :mod:`repro.core.flows`)."""
    overrides.setdefault("latent_mode", "st")
    overrides.setdefault("flow_layers", flow_layers)
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))


def make_mean_aggregator_st_wa(num_sensors: int, history: int = 12, horizon: int = 12, window_sizes=None, seed: int = 0, **overrides) -> STWA:
    """ST-WA with the uniform mean proxy aggregator (Table XIV)."""
    overrides.setdefault("latent_mode", "st")
    overrides.setdefault("aggregator", "mean")
    return STWA(_base_config(num_sensors, history, horizon, window_sizes, seed, **overrides))
