"""Normalizing-flow latents — the paper's stated future work.

The paper's conclusion: *"A limitation of our proposal is that the learning
is based on the assumption that the latent stochastic variables follow
Gaussian distributions. In future research, it is of interest to explore
methods such as normalizing flows to employ non-Gaussian stochastic
variables."*  This module implements that extension:

* :class:`PlanarFlow` — the planar transform of Rezende & Mohamed (2015),
  ``z' = z + u · tanh(wᵀz + b)``, with the ``u``-reparameterization that
  guarantees invertibility and an analytic log-determinant.
* :class:`FlowSTLatent` — drop-in replacement for
  :class:`repro.core.latent.STLatent`: the Gaussian Θ = z + z_t is pushed
  through a stack of planar flows, making the latent distribution
  non-Gaussian.  The KL regularizer of Eq. 20 no longer has a closed form,
  so it is estimated by single-sample Monte Carlo:
  ``KL ≈ log q0(z0) − Σ log|det J_k| − log p(z_K)``.

Enable via ``STWAConfig(flow_layers=K)`` or :func:`repro.core.make_flow_st_wa`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Module, ModuleList, Parameter
from ..tensor import Tensor, ops
from .latent import STLatent

_LOG_2PI = float(np.log(2.0 * np.pi))


class PlanarFlow(Module):
    """One invertible planar transform with analytic log-determinant.

    ``forward(z)`` returns ``(z', log_det)`` where ``log_det`` has the
    shape of ``z`` minus the last (latent) axis.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.weight = Parameter(rng.standard_normal(dim) * 0.1)
        self.scale = Parameter(rng.standard_normal(dim) * 0.1)
        self.bias = Parameter(np.zeros(1))

    def _constrained_scale(self) -> Tensor:
        """Reparameterize u so that wᵀû >= -1 (invertibility condition)."""
        w = self.weight
        wu = ops.sum(w * self.scale, axis=-1, keepdims=True)
        m = -1.0 + ops.softplus(wu)
        w_norm_sq = ops.sum(w * w, axis=-1, keepdims=True) + 1e-8
        return self.scale + (m - wu) * w / w_norm_sq

    def forward(self, z: Tensor) -> Tuple[Tensor, Tensor]:
        u_hat = self._constrained_scale()
        linear = ops.sum(z * self.weight, axis=-1, keepdims=True) + self.bias
        activation = ops.tanh(linear)
        z_next = z + u_hat * activation
        # psi(z) = (1 - tanh^2) * w ; log|det| = log|1 + u_hat . psi|
        psi_u = (1.0 - activation * activation) * ops.sum(u_hat * self.weight, axis=-1, keepdims=True)
        log_det = ops.log(ops.abs(1.0 + psi_u) + 1e-8)
        return z_next, ops.reshape(log_det, log_det.shape[:-1])


def _gaussian_log_prob(z: Tensor, mu: Tensor, var: Tensor) -> Tensor:
    """Sum over the latent axis of log N(z; mu, diag(var))."""
    element = -0.5 * (_LOG_2PI + ops.log(var) + (z - mu) * (z - mu) / var)
    return ops.sum(element, axis=-1)


def _standard_log_prob(z: Tensor) -> Tensor:
    element = -0.5 * (_LOG_2PI + z * z)
    return ops.sum(element, axis=-1)


class FlowSTLatent(STLatent):
    """STLatent whose posterior is transformed by planar flows.

    Behaves exactly like :class:`STLatent` when ``flow_layers=0``; with
    flows, the sampled Θ is non-Gaussian and the KL is the Monte-Carlo
    free-energy estimate described in the module docstring.
    """

    def __init__(self, *args, flow_layers: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if flow_layers < 1:
            raise ValueError("flow_layers must be >= 1 (use STLatent for 0)")
        rng = kwargs.get("rng") or np.random.default_rng()
        self.flows = ModuleList(PlanarFlow(self.latent_dim, rng=rng) for _ in range(flow_layers))

    def forward(self, x: Tensor) -> Tensor:
        mu_parts, var_parts = [], []
        if self.spatial is not None:
            mu_s, log_var_s = self.spatial.distribution()
            mu_parts.append(mu_s)
            var_parts.append(ops.exp(log_var_s))
        if self.temporal is not None:
            mu_t, log_var_t = self.temporal.distribution(x)
            mu_parts.append(mu_t)
            var_parts.append(ops.exp(log_var_t))
        mu = mu_parts[0] if len(mu_parts) == 1 else mu_parts[0] + mu_parts[1]
        var = var_parts[0] if len(var_parts) == 1 else var_parts[0] + var_parts[1]

        if self.deterministic or not self.training:
            z0 = mu
        else:
            draw, shape = self._rng.standard_normal, mu.shape
            eps = Tensor(ops.notify_host_input(draw(shape), lambda: draw(shape)))
            z0 = mu + ops.sqrt(var) * eps

        log_q = _gaussian_log_prob(z0, mu, var)
        z = z0
        for flow in self.flows:
            z, log_det = flow(z)
            log_q = log_q - log_det
        if self.deterministic:
            self._last_kl = None
        else:
            # single-sample Monte-Carlo KL[q_K || N(0, I)]
            self._last_kl = ops.mean(log_q - _standard_log_prob(z))
        return z
