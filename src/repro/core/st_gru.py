"""ST-aware GRU (paper Table VII's GRU+S / GRU+ST).

The second half of the model-agnostic claim: the same latent/decoder
machinery generates per-sensor (and optionally per-sample) GRU gate weights,
turning a spatio-temporal agnostic GRU into a spatio-temporal aware one.
The generated parameters are the input-to-gates matrix ``W_x (F, 3h)``, the
hidden-to-gates matrix ``W_h (h, 3h)``, and the gate bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops
from .generator import ParameterDecoder
from .latent import STLatent


@dataclass
class STGRUConfig:
    """Hyper-parameters of the enhanced GRU forecaster."""

    num_sensors: int
    in_features: int = 1
    history: int = 12
    horizon: int = 12
    hidden_size: int = 16
    latent_dim: int = 8
    latent_mode: str = "st"  # "st" -> GRU+ST, "spatial" -> GRU+S
    kl_weight: float = 0.1
    decoder_hidden: Tuple[int, ...] = (16, 32)
    predictor_hidden: int = 128
    seed: int = 0


class STAwareGRU(Module):
    """GRU forecaster whose cell weights are generated from Θ_t^(i).

    ``forward(x)`` maps ``(B, N, H, F)`` to ``(B, N, U, F)``; the recurrence
    runs along H with the generated per-sensor gate weights.
    """

    def __init__(self, config: STGRUConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        h = config.hidden_size
        self.latent = STLatent(
            config.num_sensors,
            config.history,
            config.in_features,
            config.latent_dim,
            mode=config.latent_mode,
            rng=rng,
        )
        self.decoder = ParameterDecoder(
            config.latent_dim,
            {
                "Wx": (config.in_features, 3 * h),
                "Wh": (h, 3 * h),
                "b": (1, 3 * h),
            },
            hidden=config.decoder_hidden,
            rng=rng,
        )
        self.predictor = MLP(
            [h, config.predictor_hidden, config.horizon * config.in_features],
            activation="relu",
            rng=rng,
        )
        self._last_kl: Optional[Tensor] = None

    def forward(self, x: Tensor) -> Tensor:
        batch, sensors, history, features = x.shape
        cfg = self.config
        h_size = cfg.hidden_size
        theta = self.latent(x)
        self._last_kl = self.latent.kl_divergence()
        weights = self.decoder(theta)
        weight_x = weights["Wx"]  # (..., N, F, 3h)
        weight_h = weights["Wh"]  # (..., N, h, 3h)
        bias = ops.reshape(weights["b"], (*weights["b"].shape[:-2], 3 * h_size))  # (..., N, 3h)

        hidden = Tensor(np.zeros((batch, sensors, h_size)))
        for t in range(history):
            step = x[:, :, t, :]  # (B, N, F)
            gates_x = ops.sum(ops.reshape(step, (batch, sensors, features, 1)) * weight_x, axis=-2) + bias
            gates_h = ops.sum(ops.reshape(hidden, (batch, sensors, h_size, 1)) * weight_h, axis=-2)
            reset = ops.sigmoid(gates_x[..., :h_size] + gates_h[..., :h_size])
            update = ops.sigmoid(
                gates_x[..., h_size : 2 * h_size] + gates_h[..., h_size : 2 * h_size]
            )
            candidate = ops.tanh(gates_x[..., 2 * h_size :] + reset * gates_h[..., 2 * h_size :])
            hidden = update * hidden + (1.0 - update) * candidate

        out = self.predictor(hidden)
        return ops.reshape(out, (batch, sensors, cfg.horizon, cfg.in_features))

    def kl_divergence(self) -> Optional[Tensor]:
        return self._last_kl
