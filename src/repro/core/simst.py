"""SimST-style graph-free per-sensor forecaster (scaling track).

"Do We Really Need Graph Neural Networks for Traffic Forecasting?" argues
that a *per-sensor* model — one set of shared weights applied to every
sensor independently, with spatial context folded into the **inputs**
instead of the architecture — matches spatio-temporal GNNs at a fraction of
their cost.  This module is that baseline for our substrate:

* **Proximity-encoded inputs.**  Each sensor's history window is augmented
  with a neighbor-aggregate channel: a fixed (non-learned) top-``k``
  proximity average of its graph neighbors' windows.  The aggregation is
  the *only* place the sensor graph appears; it is a preprocessing step on
  the input, not a layer, so it is computed once per batch and the rest of
  the forward is embarrassingly parallel across sensors.
* **Learned node embeddings.**  A ``(N, E)`` embedding table is the only
  per-sensor parameter; every other weight is shared, so parameter count
  grows O(N·E) instead of O(N²) and the model scales past graph-bound
  architectures (see :class:`repro.training.memory.CapacityPlanner`).
* **Shared-weight encoder.**  An MLP (or GRU) over the augmented window,
  concatenated with the node embedding, into the usual U-step predictor
  head — scaled ``(B, N, H, F)`` in, scaled ``(B, N, U, F)`` out, the
  repo-wide forecaster contract.

Sensor sharding
---------------
Because sensors only interact through the input-side aggregation, the model
declares ``sensor_shardable = True``: :class:`repro.exec.ShardedExecutor`
computes :meth:`SimSTForecaster.augment` on the full network in the parent,
splits the augmented batch along the sensor axis, and runs each contiguous
shard on a worker that has called :meth:`set_sensor_shard` so the embedding
lookup indexes the right rows.  The sharded loss/gradient recombine exactly
(see DESIGN.md §15): shared weights receive the finite-target-weighted mean
of shard gradients, and embedding rows are touched by exactly one shard.

The neighbor structure is stored as top-``k`` ``(indices, weights)`` pairs,
never as a dense ``(N, N)`` operator, so a metro-scale N=10k instance costs
kilobytes of proximity state instead of gigabytes — neighbors can also be
passed in directly (``neighbors=(idx, wt)``) when no dense adjacency exists
at that scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import GRU, MLP, Module, Parameter
from ..tensor import Tensor, ops

__all__ = ["SimSTForecaster", "make_simst", "topk_neighbors"]


def topk_neighbors(
    adjacency: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce a dense adjacency to top-``k`` proximity ``(indices, weights)``.

    Direction is folded away (``A + Aᵀ``: upstream and downstream sensors
    are both "near"), the diagonal is dropped, and each row keeps its ``k``
    strongest neighbors with weights normalized to sum to 1.  Isolated
    sensors get all-zero weights, so their aggregate channel is zero — the
    shared encoder still sees their own window.  Ties break by sensor id
    (stable sort) so the reduction is deterministic.
    """
    dense = np.asarray(adjacency, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {dense.shape}")
    num_sensors = dense.shape[0]
    proximity = dense + dense.T
    np.fill_diagonal(proximity, 0.0)
    k = max(1, min(k, num_sensors - 1)) if num_sensors > 1 else 1
    order = np.argsort(-proximity, axis=1, kind="stable")[:, :k]
    weights = np.take_along_axis(proximity, order, axis=1)
    totals = weights.sum(axis=1, keepdims=True)
    weights = weights / np.where(totals > 0, totals, 1.0)
    return order.astype(np.int64), weights


class SimSTForecaster(Module):
    """Per-sensor MLP/GRU over proximity-augmented windows + node embeddings.

    Parameters
    ----------
    num_sensors, adjacency, history, horizon:
        Network size, (optional) dense adjacency for the proximity
        encoding, and the task shape — positionally compatible with the
        registry's graph-model builder.
    hidden / embedding_dim / predictor_hidden:
        Shared encoder width, per-sensor embedding size, predictor width.
    num_neighbors:
        Top-``k`` kept per sensor by :func:`topk_neighbors`.
    encoder:
        ``"mlp"`` (flattened window) or ``"gru"`` (recurrent over the
        augmented window).
    neighbors:
        Precomputed ``(indices, weights)`` arrays, each ``(N, k)`` —
        bypasses the dense adjacency entirely (the city-scale path).
    """

    #: contract flag read by :class:`repro.exec.ShardedExecutor`: sensors
    #: only couple through :meth:`augment`, so the core splits exactly
    sensor_shardable = True

    def __init__(
        self,
        num_sensors: int,
        adjacency: Optional[np.ndarray] = None,
        history: int = 12,
        horizon: int = 12,
        in_features: int = 1,
        hidden: int = 64,
        embedding_dim: int = 16,
        predictor_hidden: int = 128,
        num_neighbors: int = 8,
        encoder: str = "mlp",
        neighbors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        seed: int = 0,
    ):
        super().__init__()
        if encoder not in ("mlp", "gru"):
            raise ValueError(f"encoder must be 'mlp' or 'gru', got {encoder!r}")
        rng = np.random.default_rng(seed)
        self.num_sensors = num_sensors
        self.history = history
        self.horizon = horizon
        self.in_features = in_features
        self.hidden = hidden
        self.encoder = encoder
        if neighbors is not None:
            idx, wt = neighbors
            idx = np.asarray(idx, dtype=np.int64)
            wt = np.asarray(wt, dtype=np.float64)
            if idx.shape != wt.shape or idx.ndim != 2 or idx.shape[0] != num_sensors:
                raise ValueError(
                    f"neighbors must be two (N, k) arrays, got {idx.shape} / {wt.shape}"
                )
            if idx.size and (idx.min() < 0 or idx.max() >= num_sensors):
                raise ValueError("neighbor indices out of range")
        elif adjacency is not None:
            idx, wt = topk_neighbors(adjacency, num_neighbors)
        else:  # graph-free degenerate case: zero aggregate channel
            idx = np.zeros((num_sensors, 1), dtype=np.int64)
            wt = np.zeros((num_sensors, 1), dtype=np.float64)
        self._neighbor_idx = idx
        self._neighbor_wt = wt
        self._shard: Optional[Tuple[int, int]] = None

        self.node_embedding = Parameter(
            rng.standard_normal((num_sensors, embedding_dim)) * 0.1
        )
        window_features = 2 * in_features  # raw channel + neighbor aggregate
        if encoder == "gru":
            self.gru = GRU(window_features, hidden, rng=rng)
            encoded = hidden
        else:
            self.mlp = MLP(
                [history * window_features, hidden, hidden],
                activation="relu",
                rng=rng,
            )
            encoded = hidden
        self.head = MLP(
            [encoded + embedding_dim, predictor_hidden, horizon * in_features],
            activation="relu",
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # sensor sharding
    # ------------------------------------------------------------------ #
    def set_sensor_shard(self, start: int, stop: int) -> None:
        """Restrict the embedding lookup to sensors ``[start, stop)``.

        Called on worker copies by the sharded execution path; the forward
        then expects pre-augmented ``(B, stop-start, H, 2F)`` inputs.
        ``clear_sensor_shard`` restores full-network operation.
        """
        if not (0 <= start < stop <= self.num_sensors):
            raise ValueError(
                f"sensor shard [{start}, {stop}) out of range for N={self.num_sensors}"
            )
        self._shard = (int(start), int(stop))

    def clear_sensor_shard(self) -> None:
        self._shard = None

    @property
    def sensor_shard(self) -> Optional[Tuple[int, int]]:
        return self._shard

    def augment(self, windows: np.ndarray) -> np.ndarray:
        """Append the proximity-aggregate channel: ``(B, N, H, F) -> (B, N, H, 2F)``.

        Pure NumPy and fully deterministic — the sharded parent and the
        serial forward call the *same* routine, which is what makes the
        sharded step bit-identical in its inputs.  Needs the full network
        (aggregation reads neighbor rows), so it always runs before any
        sensor split.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 4 or windows.shape[1] != self.num_sensors:
            raise ValueError(
                f"augment needs the full (B, {self.num_sensors}, H, F) batch, "
                f"got shape {windows.shape}"
            )
        gathered = windows[:, self._neighbor_idx]  # (B, N, k, H, F)
        aggregate = np.einsum("nk,bnkhf->bnhf", self._neighbor_wt, gathered)
        return np.concatenate([windows, aggregate], axis=-1)

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (B, N, H, F) input, got shape {x.shape}")
        batch, sensors, history, features = x.shape
        if history != self.history:
            raise ValueError(f"expected history {self.history}, got {history}")
        if features == self.in_features:
            # full-network path: aggregate host-side, then enter the graph.
            # The aggregate is a data-dependent host array, so a compiled
            # trace must not freeze it into the plan.
            ops.notify_compile_unsupported(
                "SimST host-side neighbor aggregation is data-dependent"
            )
            if self._shard is not None:
                raise ValueError(
                    "model holds a sensor shard; feed pre-augmented windows"
                )
            x = Tensor(self.augment(x.data))
        elif features != 2 * self.in_features:
            raise ValueError(
                f"expected {self.in_features} raw or {2 * self.in_features} "
                f"augmented features, got {features}"
            )
        if self._shard is None:
            if sensors != self.num_sensors:
                raise ValueError(
                    f"expected {self.num_sensors} sensors, got {sensors}"
                )
            embedding = self.node_embedding
        else:
            start, stop = self._shard
            if sensors != stop - start:
                raise ValueError(
                    f"shard [{start}, {stop}) expects {stop - start} sensors, "
                    f"got {sensors}"
                )
            embedding = ops.getitem(self.node_embedding, slice(start, stop))

        if self.encoder == "gru":
            _, encoded = self.gru(x)  # (B, Ns, hidden)
        else:
            flat = ops.reshape(x, (batch, sensors, history * x.shape[3]))
            encoded = self.mlp(flat)  # (B, Ns, hidden)
        # broadcast the (Ns, E) embedding over the batch through an add
        carrier = Tensor(np.zeros((batch,) + tuple(embedding.shape)))
        features_cat = ops.concat([encoded, carrier + embedding], axis=-1)
        prediction = self.head(features_cat)
        return ops.reshape(
            prediction, (batch, sensors, self.horizon, self.in_features)
        )


def make_simst(
    num_sensors: int,
    adjacency: Optional[np.ndarray] = None,
    *,
    history: int = 12,
    horizon: int = 12,
    seed: int = 0,
    **overrides,
) -> SimSTForecaster:
    """Factory mirroring the other ``make_*`` variants."""
    return SimSTForecaster(
        num_sensors,
        adjacency,
        history=history,
        horizon=horizon,
        seed=seed,
        **overrides,
    )
