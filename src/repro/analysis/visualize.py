"""Text-mode plotting (no matplotlib offline) and CSV export for figures."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

PathLike = Union[str, Path]


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    labels: Optional[np.ndarray] = None,
    width: int = 60,
    height: int = 22,
) -> str:
    """Render points as a character grid; ``labels`` pick the glyph per point."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    glyphs = "abcdefghijklmnopqrstuvwxyz0123456789"
    grid = [[" "] * width for _ in range(height)]
    x_span = x.max() - x.min() or 1.0
    y_span = y.max() - y.min() or 1.0
    for i in range(len(x)):
        col = int((x[i] - x.min()) / x_span * (width - 1))
        row = int((y.max() - y[i]) / y_span * (height - 1))
        glyph = "*" if labels is None else glyphs[int(labels[i]) % len(glyphs)]
        grid[row][col] = glyph
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])


def ascii_line(
    series: Dict[str, Sequence[float]],
    x_values: Optional[Sequence[float]] = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """Multi-series line chart; one glyph per series, legend appended."""
    if not series:
        raise ValueError("series must not be empty")
    glyphs = "*o+x#@%&"
    all_values = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    low, high = float(all_values.min()), float(all_values.max())
    span = high - low or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        values = np.asarray(values, dtype=np.float64)
        glyph = glyphs[index % len(glyphs)]
        legend.append(f"{glyph} = {name}")
        positions = np.linspace(0, width - 1, len(values)).astype(int)
        for column, value in zip(positions, values):
            row = int((high - value) / span * (height - 1))
            grid[row][column] = glyph
    border = "+" + "-" * width + "+"
    lines = [f"max={high:.2f}", border]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines += [border, f"min={low:.2f}", "  ".join(legend)]
    if x_values is not None:
        lines.append(f"x: {list(x_values)}")
    return "\n".join(lines)


def export_series_csv(path: PathLike, columns: Dict[str, Sequence]) -> Path:
    """Write aligned columns to CSV (for replotting figures elsewhere)."""
    if not columns:
        raise ValueError("columns must not be empty")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"columns have unequal lengths: { {k: len(v) for k, v in columns.items()} }")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns.keys())
        writer.writerows(zip(*columns.values()))
    return path
