"""Exact t-SNE (van der Maaten & Hinton, 2008) — sklearn substitute.

Used by the Figure 9 reproduction to embed the generated projection matrices
φ_t^(i) and the spatial latents z^(i) into 2-D.  Exact (O(n²)) affinities
with perplexity calibration by bisection, early exaggeration, and momentum
gradient descent — the standard recipe, sized for the few-hundred-point
embeddings the paper visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class TSNEConfig:
    """Hyper-parameters of the t-SNE optimizer."""

    perplexity: float = 12.0
    learning_rate: float = 100.0
    iterations: int = 400
    early_exaggeration: float = 6.0
    exaggeration_iters: int = 80
    momentum: float = 0.8
    seed: int = 0


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x * x).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def _calibrate_affinities(d2: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 60) -> np.ndarray:
    """Per-point bisection on the Gaussian bandwidth to match perplexity."""
    n = d2.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta, beta_low, beta_high = 1.0, 0.0, np.inf
        row = np.delete(d2[i], i)
        for _ in range(max_iter):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                entropy, p_row = 0.0, np.zeros_like(row)
            else:
                p_row = weights / total
                entropy = float(-(p_row * np.log(np.clip(p_row, 1e-12, None))).sum())
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
        probabilities[i, np.arange(n) != i] = p_row
    return probabilities


def tsne(
    x: np.ndarray,
    config: Optional[TSNEConfig] = None,
    n_components: int = 2,
) -> np.ndarray:
    """Embed ``x (n, features)`` into ``(n, n_components)``."""
    config = config or TSNEConfig()
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {x.shape}")
    n = x.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    perplexity = min(config.perplexity, (n - 1) / 3.0)

    d2 = _pairwise_squared_distances(x)
    conditional = _calibrate_affinities(d2, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    np.maximum(joint, 1e-12, out=joint)

    rng = np.random.default_rng(config.seed)
    embedding = rng.standard_normal((n, n_components)) * 1e-2
    velocity = np.zeros_like(embedding)

    for iteration in range(config.iterations):
        exaggeration = config.early_exaggeration if iteration < config.exaggeration_iters else 1.0
        p = joint * exaggeration

        dist = _pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + dist)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-12)
        np.maximum(q, 1e-12, out=q)

        # gradient: 4 * sum_j (p_ij - q_ij) * student_ij * (y_i - y_j)
        coefficient = (p - q) * student
        grad = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding

        velocity = config.momentum * velocity - config.learning_rate * grad
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding


def kl_divergence_of_embedding(x: np.ndarray, embedding: np.ndarray, perplexity: float = 12.0) -> float:
    """KL(P || Q) of an embedding — the t-SNE objective, for quality checks."""
    n = x.shape[0]
    perplexity = min(perplexity, (n - 1) / 3.0)
    conditional = _calibrate_affinities(_pairwise_squared_distances(x), perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    np.maximum(joint, 1e-12, out=joint)
    student = 1.0 / (1.0 + _pairwise_squared_distances(embedding))
    np.fill_diagonal(student, 0.0)
    q = student / max(student.sum(), 1e-12)
    np.maximum(q, 1e-12, out=q)
    return float((joint * np.log(joint / q)).sum())
