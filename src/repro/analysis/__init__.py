"""Analysis tools: t-SNE, k-means, text plots (Figure 9 substrate)."""

from .clustering import cluster_purity, kmeans
from .tsne import TSNEConfig, kl_divergence_of_embedding, tsne
from .visualize import ascii_line, ascii_scatter, export_series_csv

__all__ = [
    "tsne",
    "TSNEConfig",
    "kl_divergence_of_embedding",
    "kmeans",
    "cluster_purity",
    "ascii_scatter",
    "ascii_line",
    "export_series_csv",
]
