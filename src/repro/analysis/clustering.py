"""k-means clustering (sklearn substitute) for the Figure 9 analysis."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def kmeans(
    x: np.ndarray,
    k: int,
    iterations: int = 100,
    restarts: int = 4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding and restarts.

    Returns ``(labels (n,), centroids (k, d), inertia)`` of the best restart.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    best: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
    for _ in range(restarts):
        centroids = _kmeanspp_init(x, k, rng)
        labels: Optional[np.ndarray] = None
        for _ in range(iterations):
            distances = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            # converged only if assignments are stable *after* at least one
            # centroid update (labels is None on the first pass)
            if labels is not None and (new_labels == labels).all():
                break
            labels = new_labels
            for j in range(k):
                members = x[labels == j]
                if len(members):
                    centroids[j] = members.mean(axis=0)
        inertia = float(((x - centroids[labels]) ** 2).sum())
        if best is None or inertia < best[2]:
            best = (labels.copy(), centroids.copy(), inertia)
    return best


def _kmeanspp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = x.shape[0]
    centroids = [x[rng.integers(n)]]
    for _ in range(1, k):
        d2 = np.min(((x[:, None, :] - np.array(centroids)[None, :, :]) ** 2).sum(axis=2), axis=1)
        total = d2.sum()
        if total <= 0:
            centroids.append(x[rng.integers(n)])
            continue
        probabilities = d2 / total
        centroids.append(x[rng.choice(n, p=probabilities)])
    return np.array(centroids)


def cluster_purity(labels: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of points whose cluster's majority ground-truth matches theirs.

    Used to check that z^(i) clusters align with corridors (Fig. 9b/9c).
    """
    labels = np.asarray(labels)
    ground_truth = np.asarray(ground_truth)
    if labels.shape != ground_truth.shape:
        raise ValueError("labels and ground_truth must have the same shape")
    correct = 0
    for cluster in np.unique(labels):
        members = ground_truth[labels == cluster]
        values, counts = np.unique(members, return_counts=True)
        correct += counts.max()
    return correct / len(labels)
