"""Command-line training entry point.

Train any registered model on any simulated dataset:

    python -m repro --model ST-WA --dataset PEMS04 --epochs 20
    python -m repro --model AGCRN --dataset PEMS08 --history 12 --horizon 12 \
        --profile fast --checkpoint results/agcrn.npz

Prints raw-unit test MAE / RMSE / MAPE when done.
"""

from __future__ import annotations

import argparse
import sys

from .baselines import BuildSpec, available_models, build_from_spec
from .data import WindowSpec, available_datasets, load_dataset
from .training import Trainer, TrainerConfig, save_checkpoint


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Train a traffic forecaster (paper reproduction).")
    parser.add_argument("--model", default="ST-WA", help=f"one of {available_models()}")
    parser.add_argument("--dataset", default="PEMS04", help=f"one of {available_datasets()}")
    parser.add_argument("--profile", default="fast", choices=["fast", "medium", "paper"])
    parser.add_argument("--history", type=int, default=12)
    parser.add_argument("--horizon", type=int, default=12)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--lr", type=float, default=6e-3)
    parser.add_argument("--patience", type=int, default=15)
    parser.add_argument("--max-batches", type=int, default=None, help="cap batches per epoch")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint", default=None, help="save trained weights here (.npz)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    print(f"loading {args.dataset} (profile={args.profile}) ...")
    dataset = load_dataset(args.dataset, profile=args.profile)
    model = build_from_spec(
        args.model,
        BuildSpec(dataset=dataset, history=args.history, horizon=args.horizon, seed=args.seed),
    )
    n_params = model.num_parameters()
    print(f"{args.model}: {n_params} parameters, {dataset.num_sensors} sensors")

    config = TrainerConfig(
        lr=args.lr,
        epochs=args.epochs,
        batch_size=args.batch_size,
        patience=args.patience,
        max_batches_per_epoch=args.max_batches,
        seed=args.seed,
        verbose=not args.quiet,
    )
    trainer = Trainer(model, dataset, WindowSpec(args.history, args.horizon), config)
    if n_params:
        history = trainer.fit()
        print(f"trained {history.epochs_run} epochs ({history.seconds_per_epoch:.2f} s/epoch)")
    metrics = trainer.evaluate("test")
    print(f"test: MAE={metrics['mae']:.2f} RMSE={metrics['rmse']:.2f} MAPE={metrics['mape']:.1f}%")
    if args.checkpoint:
        path = save_checkpoint(model, args.checkpoint, metadata=metrics)
        print(f"checkpoint written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
