"""TTL prediction cache keyed on (model id, window fingerprint, horizon).

Forecasts are pure functions of (model weights, input window, horizon), so
identical concurrent queries — the common case when many users watch the
same corridor between stream ticks — can share one forward pass.  Entries
expire two ways:

* **TTL** — wall-clock staleness bound, for deployments that ingest
  irregularly;
* **data version** — every entry is stamped with the
  :class:`repro.serve.state.StreamStateStore` version it was computed from,
  and :meth:`PredictionCache.invalidate_before` (called by the engine on
  every ingest) drops entries computed from older state.

Capacity is bounded with LRU eviction.  The clock is injectable so tests
control time.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

CacheKey = Tuple[str, str, int]


def fingerprint_window(window: np.ndarray) -> str:
    """Stable content hash of an input window (dtype/shape-sensitive)."""
    window = np.ascontiguousarray(window)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(window.shape).encode())
    digest.update(str(window.dtype).encode())
    digest.update(window.tobytes())
    return digest.hexdigest()


class PredictionCache:
    """Bounded TTL + data-version cache of forecast arrays."""

    def __init__(
        self,
        ttl_seconds: float = 30.0,
        capacity: int = 256,
        clock: Optional[Callable[[], float]] = None,
    ):
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.ttl_seconds = ttl_seconds
        self.capacity = capacity
        self._clock = clock if clock is not None else time.monotonic
        self._entries: "OrderedDict[CacheKey, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def make_key(model_id: str, window: np.ndarray, horizon: int) -> CacheKey:
        return (model_id, fingerprint_window(window), int(horizon))

    # ------------------------------------------------------------------ #
    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """Return the cached forecast, or None on miss/expiry."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, stored_at, _version = entry
            if now - stored_at > self.ttl_seconds:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: np.ndarray, data_version: int = 0) -> None:
        """Insert a forecast computed from state store ``data_version``."""
        with self._lock:
            self._entries[key] = (value, self._clock(), int(data_version))
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_before(self, data_version: int, model_id: Optional[str] = None) -> int:
        """Drop entries computed from state older than ``data_version``.

        The engine calls this on every ingest so a fresh observation is
        never shadowed by a pre-ingest forecast; returns the drop count.

        ``model_id`` scopes the invalidation to one tenant's entries: in a
        shared cache (fleet deployments, several models per process) one
        tenant's ingest advances only *its* stream, so evicting other
        models' fresh entries by bare data version would let tenant A's
        traffic cold-start tenant B.  ``None`` keeps the old evict-all
        behaviour for single-model caches.
        """
        with self._lock:
            stale = [
                k
                for k, (_, _, v) in self._entries.items()
                if v < data_version and (model_id is None or k[0] == model_id)
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "ttl_seconds": self.ttl_seconds,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
