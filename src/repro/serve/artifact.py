"""Serving artifacts: a trained checkpoint turned into a pure predict fn.

A :class:`ForecasterArtifact` is the deployable unit of this repo: model
weights frozen (``requires_grad=False``), modules in eval mode (dropout and
latent sampling off), the training-split scaler baked in, and a single
``predict(window) -> horizon`` function that runs the forward pass under
:class:`repro.tensor.inference_mode` — raw units in, raw units out, no
graph construction, no gradient buffers, no op tracing.

Two sources:

* :func:`save_artifact` / :func:`load_artifact` — a self-describing ``.npz``
  (weights + model name + task shape + scaler statistics + the dataset
  identity needed to rebuild the architecture through the model registry).
* :meth:`ForecasterArtifact.from_training_checkpoint` — promote a live
  schema-v2 training checkpoint (:mod:`repro.training.checkpoint`) straight
  to a serving artifact, preferring the best-validation weights.

Foreign, truncated, or version-skewed archives raise
:class:`repro.training.CheckpointError` with the found vs. expected schema,
never a bare ``KeyError``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..data.datasets import TrafficDataset, load_dataset
from ..data.scalers import MinMaxScaler, StandardScaler
from ..exec import InferenceExecutor
from ..nn import Module
from ..training.checkpoint import (
    CheckpointError,
    load_training_checkpoint,
    read_archive,
    write_archive,
)

PathLike = Union[str, Path]

#: bump when the serving-artifact archive layout changes
ARTIFACT_VERSION = 1


def _scaler_to_meta(scaler) -> Dict:
    if isinstance(scaler, StandardScaler):
        return {"kind": "standard", "mean": scaler.mean, "std": scaler.std}
    if isinstance(scaler, MinMaxScaler):
        return {"kind": "minmax", "low": scaler.low, "high": scaler.high}
    raise TypeError(f"unsupported scaler type {type(scaler).__name__}")


def _scaler_from_meta(meta: Dict):
    kind = meta.get("kind")
    if kind == "standard":
        scaler = StandardScaler()
        scaler.mean, scaler.std = float(meta["mean"]), float(meta["std"])
        return scaler
    if kind == "minmax":
        scaler = MinMaxScaler()
        scaler.low, scaler.high = float(meta["low"]), float(meta["high"])
        return scaler
    raise CheckpointError(f"artifact carries unknown scaler kind {kind!r}")


def _weights_digest(state: Dict[str, np.ndarray]) -> str:
    digest = hashlib.blake2b(digest_size=8)
    for name in sorted(state):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(state[name]).tobytes())
    return digest.hexdigest()


def save_artifact(
    path: PathLike,
    model: Module,
    *,
    model_name: str,
    history: int,
    horizon: int,
    scaler,
    dataset_name: Optional[str] = None,
    dataset_profile: Optional[str] = None,
    overrides: Optional[Dict] = None,
    seed: int = 0,
    extra: Optional[Dict] = None,
) -> Path:
    """Write a self-describing serving artifact for ``model`` to ``path``.

    ``dataset_name``/``dataset_profile`` let :func:`load_artifact` rebuild
    the architecture without the caller supplying a dataset (the simulated
    datasets are deterministic by name+profile); omit them for models whose
    shape the registry can build from ``overrides`` alone.
    """
    metadata = {
        "artifact_version": ARTIFACT_VERSION,
        "model_name": model_name,
        "history": int(history),
        "horizon": int(horizon),
        "seed": int(seed),
        "overrides": dict(overrides or {}),
        "scaler": _scaler_to_meta(scaler),
        "dataset_name": dataset_name,
        "dataset_profile": dataset_profile,
        "extra": dict(extra or {}),
    }
    return write_archive(path, model.state_dict(), metadata)


def _build_model(metadata: Dict, dataset: Optional[TrafficDataset]) -> Module:
    from ..baselines import BuildSpec, build_from_spec  # deferred: heavy import

    if dataset is None:
        name, profile = metadata.get("dataset_name"), metadata.get("dataset_profile")
        if not name or not profile:
            raise CheckpointError(
                "artifact does not name its dataset; pass dataset= (or model=) to load it"
            )
        dataset = load_dataset(name, profile=profile)
    spec = BuildSpec(
        dataset=dataset,
        history=int(metadata["history"]),
        horizon=int(metadata["horizon"]),
        seed=int(metadata.get("seed", 0)),
        overrides=dict(metadata.get("overrides", {})),
    )
    return build_from_spec(metadata["model_name"], spec)


def load_artifact(
    path: PathLike,
    model: Optional[Module] = None,
    dataset: Optional[TrafficDataset] = None,
) -> "ForecasterArtifact":
    """Load an artifact written by :func:`save_artifact`.

    ``model`` (optional) skips registry reconstruction — the weights are
    loaded into it directly.  ``dataset`` (optional) supplies the network
    the registry builder needs, instead of regenerating it from the
    archive's dataset identity.
    """
    arrays, metadata = read_archive(path)
    version = metadata.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise CheckpointError(
            f"{path} is not a serving artifact "
            f"(artifact_version {version!r}, expected {ARTIFACT_VERSION})"
        )
    for key in ("model_name", "history", "horizon", "scaler"):
        if key not in metadata:
            raise CheckpointError(f"{path} is missing required artifact field {key!r}")
    if model is None:
        model = _build_model(metadata, dataset)
    try:
        model.load_state_dict(arrays)
    except (KeyError, ValueError) as error:
        raise CheckpointError(
            f"{path} weights do not fit model {metadata['model_name']!r}: {error}"
        ) from error
    return ForecasterArtifact(
        model,
        scaler=_scaler_from_meta(metadata["scaler"]),
        model_name=str(metadata["model_name"]),
        history=int(metadata["history"]),
        horizon=int(metadata["horizon"]),
        metadata=metadata,
    )


class ForecasterArtifact:
    """A frozen, eval-mode forecaster with a pure ``predict`` function.

    Construction freezes every parameter (gradients can never accumulate
    on a serving replica) and switches all modules to eval mode.  The
    instance is stateless across calls — safe to share behind the
    micro-batcher, which serializes forward passes anyway.
    """

    def __init__(
        self,
        model: Module,
        *,
        scaler,
        model_name: str,
        history: int,
        horizon: int,
        metadata: Optional[Dict] = None,
    ):
        self.model = model
        self.scaler = scaler
        self.model_name = model_name
        self.history = int(history)
        self.horizon = int(horizon)
        self.metadata = dict(metadata or {})
        self.freeze()
        #: the execution seam (repro.exec): scaler + shape handling + the
        #: inference_mode forward live there, shared with every other
        #: prediction surface.  Resource-free, so it stays open for life.
        self.executor = InferenceExecutor(
            self.model, scaler=self.scaler, history=self.history
        ).open()
        #: stable identity for cache keys: architecture + exact weights
        self.model_id = f"{model_name}:{_weights_digest(model.state_dict())}"

    @property
    def registry_version(self) -> Optional[int]:
        """Fleet-registry version this artifact was loaded as, or None.

        :meth:`repro.fleet.ModelRegistry.load` stamps
        ``metadata["registry"] = {"model_id", "version"}``; artifacts that
        never went through a registry have no version.
        """
        registry = self.metadata.get("registry") or {}
        version = registry.get("version")
        return None if version is None else int(version)

    def freeze(self) -> "ForecasterArtifact":
        """Eval mode + ``requires_grad=False`` on every parameter."""
        self.model.eval()
        for parameter in self.model.parameters():
            parameter.requires_grad = False
            parameter.grad = None
        return self

    # ------------------------------------------------------------------ #
    @classmethod
    def from_training_checkpoint(
        cls,
        path: PathLike,
        model: Module,
        *,
        scaler,
        model_name: str,
        history: int,
        horizon: int,
        use_best: bool = True,
    ) -> "ForecasterArtifact":
        """Promote a schema-v2 training checkpoint to a serving artifact.

        ``use_best`` picks the best-validation weights recorded in the
        checkpoint (falling back to the last epoch's weights when the best
        snapshot is absent).
        """
        ckpt = load_training_checkpoint(path)
        state = ckpt.best_state if (use_best and ckpt.best_state) else ckpt.model_state
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(
                f"{path} weights do not fit model {model_name!r}: {error}"
            ) from error
        return cls(
            model,
            scaler=scaler,
            model_name=model_name,
            history=history,
            horizon=horizon,
            metadata={"source_checkpoint": str(path), "source_epoch": ckpt.epoch},
        )

    # ------------------------------------------------------------------ #
    def predict(self, window: np.ndarray) -> np.ndarray:
        """Forecast ``horizon`` raw-unit steps from a raw-unit history window.

        ``window`` is ``(N, H, F)`` for one network snapshot or
        ``(B, N, H, F)`` for a batch; the result keeps the input's rank
        (``(N, U, F)`` / ``(B, N, U, F)``).  Delegates to the artifact's
        :class:`repro.exec.InferenceExecutor`: scaling in, graph-free
        forward under :class:`repro.tensor.inference_mode`, inverse scaling
        out.
        """
        return self.executor.predict(None, window)

    def save(self, path: PathLike, **kwargs) -> Path:
        """Persist this artifact via :func:`save_artifact`."""
        meta = self.metadata
        return save_artifact(
            path,
            self.model,
            model_name=self.model_name,
            history=self.history,
            horizon=self.horizon,
            scaler=self.scaler,
            dataset_name=kwargs.pop("dataset_name", meta.get("dataset_name")),
            dataset_profile=kwargs.pop("dataset_profile", meta.get("dataset_profile")),
            overrides=kwargs.pop("overrides", meta.get("overrides")),
            seed=kwargs.pop("seed", int(meta.get("seed", 0))),
            **kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"ForecasterArtifact({self.model_id}, H={self.history}, U={self.horizon}, "
            f"params={self.model.num_parameters()})"
        )
