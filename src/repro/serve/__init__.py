"""Online inference: frozen artifacts served with micro-batching and SLOs.

``repro.serve`` turns a trained forecaster into a production request path:

* :class:`ForecasterArtifact` — a checkpoint promoted to a frozen,
  eval-mode model with a pure ``predict(window) -> horizon`` function that
  runs under :class:`repro.tensor.inference_mode` (no graph, no gradient
  buffers, no op tracing).
* :class:`StreamStateStore` — per-sensor ring buffers of the last W
  observations, with online imputation of gaps at read time.
* :class:`MicroBatcher` — coalesces concurrent requests into one batched
  forward (bounded batch size and linger time).
* :class:`PredictionCache` — TTL/LRU cache keyed on (model id, window
  fingerprint, horizon), invalidated whenever new observations arrive.
* :class:`ServingEngine` — the request path wiring all of the above plus a
  :class:`repro.resilience.CircuitBreaker` and a classical persistence
  fallback, with latency/batch/cache metrics streamed to a
  :class:`repro.obs.MetricsSink`.

``python -m repro.harness serve-bench`` load-tests the whole stack end to
end and writes ``results/serve_bench.json``; see DESIGN.md "Serving".
"""

from .artifact import (
    ARTIFACT_VERSION,
    ForecasterArtifact,
    load_artifact,
    save_artifact,
)
from .batcher import MicroBatcher
from .cache import PredictionCache, fingerprint_window
from .engine import ForecastResult, ServeConfig, ServingEngine
from .metrics import Distribution, LatencyHistogram, ServingStats
from .state import StreamStateStore

__all__ = [
    "ARTIFACT_VERSION",
    "ForecasterArtifact",
    "save_artifact",
    "load_artifact",
    "StreamStateStore",
    "MicroBatcher",
    "PredictionCache",
    "fingerprint_window",
    "ServingEngine",
    "ServeConfig",
    "ForecastResult",
    "LatencyHistogram",
    "Distribution",
    "ServingStats",
]
