"""The online inference engine: ingest -> buffer -> batch -> cache -> model.

:class:`ServingEngine` is the request path of the repo's north-star
deployment story.  One engine owns:

* a :class:`repro.serve.StreamStateStore` fed by :meth:`ServingEngine.ingest`
  (live observations, possibly partial/late);
* a :class:`repro.serve.MicroBatcher` that coalesces concurrent
  :meth:`ServingEngine.forecast` calls into single batched forwards of the
  frozen :class:`repro.serve.ForecasterArtifact`;
* a :class:`repro.serve.PredictionCache` keyed on (model id, window
  fingerprint, horizon), TTL-bounded and invalidated by every ingest;
* a :class:`repro.resilience.CircuitBreaker` plus a classical persistence
  fallback — model exceptions and deadline overruns degrade to a cheap
  last-value forecast (``source="fallback"``) instead of failing the
  request, and repeated failures stop touching the model at all;
* a :class:`repro.serve.metrics.ServingStats` bundle (latency quantiles,
  batch-size/queue-depth distributions, cache hit rate) mirrored as
  structured events on an optional :class:`repro.obs.MetricsSink`.

Request lifecycle (see DESIGN.md "Serving"): cache lookup -> circuit check
-> micro-batched model forward (bounded by ``deadline_ms``) -> cache fill
-> metrics; any failure en route detours to the fallback forecast.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..baselines.classical import PersistenceForecaster
from ..exec import ExecutorSpec, InferenceExecutor, make_executor
from ..obs import MetricsSink, NullSink, SafeSink
from ..resilience import CircuitBreaker
from .artifact import ForecasterArtifact
from .batcher import MicroBatcher
from .cache import PredictionCache
from .metrics import ServingStats
from .state import StreamStateStore


@dataclass
class ServeConfig:
    """Knobs of the online request path."""

    max_batch_size: int = 16  # micro-batcher coalescing limit
    max_wait_ms: float = 2.0  # linger after the first queued request
    cache_ttl_s: float = 30.0  # prediction staleness bound
    cache_capacity: int = 256
    deadline_ms: Optional[float] = 1000.0  # per-request budget; overrun -> fallback
    failure_threshold: int = 3  # consecutive failures before the circuit opens
    cooldown_s: float = 2.0  # open-circuit probe interval
    impute_method: str = "last"  # ring-buffer gap fill
    sink: Optional[MetricsSink] = None  # structured serve events (JSONL etc.)
    latency_capacity: int = 4096  # latency reservoir size
    #: prediction backend: None -> the artifact's InferenceExecutor;
    #: ExecutorSpec(kind="compiled") -> trace-once/replay-many plans
    #: (repro.compile) with transparent inference_mode fallback
    executor: Optional[ExecutorSpec] = None


@dataclass
class ForecastResult:
    """One served forecast plus its provenance."""

    forecast: np.ndarray  # (N, U, F), raw units
    source: str  # "model" | "cache" | "fallback"
    latency_s: float
    reason: str = ""  # fallback cause, empty otherwise
    batched: bool = False

    @property
    def ok(self) -> bool:
        return self.source != "fallback"


class ServingEngine:
    """Serve forecasts from a frozen artifact over a live sensor stream."""

    def __init__(
        self,
        artifact: ForecasterArtifact,
        num_sensors: int,
        num_features: int = 1,
        config: Optional[ServeConfig] = None,
        store: Optional[StreamStateStore] = None,
    ):
        self.artifact = artifact
        self.config = config or ServeConfig()
        if store is not None:
            # fleet deployments share one stream store across the primary,
            # shadow, and A/B engines of a tenant — shapes must agree
            if (
                store.num_sensors != num_sensors
                or store.window_size != artifact.history
                or store.num_features != num_features
            ):
                raise ValueError(
                    f"shared store has shape (N={store.num_sensors}, "
                    f"W={store.window_size}, F={store.num_features}) but the "
                    f"engine needs (N={num_sensors}, W={artifact.history}, "
                    f"F={num_features})"
                )
            self.store = store
        else:
            self.store = StreamStateStore(
                num_sensors,
                window=artifact.history,
                num_features=num_features,
                impute_method=self.config.impute_method,
            )
        self.cache = PredictionCache(
            ttl_seconds=self.config.cache_ttl_s, capacity=self.config.cache_capacity
        )
        self.circuit = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            cooldown_s=self.config.cooldown_s,
            on_transition=self._on_circuit_transition,
        )
        # degraded path: a persistence forecast through its own inference
        # executor — raw units in/out, no scaler, and never the model
        self._fallback_executor = InferenceExecutor(
            PersistenceForecaster(artifact.history, artifact.horizon),
            history=artifact.history,
        ).open()
        self.sink: MetricsSink = (
            NullSink() if self.config.sink is None else SafeSink(self.config.sink)
        )
        self._observed = self.config.sink is not None
        # the batcher's forward runs through the repro.exec seam — by
        # default the artifact's InferenceExecutor; ServeConfig.executor
        # swaps in another prediction backend (e.g. kind="compiled")
        if self.config.executor is not None:
            spec = self.config.executor
            if spec.kind not in ("inference", "compiled", "sharded"):
                raise ValueError(
                    "ServeConfig.executor must be an inference, compiled, or "
                    f"sharded spec, got kind={spec.kind!r}"
                )
            self.executor_kind = spec.kind
            self._model_executor = make_executor(
                artifact.model,
                spec,
                scaler=artifact.scaler,
                history=artifact.history,
            ).open()
            self._owns_model_executor = True
        else:
            self.executor_kind = "inference"
            self._model_executor = artifact.executor
            self._owns_model_executor = False
        # identity-stamped stats: every snapshot / SLO report names the
        # artifact (and its fleet-registry version) plus the backend, so
        # fleet A/B and shadow comparisons stay attributable
        self.stats = ServingStats(
            self.config.latency_capacity,
            model_id=artifact.model_id,
            artifact_version=artifact.registry_version,
            executor_kind=self.executor_kind,
        )
        self.batcher = MicroBatcher(
            self._predict_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_ms / 1e3,
            on_batch=self._record_batch,
        )

    # ------------------------------------------------------------------ #
    # ingest path
    # ------------------------------------------------------------------ #
    def ingest(self, values: np.ndarray, sensor_ids=None) -> int:
        """Feed one stream tick; invalidates forecasts built on older state."""
        version = self.store.ingest(values, sensor_ids=sensor_ids)
        self.invalidate_stale(version)
        return version

    def invalidate_stale(self, version: int) -> int:
        """Drop this engine's cached forecasts computed before ``version``.

        Split out from :meth:`ingest` for fleet deployments where several
        engines share one stream store: the router ticks the store once and
        calls this hook on every arm.  Invalidation is scoped to this
        engine's ``model_id`` so tenants sharing a cache never evict each
        other.
        """
        dropped = self.cache.invalidate_before(version, model_id=self.artifact.model_id)
        self.stats.ingests += 1
        if self._observed and dropped:
            self.sink.emit(
                {"event": "cache_invalidate", "version": version, "dropped": dropped}
            )
        return dropped

    def _on_circuit_transition(self, from_state: str, to_state: str) -> None:
        """Mirror breaker flaps (closed→open→half-open) onto the sink."""
        if self._observed:
            self.sink.emit(
                {
                    "event": "circuit_transition",
                    "from": from_state,
                    "to": to_state,
                    "model_id": self.artifact.model_id,
                    "time": time.time(),
                }
            )

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def forecast(self, window: Optional[np.ndarray] = None) -> ForecastResult:
        """Serve one forecast for ``window`` (default: the live stream state).

        Never raises for model-side problems: exceptions, deadline overruns
        and an open circuit all degrade to the persistence fallback with
        ``source="fallback"`` and an explanatory ``reason``.
        """
        start = time.perf_counter()
        if window is None:
            window, _mask = self.store.window()
        else:
            window = np.asarray(window, dtype=np.float64)
        data_version = self.store.version
        key = self.cache.make_key(self.artifact.model_id, window, self.artifact.horizon)

        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return self._finish(cached, "cache", start)
        self.stats.cache_misses += 1

        if not self.circuit.allow():
            self.stats.fallbacks += 1
            return self._finish(self._fallback(window), "fallback", start, reason="circuit_open")

        timeout = None if self.config.deadline_ms is None else self.config.deadline_ms / 1e3
        future = self.batcher.submit(window)
        # late results still warm the cache for the next identical query
        future.add_done_callback(self._make_cache_filler(key, data_version))
        try:
            forecast = future.result(timeout=timeout)
        except FutureTimeoutError:
            self.stats.fallbacks += 1
            self.circuit.record_failure()
            return self._finish(
                self._fallback(window), "fallback", start, reason="deadline_overrun"
            )
        except Exception as error:
            self.stats.fallbacks += 1
            self.stats.errors += 1
            self.circuit.record_failure()
            return self._finish(
                self._fallback(window),
                "fallback",
                start,
                reason=f"{type(error).__name__}: {error}",
            )
        self.circuit.record_success()
        return self._finish(forecast, "model", start, batched=True)

    def _make_cache_filler(self, key, data_version):
        def fill(future) -> None:
            if future.cancelled() or future.exception() is not None:
                return
            self.cache.put(key, future.result(), data_version)

        return fill

    def _predict_batch(self, windows: np.ndarray) -> np.ndarray:
        """Micro-batched model forward through the configured executor."""
        return self._model_executor.predict(None, windows)

    def _fallback(self, window: np.ndarray) -> np.ndarray:
        """Classical persistence forecast in raw units (never the model)."""
        return self._fallback_executor.predict(None, window)

    def _finish(
        self,
        forecast: np.ndarray,
        source: str,
        start: float,
        reason: str = "",
        batched: bool = False,
    ) -> ForecastResult:
        latency = time.perf_counter() - start
        self.stats.latency.record(latency)
        if self._observed:
            event = {
                "event": "request",
                "source": source,
                "executor_kind": self.executor_kind,
                "latency_ms": 1e3 * latency,
                "time": time.time(),
            }
            if reason:
                event["reason"] = reason
            self.sink.emit(event)
            if source == "fallback":
                self.sink.emit(
                    {"event": "fallback", "reason": reason, "time": time.time()}
                )
        return ForecastResult(
            forecast=forecast, source=source, latency_s=latency, reason=reason, batched=batched
        )

    def _record_batch(self, batch_size: int, queue_depth: int, wait_seconds: float) -> None:
        self.stats.batch_sizes.record(batch_size)
        self.stats.queue_depths.record(queue_depth)
        if self._observed:
            self.sink.emit(
                {
                    "event": "serve_batch",
                    "batch_size": batch_size,
                    "queue_depth": queue_depth,
                    "wait_ms": 1e3 * wait_seconds,
                }
            )

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Full observability snapshot: stats + cache + store + circuit."""
        snap = self.stats.snapshot()
        snap["cache"] = self.cache.stats()
        snap["store"] = self.store.snapshot()
        snap["circuit"] = self.circuit.snapshot()
        snap["model_id"] = self.artifact.model_id
        snap["executor_kind"] = self.executor_kind
        return snap

    def slo_report(
        self, p95_ms: Optional[float] = None, p99_ms: Optional[float] = None
    ) -> dict:
        """Latency SLO check annotated with the serving executor backend.

        Delegates to :meth:`repro.serve.metrics.ServingStats.slo_report` and
        stamps ``executor_kind`` so the report (and the mirrored sink event)
        records *which* prediction backend produced the measured quantiles.
        """
        report = self.stats.slo_report(p95_ms=p95_ms, p99_ms=p99_ms)
        report["executor_kind"] = self.executor_kind
        if self._observed:
            self.sink.emit({"event": "slo_report", "time": time.time(), **report})
        return report

    def close(self) -> None:
        self.batcher.close()
        if self._owns_model_executor:
            self._model_executor.close()
        self._fallback_executor.close()
        self.sink.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
