"""Serving-side metrics: latency quantiles, counters, distributions.

The online engine (:mod:`repro.serve.engine`) must answer "are we inside
the SLO?" cheaply and continuously, so this module keeps bounded in-memory
aggregates rather than full traces:

* :class:`LatencyHistogram` — reservoir of request latencies with exact
  quantiles over the retained window (p50/p95/p99 for the SLO check).
* :class:`Distribution` — count/mean/max of an integer-valued stream
  (batch sizes, queue depths).
* :class:`ServingStats` — the engine's aggregate bundle, rendered by
  :meth:`ServingStats.snapshot` into the flat dict that lands in
  ``results/serve_bench.json`` and in ``stats`` events on the
  :class:`repro.obs.MetricsSink`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

#: quantiles every latency summary reports, in SLO-speak
QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


class LatencyHistogram:
    """Bounded reservoir of latencies (seconds) with exact quantiles.

    Keeps the most recent ``capacity`` samples (a ring, so long-running
    engines reflect *current* behaviour, not the cold start forever) plus
    all-time count/total for throughput accounting.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._samples = np.empty(capacity, dtype=np.float64)
        self._write = 0
        self._filled = 0
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._samples[self._write] = seconds
        self._write = (self._write + 1) % self.capacity
        self._filled = min(self._filled + 1, self.capacity)
        self.count += 1
        self.total_seconds += seconds

    def quantile(self, q: float) -> float:
        """Exact quantile over the retained window (NaN when empty)."""
        if self._filled == 0:
            return float("nan")
        return float(np.quantile(self._samples[: self._filled], q))

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else float("nan")

    def summary(self) -> Dict[str, float]:
        """The standard latency block: count, mean, and SLO quantiles (ms)."""
        block = {"count": self.count, "mean_ms": 1e3 * self.mean_seconds}
        for name, q in QUANTILES.items():
            block[f"{name}_ms"] = 1e3 * self.quantile(q)
        return block


class Distribution:
    """Streaming count/mean/max of a non-negative metric (e.g. batch size)."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._counts: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = float(value)
        key = int(value)
        self._counts[key] = self._counts.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def histogram(self) -> Dict[str, int]:
        """Exact value -> count map (values are integerized)."""
        return {str(k): v for k, v in sorted(self._counts.items())}

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "histogram": self.histogram(),
        }


class ServingStats:
    """Aggregate serving metrics bundle owned by the engine.

    The optional identity fields (``model_id``, ``artifact_version``,
    ``executor_kind``) stamp every snapshot and SLO report with *which*
    artifact and backend produced the numbers — without them a fleet's
    A/B or shadow comparison cannot attribute a quantile to a model.
    """

    def __init__(
        self,
        latency_capacity: int = 4096,
        *,
        model_id: Optional[str] = None,
        artifact_version: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ):
        self.latency = LatencyHistogram(latency_capacity)
        self.batch_sizes = Distribution()
        self.queue_depths = Distribution()
        self.cache_hits = 0
        self.cache_misses = 0
        self.fallbacks = 0
        self.errors = 0
        self.ingests = 0
        self.model_id = model_id
        self.artifact_version = artifact_version
        self.executor_kind = executor_kind

    def identity(self) -> Dict[str, object]:
        """The artifact/backend identity block stamped on reports."""
        return {
            "model_id": self.model_id,
            "artifact_version": self.artifact_version,
            "executor_kind": self.executor_kind,
        }

    @property
    def requests(self) -> int:
        return self.latency.count

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-serializable summary (the ``stats`` event payload)."""
        return {
            **self.identity(),
            "requests": self.requests,
            "latency": self.latency.summary(),
            "batch_size": self.batch_sizes.summary(),
            "queue_depth": self.queue_depths.summary(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "fallbacks": self.fallbacks,
            "errors": self.errors,
            "ingests": self.ingests,
        }

    def slo_report(self, p95_ms: Optional[float] = None, p99_ms: Optional[float] = None) -> Dict:
        """Check the latency quantiles against millisecond SLO targets.

        Unset targets pass vacuously; the report carries measured vs target
        per objective, an overall ``ok`` flag, and the artifact/backend
        identity block so fleet comparisons stay attributable.
        """
        objectives: List[Dict[str, object]] = []
        for name, target in (("p95", p95_ms), ("p99", p99_ms)):
            if target is None:
                continue
            measured = 1e3 * self.latency.quantile(QUANTILES[name])
            objectives.append(
                {
                    "objective": f"{name}_ms",
                    "target": float(target),
                    "measured": measured,
                    "ok": bool(np.isfinite(measured) and measured <= target),
                }
            )
        return {
            **self.identity(),
            "ok": all(o["ok"] for o in objectives),
            "objectives": objectives,
        }
