"""Streaming state store: per-sensor ring buffers of recent observations.

Online forecasting needs the last ``W`` observations of every sensor at all
times.  :class:`StreamStateStore` keeps them in one ``(N, W, F)`` ring:
each :meth:`~StreamStateStore.ingest` advances the stream one tick for the
whole network, writing the reported sensors and recording ``NaN`` for late
or dead ones.  :meth:`~StreamStateStore.window` materializes the model-ready
history in chronological order, filling gaps through
:func:`repro.data.imputation.impute_series` (the same degraded-input path
training uses) and returning the validity mask alongside.

A monotonically increasing :attr:`~StreamStateStore.version` stamps every
ingest; the prediction cache (:mod:`repro.serve.cache`) uses it to drop
forecasts computed from stale state.  All methods are thread-safe — the
micro-batcher's worker reads windows while request threads ingest.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.imputation import impute_series


class StreamStateStore:
    """Rolling ``(N, W, F)`` observation window over a live sensor stream.

    Parameters
    ----------
    num_sensors / window / num_features:
        Network size N, history length W (the model's input length), and
        feature count F.
    impute_method:
        Gap-fill strategy for :meth:`window` (see
        :data:`repro.data.imputation.IMPUTE_METHODS`).
    """

    def __init__(
        self,
        num_sensors: int,
        window: int,
        num_features: int = 1,
        impute_method: str = "last",
    ):
        if num_sensors < 1 or window < 1 or num_features < 1:
            raise ValueError("num_sensors, window and num_features must be >= 1")
        self.num_sensors = num_sensors
        self.window_size = window
        self.num_features = num_features
        self.impute_method = impute_method
        self._ring = np.full((num_sensors, window, num_features), np.nan)
        self._head = 0  # next write position along the time axis
        self._ticks = 0  # total ingests ever
        self._version = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotone data version; bumped by every :meth:`ingest`."""
        with self._lock:
            return self._version

    @property
    def ticks(self) -> int:
        """Total stream ticks ingested since construction."""
        with self._lock:
            return self._ticks

    @property
    def ready(self) -> bool:
        """Whether a full ``W``-step history has been observed."""
        with self._lock:
            return self._ticks >= self.window_size

    # ------------------------------------------------------------------ #
    def ingest(
        self,
        values: np.ndarray,
        sensor_ids: Optional[Sequence[int]] = None,
    ) -> int:
        """Advance the stream one tick; returns the new data version.

        ``values`` is ``(N,)`` / ``(N, F)`` for a full-network tick, or
        ``(len(sensor_ids),)`` / ``(len(sensor_ids), F)`` when only a subset
        reported.  Unreported sensors get ``NaN`` for this tick (filled by
        imputation at read time); explicitly reported NaN marks a sensor
        that sent garbage.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2 or values.shape[1] != self.num_features:
            raise ValueError(
                f"expected (*, {self.num_features}) observations, got shape {values.shape}"
            )
        with self._lock:
            column = np.full((self.num_sensors, self.num_features), np.nan)
            if sensor_ids is None:
                if values.shape[0] != self.num_sensors:
                    raise ValueError(
                        f"full-network tick needs {self.num_sensors} rows, got {values.shape[0]}"
                    )
                column[:] = values
            else:
                ids = np.asarray(sensor_ids, dtype=np.intp)
                if ids.shape[0] != values.shape[0]:
                    raise ValueError("sensor_ids and values disagree on length")
                if ids.size and (ids.min() < 0 or ids.max() >= self.num_sensors):
                    raise IndexError(f"sensor ids must be in [0, {self.num_sensors})")
                column[ids] = values
            self._ring[:, self._head, :] = column
            self._head = (self._head + 1) % self.window_size
            self._ticks += 1
            self._version += 1
            return self._version

    def window(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize the chronological ``(N, W, F)`` window plus its mask.

        Non-finite entries (unreported ticks, dead sensors, the not-yet-
        observed prefix of a cold stream) are filled via the configured
        imputation method; ``mask`` is 1.0 where the value was actually
        observed.  Works from the very first tick — a stream shorter than
        ``W`` simply has an all-missing prefix.
        """
        with self._lock:
            ordered = np.roll(self._ring, -self._head, axis=1)
        return impute_series(ordered, method=self.impute_method)

    def snapshot(self) -> dict:
        """Cheap JSON-able gauge block for observability."""
        with self._lock:
            observed = int(np.isfinite(self._ring).any(axis=(1, 2)).sum())
            return {
                "version": self._version,
                "ticks": self._ticks,
                "ready": self._ticks >= self.window_size,
                "sensors_with_data": observed,
            }
