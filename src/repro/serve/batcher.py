"""Micro-batching queue: coalesce concurrent forecasts into one forward.

A single NumPy forward pass over a ``(B, N, H, F)`` batch costs far less
than B passes over ``(1, N, H, F)`` — exactly the batching economics the
serving literature optimizes for.  :class:`MicroBatcher` owns one worker
thread and a queue: request threads :meth:`~MicroBatcher.submit` a window
and block on the returned future; the worker drains up to
``max_batch_size`` requests per cycle, waiting at most ``max_wait_s`` after
the first arrival so a lone request is never stalled for company that
isn't coming.

A batch that fails mid-forward fails all of its requests — each future
carries the exception, and the engine's per-request fallback takes over
from there.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Tuple

import numpy as np

#: forward fn contract: stacked (B, N, H, F) windows -> (B, N, U, F) forecasts
BatchForward = Callable[[np.ndarray], np.ndarray]

#: metrics callback: (batch_size, queue_depth_at_drain, coalesce_wait_seconds)
BatchObserver = Callable[[int, int, float], None]


class MicroBatcher:
    """Coalesces concurrent single-window requests into batched forwards."""

    def __init__(
        self,
        forward: BatchForward,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        on_batch: Optional[BatchObserver] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.forward = forward
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.on_batch = on_batch
        self._queue: List[Tuple[np.ndarray, Future]] = []
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._closed = False
        self.batches_run = 0
        self.requests_seen = 0
        self._worker = threading.Thread(target=self._run, name="repro-serve-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one ``(N, H, F)`` window; resolves to its ``(N, U, F)`` forecast."""
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 3:
            raise ValueError(f"expected a (N, H, F) window, got shape {window.shape}")
        future: "Future[np.ndarray]" = Future()
        with self._work_available:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append((window, future))
            self.requests_seen += 1
            self._work_available.notify()
        return future

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the worker."""
        with self._work_available:
            if self._closed:
                return
            self._closed = True
            self._work_available.notify_all()
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _take_batch(self) -> Optional[List[Tuple[np.ndarray, Future]]]:
        """Block until a coalesced batch is ready (None = closed and drained)."""
        with self._work_available:
            while not self._queue and not self._closed:
                self._work_available.wait()
            if not self._queue:
                return None  # closed with nothing left
            # first request is in hand: linger up to max_wait_s for companions
            deadline = time.monotonic() + self.max_wait_s
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._work_available.wait(timeout=remaining):
                    break
            batch = self._queue[: self.max_batch_size]
            del self._queue[: len(batch)]
            return batch

    def _run(self) -> None:
        while True:
            started = time.monotonic()
            batch = self._take_batch()
            if batch is None:
                return
            wait_seconds = time.monotonic() - started
            if self.on_batch is not None:
                try:
                    self.on_batch(len(batch), self.queue_depth, wait_seconds)
                except Exception:
                    pass  # metrics must never take down the request path
            windows = [w for w, _ in batch]
            futures = [f for _, f in batch]
            try:
                stacked = np.stack(windows)
                forecasts = self.forward(stacked)
                if forecasts.shape[0] != len(batch):
                    raise RuntimeError(
                        f"batch forward returned {forecasts.shape[0]} forecasts "
                        f"for {len(batch)} requests"
                    )
            except Exception as error:
                for future in futures:
                    if not future.cancelled():
                        future.set_exception(error)
                continue
            self.batches_run += 1
            for future, forecast in zip(futures, forecasts):
                if not future.cancelled():
                    future.set_result(forecast)
