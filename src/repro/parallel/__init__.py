"""Multiprocess data-parallel training (see DESIGN.md "Parallel training").

Two cooperating pieces:

* :class:`WorkerPool` (:mod:`repro.parallel.engine`) — N worker processes
  that each run forward/backward on a shard of every mini-batch; the parent
  tree-reduces their gradients (:func:`repro.optim.all_reduce_gradients`)
  and takes a single optimizer step.  Weights travel through the schema-v2
  checkpoint codec; failures translate back into the exception types the
  resilience layer already handles.
* :class:`PrefetchingBatchIterator` (:mod:`repro.parallel.prefetch`) — a
  background assembler writing sliding-window batches into double-buffered
  shared memory so batch assembly overlaps compute.

The front door is :class:`repro.exec.ParallelExecutor` — selected by
``TrainerConfig(executor=ExecutorSpec.parallel(n_workers=...))`` — and
this package is the engine room.  The
equivalence contract — parallel training reproduces the serial loss
trajectory for deterministic models at any worker count — is enforced by
``tests/test_parallel.py`` and ``python -m repro.harness parallel-bench``.
"""

from .engine import (
    ParallelConfig,
    ShardResult,
    WorkerError,
    WorkerPool,
    default_start_method,
    sensor_shard_ranges,
    shard_batch,
    shard_sensors,
    unshard_sensors,
)
from .prefetch import PrefetchingBatchIterator

__all__ = [
    "ParallelConfig",
    "ShardResult",
    "WorkerError",
    "WorkerPool",
    "default_start_method",
    "shard_batch",
    "sensor_shard_ranges",
    "shard_sensors",
    "unshard_sensors",
    "PrefetchingBatchIterator",
]
