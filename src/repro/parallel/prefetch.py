"""Parallel windowed-dataset prefetcher: overlap batch assembly with compute.

Materializing a sliding-window batch is pure data movement —
``H`` history slices and ``U`` target slices stacked per sample
(:meth:`repro.data.windows.SlidingWindowDataset.sample`) — and on large
sensor networks it rivals a small model's forward pass.
:class:`PrefetchingBatchIterator` moves that assembly into a background
process that writes finished batches straight into double-buffered
shared-memory arrays, so the parent (or its worker pool) computes on batch
``k`` while batch ``k+1`` is being assembled.

Shared-memory protocol (classic double buffer, generalized to ``slots``):

* Two ``multiprocessing.RawArray`` pairs, each big enough for a full
  ``(batch, N, H|U, F)`` block, plus one ``filled``/``free`` semaphore pair
  per slot.
* The assembler acquires ``free[k % slots]``, writes the batch, releases
  ``filled``; the consumer acquires ``filled``, yields **views** into the
  buffer, and releases ``free`` only after the training step returns — so
  a buffer is never overwritten while the consumer can still read it.

Determinism: the epoch order is drawn from the *caller's* RNG with exactly
one ``rng.shuffle`` call — the same consumption pattern as the serial
:class:`repro.data.windows.BatchIterator` — so swapping the iterators never
changes which samples land in which batch.  The anchors are computed in the
parent and shipped to the assembler, which does no random draws at all.

Under ``fork`` the dataset arrays reach the assembler by page sharing
(zero-copy); under ``spawn`` they are pickled once per epoch — still a win
for long epochs, but the docstring-level guidance is: prefer fork where the
platform allows.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..data.windows import SlidingWindowDataset
from .engine import default_start_method

__all__ = ["PrefetchingBatchIterator"]


def _assembler_main(dataset: SlidingWindowDataset, batches, buffers, semaphores) -> None:
    """Background process: materialize each batch into its ring slot."""
    slots = len(buffers)
    try:
        for k, indices in enumerate(batches):
            slot = k % slots
            x_buffer, y_buffer, x_shape, y_shape = buffers[slot]
            filled, free = semaphores[slot]
            free.acquire()
            x, y = dataset.sample(indices)
            count = len(indices)
            np.frombuffer(x_buffer, dtype=np.float64).reshape(x_shape)[:count] = x
            np.frombuffer(y_buffer, dtype=np.float64).reshape(y_shape)[:count] = y
            filled.release()
    except (KeyboardInterrupt, BrokenPipeError):
        pass


class PrefetchingBatchIterator:
    """Drop-in :class:`repro.data.windows.BatchIterator` with a background
    assembler.

    Same constructor contract and iteration semantics (shuffle order, batch
    boundaries, ``max_batches`` cap); each epoch starts one assembler
    process and joins it when the epoch ends or the consumer abandons the
    loop.  The yielded arrays are views into shared memory, valid until the
    next ``next()`` — exactly as long as a training step needs them.
    """

    def __init__(
        self,
        dataset: SlidingWindowDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        max_batches: Optional[int] = None,
        start_method: Optional[str] = None,
        slots: int = 2,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if slots < 2:
            raise ValueError("double buffering needs at least 2 slots")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng()
        self.max_batches = max_batches
        self.slots = slots
        self._context = mp.get_context(start_method or default_start_method())
        num_sensors, _, features = dataset.data.shape
        spec = dataset.spec
        self._x_shape = (batch_size, num_sensors, spec.history, features)
        self._y_shape = (batch_size, num_sensors, spec.horizon, features)
        # RawArray: true shared memory, inheritable by fork and picklable
        # into a spawn child; allocated once and reused every epoch
        self._buffers = [
            (
                self._context.RawArray("d", int(np.prod(self._x_shape))),
                self._context.RawArray("d", int(np.prod(self._y_shape))),
                self._x_shape,
                self._y_shape,
            )
            for _ in range(slots)
        ]

    def __len__(self) -> int:
        full = (len(self.dataset) + self.batch_size - 1) // self.batch_size
        return min(full, self.max_batches) if self.max_batches else full

    def _epoch_batches(self) -> List[np.ndarray]:
        """Draw the epoch's batch index lists (consumes RNG like serial)."""
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        batches = [
            order[start : start + self.batch_size]
            for start in range(0, len(order), self.batch_size)
        ]
        if self.max_batches is not None:
            batches = batches[: self.max_batches]
        return batches

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        batches = self._epoch_batches()
        if not batches:
            return
        semaphores = [
            (self._context.Semaphore(0), self._context.Semaphore(1)) for _ in range(self.slots)
        ]
        assembler = self._context.Process(
            target=_assembler_main,
            args=(self.dataset, batches, self._buffers, semaphores),
            name="repro-prefetch",
            daemon=True,
        )
        assembler.start()
        try:
            for k, indices in enumerate(batches):
                slot = k % self.slots
                x_buffer, y_buffer, x_shape, y_shape = self._buffers[slot]
                filled, free = semaphores[slot]
                if not filled.acquire(timeout=300.0):
                    raise RuntimeError("prefetch assembler stalled (no batch within 300s)")
                count = len(indices)
                x = np.frombuffer(x_buffer, dtype=np.float64).reshape(x_shape)[:count]
                y = np.frombuffer(y_buffer, dtype=np.float64).reshape(y_shape)[:count]
                yield x, y
                free.release()
        finally:
            # normal exit: assembler already finished every batch; abandoned
            # iteration: it may be blocked on a free semaphore — terminate
            assembler.join(timeout=0.5)
            if assembler.is_alive():
                assembler.terminate()
                assembler.join(timeout=5.0)
