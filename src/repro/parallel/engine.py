"""Multiprocess data-parallel training engine.

One :class:`WorkerPool` owns N long-lived worker processes.  Every training
step the parent

1. serializes the current weights once with the schema-v2 checkpoint codec
   (:func:`repro.training.dumps_state_dict` — fork/spawn-safe, no pickled
   code objects on the weight path),
2. splits the mini-batch into per-worker shards (:func:`shard_batch`),
3. sends ``(weights, shard)`` to every worker over its pipe,
4. collects ``(loss, weight, grads, seconds)`` per shard and
5. tree-reduces the shard gradients into the parent model's parameters
   (:func:`repro.optim.all_reduce_gradients`) so a single optimizer step
   applies exactly the gradient serial training would have produced.

The worker never sees the optimizer: it is a pure
``weights, shard -> loss, gradients`` function, which keeps every piece of
mutable training state (Adam moments, early stopping, RNG streams,
checkpoints, recovery rollback) in the parent where the existing
resilience machinery already manages it.

Model transport: the model object crosses the process boundary once, at
pool start-up, via pickle (module classes are importable from both fork and
spawn children); its weights are refreshed every step through the codec.
Worker copies re-seed every RNG stream they hold through
:func:`repro.tensor.rng.reseed_module_generators` so no two workers draw
identical noise (see DESIGN.md "Parallel training" for the determinism
contract).

Failure translation: a ``FloatingPointError`` raised inside a worker (NaN
loss, :func:`repro.tensor.detect_anomaly` hit) is re-raised in the parent
as a ``FloatingPointError`` carrying the worker's message, so
:class:`repro.resilience.RecoveryPolicy` rollback/retry works unchanged at
any worker count.  Any other worker failure — including a dead process —
surfaces as :class:`WorkerError`.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ParallelConfig",
    "ShardResult",
    "WorkerError",
    "WorkerPool",
    "default_start_method",
    "shard_batch",
    "sensor_shard_ranges",
    "shard_sensors",
    "unshard_sensors",
]


class WorkerError(RuntimeError):
    """A data-parallel worker failed for a non-numerical reason (or died)."""


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, zero-copy inherited
    dataset arrays), ``spawn`` otherwise (macOS/Windows default)."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the data-parallel engine.

    ``step_timeout`` bounds how long the parent waits for any single worker
    reply before declaring the pool wedged; generous by default because CI
    machines stall unpredictably under load.
    """

    n_workers: int = 2
    start_method: Optional[str] = None  # None -> default_start_method()
    detect_anomaly: bool = False
    seed: int = 0
    step_timeout: float = 300.0

    def __post_init__(self):
        if self.n_workers < 2:
            raise ValueError(f"a worker pool needs n_workers >= 2, got {self.n_workers}")


@dataclass
class ShardResult:
    """What one worker reports back for one training step."""

    worker_id: int
    loss: float
    weight: float  # loss-mean element count c_i (see repro.optim.allreduce)
    grads: List[Optional[np.ndarray]] = field(repr=False, default_factory=list)
    seconds: float = 0.0  # worker-side forward+backward wall time


def shard_batch(
    x: np.ndarray, y: np.ndarray, n_shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a batch along axis 0 into up to ``n_shards`` contiguous shards.

    Contiguous ``np.array_split`` sharding preserves the serial sample
    order: concatenating the shards reproduces the batch exactly, which is
    what makes the parallel loss a weighted mean of shard losses.  Batches
    smaller than ``n_shards`` produce fewer (never empty) shards.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on batch size: {len(x)} vs {len(y)}")
    pieces = min(n_shards, len(x))
    if pieces < 1:
        raise ValueError("cannot shard an empty batch")
    return [
        (xs, ys)
        for xs, ys in zip(np.array_split(x, pieces), np.array_split(y, pieces))
        if len(xs)
    ]


def sensor_shard_ranges(num_sensors: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` sensor ranges for up to ``n_shards``.

    Mirrors ``np.array_split`` layout: the first ``N % K`` shards get one
    extra sensor.  Never returns an empty range — asking for more shards
    than sensors yields ``num_sensors`` single-sensor shards.
    """
    if num_sensors < 1:
        raise ValueError("cannot shard zero sensors")
    pieces = min(n_shards, num_sensors)
    if pieces < 1:
        raise ValueError("need at least one shard")
    # array_split's exact arithmetic: first N % K shards take the remainder
    base, extra = divmod(num_sensors, pieces)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(pieces):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def shard_sensors(
    x: np.ndarray, y: np.ndarray, n_shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a batch along the sensor axis (axis 1) into contiguous shards.

    The sensor-parallel counterpart of :func:`shard_batch`: shards follow
    :func:`sensor_shard_ranges`, so ``np.concatenate(pieces, axis=1)``
    reassembles the batch exactly.  NaN-masked targets ride along
    untouched; each shard's finite-target count is its all-reduce weight.
    """
    if x.ndim < 2 or y.ndim < 2:
        raise ValueError("sensor sharding needs (B, N, ...) arrays")
    if x.shape[1] != y.shape[1]:
        raise ValueError(
            f"x and y disagree on sensor count: {x.shape[1]} vs {y.shape[1]}"
        )
    ranges = sensor_shard_ranges(x.shape[1], n_shards)
    return [(x[:, start:stop], y[:, start:stop]) for start, stop in ranges]


def unshard_sensors(pieces: Sequence[np.ndarray]) -> np.ndarray:
    """Reassemble sensor shards: the inverse of :func:`shard_sensors`."""
    if not pieces:
        raise ValueError("nothing to unshard")
    return np.concatenate(list(pieces), axis=1)


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _worker_main(conn, init_blob: bytes) -> None:
    """Run one worker: receive steps over ``conn`` until told to stop.

    ``init_blob`` pickles a dict with the model, loss settings, the
    worker's id and the base seed — everything is imported lazily here so a
    spawn child only pays for what it uses.
    """
    from ..core.loss import STWALoss
    from ..tensor import detect_anomaly, ops as tensor_ops, rng as rng_module
    from ..tensor import tensor as tensor_core
    from ..training import checkpoint as checkpoint_module

    # a forked child inherits whatever observability hooks the parent had
    # installed at pool start-up; they would record into a dead copy
    tensor_ops.set_op_trace(None)
    tensor_ops.set_anomaly_check(None)
    tensor_core.set_grad_alloc_hook(None)

    init = pickle.loads(init_blob)
    model = init["model"]
    worker_id = int(init["worker_id"])
    rng_module.reseed_module_generators(model, int(init["seed"]), worker_id)
    sensor_shard = init.get("sensor_shard")
    if sensor_shard is not None:
        model.set_sensor_shard(*sensor_shard)
    model.train()
    parameters = model.parameters()
    loss_fn = STWALoss(delta=init["huber_delta"], kl_weight=init["kl_weight"])
    kl_model = model if hasattr(model, "kl_divergence") else None
    screen = bool(init["detect_anomaly"])

    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        if message[0] == "predict":
            try:
                _, weights_blob, x_shard = message
                if weights_blob is not None:
                    model.load_state_dict(checkpoint_module.loads_state_dict(weights_blob))
                model.eval()
                try:
                    with tensor_core.inference_mode():
                        forecast = model(tensor_core.Tensor(x_shard)).data
                finally:
                    model.train()
                conn.send(("ok", forecast))
            except Exception as error:  # noqa: BLE001 - full report crosses the pipe
                conn.send(("raise", "error", f"{type(error).__name__}: {error}"))
            continue
        try:
            _, weights_blob, x_shard, y_shard = message
            start = time.perf_counter()
            if weights_blob is not None:
                model.load_state_dict(checkpoint_module.loads_state_dict(weights_blob))
            for parameter in parameters:
                parameter.zero_grad()
            guard = detect_anomaly() if screen else nullcontext()
            with guard:
                prediction = model(tensor_core.Tensor(x_shard))
                loss = loss_fn(prediction, tensor_core.Tensor(y_shard), model=kl_model)
                value = float(loss.item())
                # mirror the serial trainer: a non-finite loss is reported,
                # not backpropagated — the parent raises the same error
                if np.isfinite(value):
                    loss.backward()
            grads = [None if p.grad is None else p.grad for p in parameters]
            weight = float(np.isfinite(y_shard).sum())
            conn.send(
                ("ok", value, weight, grads, time.perf_counter() - start)
            )
        except FloatingPointError as error:
            conn.send(("raise", "float", f"{type(error).__name__}: {error}"))
        except Exception as error:  # noqa: BLE001 - full report crosses the pipe
            conn.send(("raise", "error", f"{type(error).__name__}: {error}"))


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class WorkerPool:
    """N persistent training workers connected by pipes.

    Usable as a context manager; :meth:`close` is idempotent and always
    safe to call (it terminates stragglers rather than hang).
    """

    def __init__(
        self,
        model,
        config: ParallelConfig,
        *,
        huber_delta: float,
        kl_weight: float,
        worker_extras: Optional[Sequence[dict]] = None,
    ):
        if worker_extras is not None and len(worker_extras) != config.n_workers:
            raise ValueError(
                f"worker_extras has {len(worker_extras)} entries for "
                f"{config.n_workers} workers"
            )
        self.config = config
        self.n_workers = config.n_workers
        method = config.start_method or default_start_method()
        context = mp.get_context(method)
        self.start_method = method
        self._workers = []
        self._conns = []
        for worker_id in range(config.n_workers):
            init = {
                "model": model,
                "worker_id": worker_id,
                "seed": config.seed,
                "huber_delta": huber_delta,
                "kl_weight": kl_weight,
                "detect_anomaly": config.detect_anomaly,
            }
            if worker_extras is not None:
                init.update(worker_extras[worker_id])
            init_blob = pickle.dumps(init)
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, init_blob),
                name=f"repro-parallel-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)
        self._closed = False

    # ------------------------------------------------------------------ #
    def train_step(
        self, weights_blob: Optional[bytes], shards: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> List[ShardResult]:
        """Run one data-parallel step; returns one result per shard.

        Shards are dealt to workers in order; with fewer shards than
        workers (a tail batch smaller than the pool) the idle workers
        simply skip the step.  Raises ``FloatingPointError`` if any worker
        hit one (after draining every reply, so the pipes stay in sync for
        the retry the recovery policy will schedule).
        """
        if self._closed:
            raise WorkerError("worker pool is closed")
        if not shards:
            raise ValueError("train_step needs at least one shard")
        if len(shards) > self.n_workers:
            raise ValueError(f"{len(shards)} shards exceed pool size {self.n_workers}")
        for conn, (x_shard, y_shard) in zip(self._conns, shards):
            conn.send(("step", weights_blob, x_shard, y_shard))
        results: List[ShardResult] = []
        numerical_failure: Optional[str] = None
        worker_failure: Optional[str] = None
        for worker_id in range(len(shards)):
            reply = self._receive(worker_id)
            if reply[0] == "ok":
                _, value, weight, grads, seconds = reply
                results.append(ShardResult(worker_id, value, weight, grads, seconds))
            elif reply[1] == "float":
                numerical_failure = f"worker {worker_id}: {reply[2]}"
            else:
                worker_failure = f"worker {worker_id}: {reply[2]}"
        if worker_failure is not None:
            raise WorkerError(worker_failure)
        if numerical_failure is not None:
            raise FloatingPointError(numerical_failure)
        return results

    def predict(
        self, weights_blob: Optional[bytes], shards: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Fan an inference batch out over the pool; one forecast per shard.

        Same dealing/draining discipline as :meth:`train_step`: shards go
        to workers in order, every reply is collected before any error is
        raised, so the pipes stay usable afterwards.  Workers run under
        ``inference_mode`` with the shipped weights (ship ``None`` only if
        the pool's weights are known current).
        """
        if self._closed:
            raise WorkerError("worker pool is closed")
        if not shards:
            raise ValueError("predict needs at least one shard")
        if len(shards) > self.n_workers:
            raise ValueError(f"{len(shards)} shards exceed pool size {self.n_workers}")
        for conn, x_shard in zip(self._conns, shards):
            conn.send(("predict", weights_blob, x_shard))
        forecasts: List[np.ndarray] = []
        worker_failure: Optional[str] = None
        for worker_id in range(len(shards)):
            reply = self._receive(worker_id)
            if reply[0] == "ok":
                forecasts.append(reply[1])
            else:
                worker_failure = f"worker {worker_id}: {reply[2]}"
        if worker_failure is not None:
            raise WorkerError(worker_failure)
        return forecasts

    def _receive(self, worker_id: int):
        conn = self._conns[worker_id]
        if not conn.poll(self.config.step_timeout):
            self.close()
            raise WorkerError(
                f"worker {worker_id} sent no reply within {self.config.step_timeout:.0f}s"
            )
        try:
            return conn.recv()
        except EOFError as error:
            self.close()
            raise WorkerError(f"worker {worker_id} died mid-step") from error

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop every worker; terminate any that ignore the request."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: never leak processes
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass
