"""Capacity report: which registered models fit at city scale, in how many shards.

``python -m repro.harness capacity`` evaluates the
:class:`repro.training.CapacityPlanner` over every registered model at
metro-area sensor counts (default N=10k and N=50k), prints the verdict
table, and writes ``<out>/capacity_report.json``.

The table answers the scaling question the ROADMAP poses: past N=883 the
quadratic families (STFGNN's fused graph, graph-conv mixing, AGCRN's
adaptive adjacency) blow through the budget and *cannot* be rescued by
sensor sharding (their forwards mix across sensors), while the per-sensor
SimST track stays linear in N and shards along the sensor axis whenever one
worker's budget is exceeded (``ExecutorSpec(kind="sharded")``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..training.memory import CapacityPlanner, ModelDims, V100_BUDGET_GB
from .reporting import TableResult, fmt
from .runner import RunSettings

SENSOR_COUNTS = (10_000, 50_000)


def _cell(plan: Dict[str, object]) -> str:
    if plan["fits"]:
        return "fits"
    shards = plan["shards_needed"]
    if shards is None:
        return "OOM (unshardable)" if not plan["sensor_shardable"] else "OOM"
    if plan["sensor_shardable"]:
        return f"{shards} shards"
    return f"OOM ({shards} shards would fit, but model can't sensor-shard)"


def run(
    settings: Optional[RunSettings] = None,
    out_dir: Path = Path("results"),
    *,
    budget_gb: float = V100_BUDGET_GB,
    sensor_counts: Sequence[int] = SENSOR_COUNTS,
    models: Optional[Sequence[str]] = None,
    dims: Optional[ModelDims] = None,
) -> Tuple[TableResult, Dict]:
    """Evaluate the planner over the zoo; write ``capacity_report.json``."""
    settings = settings or RunSettings.smoke()
    planner = CapacityPlanner(budget_gb=budget_gb, dims=dims)
    report = planner.report(models=models, sensor_counts=sensor_counts)
    report["scope"] = settings.scope

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "capacity_report.json"
    json_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = []
    for name, per_count in sorted(report["models"].items()):
        first = next(iter(per_count.values()))
        row = [name, first["family"]]
        for count in report["sensor_counts"]:
            plan = per_count[str(count)]
            row.append(fmt(plan["activation_gb"], 2))
            row.append(_cell(plan))
        rows.append(row)

    headers = ["model", "family"]
    for count in report["sensor_counts"]:
        headers += [f"GB @N={count}", f"verdict @N={count}"]
    table = TableResult(
        experiment_id="capacity",
        title=f"Capacity plan: activation memory vs a {budget_gb:.0f} GB budget",
        headers=headers,
        rows=rows,
        notes=[
            "analytic activation model (see repro.training.memory); shards = "
            "smallest contiguous sensor split whose per-shard step fits",
            f"report written to {json_path}",
        ],
        extras={"report": report},
    )
    return table, report
