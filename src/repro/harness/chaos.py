"""Chaos drills: inject faults into real training runs and verify recovery.

``python -m repro.harness chaos`` runs three scenarios against a smoke-scale
training run and writes ``<out>/chaos_report.json``:

* ``kill_resume``     — train with checkpointing, kill the process partway
  (:class:`repro.resilience.ProcessKillFault`), resume a *fresh* trainer
  from the latest checkpoint, and require the resumed trajectory to match
  an uninterrupted run **bit-exactly** (validation curve and final weights).
* ``nan_gradient``    — poison a gradient with NaN mid-training and require
  the :class:`repro.resilience.RecoveryPolicy` to roll back, back off the
  learning rate, and finish the run (>=1 ``recovery`` event).
* ``sensor_dropout``  — silence 20% of sensors.  The masked pipeline
  (imputed inputs + masked loss/metrics) must stay within 2x the clean
  val-MAE; the unmasked negative control must diverge.

The report's ``all_recovered`` field is the CI gate: the ``chaos``
subcommand exits nonzero unless every scenario passed.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import BuildSpec, build_from_spec
from ..data import TrafficDataset, WindowSpec
from ..obs import ListSink
from ..resilience import (
    FaultInjector,
    NaNGradientFault,
    ProcessKillFault,
    RecoveryPolicy,
    SimulatedCrash,
    inject_sensor_dropout,
)
from ..training import Trainer, TrainerConfig, latest_checkpoint
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset

HISTORY = 12
HORIZON = 12
DATASET = "PEMS08"  # the smallest simulated dataset: chaos is about the loop
DROPOUT_RATE = 0.2
DEGRADED_MAE_FACTOR = 2.0


def _build(
    model_name: str,
    dataset: TrafficDataset,
    settings: RunSettings,
    **overrides,
) -> Trainer:
    """A fresh model + Trainer configured from ``settings`` (harness style)."""
    spec = BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, seed=settings.seed)
    model = build_from_spec(model_name, spec)
    config = TrainerConfig(
        lr=settings.lr,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        patience=settings.patience,
        max_batches_per_epoch=settings.max_batches,
        eval_batches=settings.eval_batches,
        seed=settings.seed,
        **overrides,
    )
    return Trainer(model, dataset, WindowSpec(HISTORY, HORIZON), config)


def _kill_resume(
    model_name: str, dataset: TrafficDataset, settings: RunSettings, ckpt_dir: Path
) -> Dict:
    """Kill training mid-epoch, resume fresh, demand a bit-exact trajectory."""
    crash_epoch = settings.epochs // 2
    shutil.rmtree(ckpt_dir, ignore_errors=True)

    interrupted = _build(
        model_name,
        dataset,
        settings,
        checkpoint_dir=ckpt_dir,
        batch_hook=FaultInjector([ProcessKillFault(epoch=crash_epoch, batch=0)]),
    )
    crashed = False
    try:
        interrupted.fit()
    except SimulatedCrash:
        crashed = True
    checkpoint = latest_checkpoint(ckpt_dir)

    resumed_trainer = _build(model_name, dataset, settings, checkpoint_dir=ckpt_dir)
    resumed = resumed_trainer.fit(resume_from=checkpoint)

    reference_trainer = _build(model_name, dataset, settings)
    reference = reference_trainer.fit()

    curves_match = resumed.val_mae == reference.val_mae
    resumed_state = resumed_trainer.model.state_dict()
    reference_state = reference_trainer.model.state_dict()
    weights_match = set(resumed_state) == set(reference_state) and all(
        np.array_equal(resumed_state[name], reference_state[name]) for name in reference_state
    )
    return {
        "passed": crashed and checkpoint is not None and curves_match and weights_match,
        "crashed": crashed,
        "crash_epoch": crash_epoch,
        "resumed_from": None if checkpoint is None else checkpoint.name,
        "curves_match": curves_match,
        "weights_match": weights_match,
        "val_mae_resumed": resumed.val_mae,
        "val_mae_reference": reference.val_mae,
    }


def _nan_gradient(model_name: str, dataset: TrafficDataset, settings: RunSettings) -> Dict:
    """Poison a gradient with NaN; the recovery policy must finish the run."""
    fault_epoch = min(1, settings.epochs - 1)
    sink = ListSink()
    trainer = _build(
        model_name,
        dataset,
        settings,
        sink=sink,
        recovery=RecoveryPolicy(),
        batch_hook=FaultInjector([NaNGradientFault(epoch=fault_epoch, batch=0)]),
    )
    completed = False
    error = None
    history = None
    try:
        history = trainer.fit()
        completed = history.epochs_run == settings.epochs
    except Exception as exc:  # a drill must report, not crash the harness
        error = f"{type(exc).__name__}: {exc}"
    recovery_events = sink.of_type("recovery")
    recoveries = history.recoveries if history is not None else 0
    return {
        "passed": completed and recoveries >= 1 and len(recovery_events) >= 1,
        "completed": completed,
        "recoveries": recoveries,
        "recovery_events": len(recovery_events),
        "final_lr": [e["lr"] for e in recovery_events],
        "error": error,
    }


def _sensor_dropout(model_name: str, dataset: TrafficDataset, settings: RunSettings) -> Dict:
    """20% dead sensors: masked pipeline must hold up, unmasked must diverge."""
    clean_trainer = _build(model_name, dataset, settings)
    clean_trainer.fit()
    clean_mae = clean_trainer.evaluate("val", max_batches=settings.eval_batches)["mae"]

    degraded_data = inject_sensor_dropout(dataset, rate=DROPOUT_RATE, seed=settings.seed)
    degraded_trainer = _build(model_name, degraded_data, settings)
    degraded_trainer.fit()
    degraded_mae = degraded_trainer.evaluate("val", max_batches=settings.eval_batches)["mae"]

    poisoned_data = inject_sensor_dropout(
        dataset, rate=DROPOUT_RATE, seed=settings.seed, impute_method=None
    )
    poisoned_trainer = _build(model_name, poisoned_data, settings)
    baseline_diverged = False
    try:
        poisoned_trainer.fit()
    except FloatingPointError:
        baseline_diverged = True

    ratio = float(degraded_mae / clean_mae) if clean_mae > 0 else float("inf")
    within_budget = np.isfinite(degraded_mae) and ratio < DEGRADED_MAE_FACTOR
    return {
        "passed": bool(within_budget and baseline_diverged),
        "dropout_rate": DROPOUT_RATE,
        "clean_val_mae": float(clean_mae),
        "degraded_val_mae": float(degraded_mae),
        "ratio": ratio,
        "max_ratio": DEGRADED_MAE_FACTOR,
        "baseline_diverged": baseline_diverged,
    }


def run(
    settings: Optional[RunSettings] = None,
    out_dir: "Path | str" = "results",
    fast: bool = False,
    model_name: str = "st-wa",
) -> Tuple[TableResult, Dict]:
    """Run every chaos scenario; returns the table and the JSON report."""
    settings = settings or RunSettings.smoke()
    if fast:
        settings = settings.with_overrides(epochs=4, max_batches=3, eval_batches=2)
    elif settings.epochs < 4:
        # kill_resume needs room to crash halfway and keep training after
        settings = settings.with_overrides(epochs=4)
    out_dir = Path(out_dir)
    dataset = get_dataset(DATASET, settings.profile)
    ckpt_dir = out_dir / "chaos_ckpt"

    scenarios = {
        "kill_resume": _kill_resume(model_name, dataset, settings, ckpt_dir),
        "nan_gradient": _nan_gradient(model_name, dataset, settings),
        "sensor_dropout": _sensor_dropout(model_name, dataset, settings),
    }
    shutil.rmtree(ckpt_dir, ignore_errors=True)  # drill scratch, not a result
    report = {
        "model": model_name,
        "dataset": DATASET,
        "scope": settings.scope,
        "epochs": settings.epochs,
        "scenarios": scenarios,
        "all_recovered": all(s["passed"] for s in scenarios.values()),
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "chaos_report.json").write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    rows = []
    rows.append(
        [
            "kill_resume",
            "PASS" if scenarios["kill_resume"]["passed"] else "FAIL",
            f"resumed from {scenarios['kill_resume']['resumed_from']}, "
            f"bit-exact={scenarios['kill_resume']['weights_match']}",
        ]
    )
    rows.append(
        [
            "nan_gradient",
            "PASS" if scenarios["nan_gradient"]["passed"] else "FAIL",
            f"recoveries={scenarios['nan_gradient']['recoveries']}",
        ]
    )
    rows.append(
        [
            "sensor_dropout",
            "PASS" if scenarios["sensor_dropout"]["passed"] else "FAIL",
            f"val-MAE ratio {fmt(scenarios['sensor_dropout']['ratio'])} "
            f"(<{fmt(DEGRADED_MAE_FACTOR, 1)}), baseline diverged="
            f"{scenarios['sensor_dropout']['baseline_diverged']}",
        ]
    )
    table = TableResult(
        experiment_id="chaos",
        title=f"Fault-injection drills ({model_name}, {DATASET}, {settings.scope})",
        headers=["scenario", "status", "detail"],
        rows=rows,
        notes=[f"full report: {out_dir / 'chaos_report.json'}"],
        extras={"report": report},
    )
    return table, report
