"""Table XIV: effect of the proxy aggregation function (PEMS04, H=U=72).

Replacing the learned weighted aggregator (Eq. 12-13) with a uniform mean
aggregator significantly hurts accuracy in the paper.
"""

from __future__ import annotations

from typing import Optional

from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    history: int = 72,
    horizon: int = 72,
) -> TableResult:
    """Weighted (ours) vs mean proxy aggregation."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    ours = train_and_score("ST-WA", dataset, history, horizon, settings)
    mean = train_and_score("ST-WA-mean", dataset, history, horizon, settings)
    headers = ["", "MAE", "MAPE", "RMSE"]
    rows = [
        ["Mean Aggregator", fmt(mean["mae"]), fmt(mean["mape"]), fmt(mean["rmse"])],
        ["Our Aggregator", fmt(ours["mae"]), fmt(ours["mape"]), fmt(ours["rmse"])],
    ]
    return TableResult(
        experiment_id="table14",
        title=f"Effect of aggregation functions, {dataset_name}, H=U={history} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: the learned weighted aggregator clearly beats the mean (23.54 vs 24.65 MAE)."],
        extras={"ours_mae": ours["mae"], "mean_mae": mean["mae"]},
    )
