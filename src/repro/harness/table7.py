"""Table VII: model-agnostic ST-aware parameter generation (GRU/ATT +S/+ST).

The paper enhances a plain GRU and a plain attention model (ATT) with the
spatial-aware (+S) and spatio-temporal-aware (+ST) parameter generation;
+S improves over the base and +ST improves further, on every dataset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

TABLE7_MODELS = ("GRU", "GRU+S", "GRU+ST", "ATT", "ATT+S", "ATT+ST")
TABLE7_DATASETS = ("PEMS03", "PEMS04", "PEMS07", "PEMS08")


def run(
    settings: Optional[RunSettings] = None,
    datasets: Sequence[str] = TABLE7_DATASETS,
    models: Sequence[str] = TABLE7_MODELS,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Base vs +S vs +ST for both model families."""
    settings = settings or RunSettings.smoke()
    headers = ["Dataset", "Metric", *models]
    rows = []
    monotone = 0
    chains = 0
    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, settings.profile)
        results = {
            model: train_and_score(model, dataset, history, horizon, settings) for model in models
        }
        for metric in ("mae", "mape", "rmse"):
            row = [dataset_name if metric == "mae" else "", metric.upper()]
            row += [fmt(results[model][metric]) for model in models]
            rows.append(row)
        for base in ("GRU", "ATT"):
            if base not in results or f"{base}+ST" not in results:
                continue
            chains += 1
            if results[f"{base}+ST"]["mae"] <= results[base]["mae"]:
                monotone += 1
    return TableResult(
        experiment_id="table7",
        title=f"Enhanced GRU and ATT, H={history}, U={horizon} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "Paper: +S improves over the base model and +ST improves further.",
            f"+ST beat its base model in {monotone}/{chains} family-dataset chains this run.",
        ],
        extras={"monotone_chains": monotone, "total_chains": chains},
    )
