"""Fleet lifecycle benchmark: the whole ``repro.fleet`` stack under fire.

``python -m repro.harness fleet-bench`` exercises the model-lifecycle
subsystem end to end and writes ``<out>/fleet_bench.json``:

1. **Train** a real model (default ST-WA on PEMS08, smoke scale) exactly as
   ``serve-bench`` does, then derive a second, weight-perturbed variant —
   two honest, distinct artifacts to move through the lifecycle.
2. **Registry drill** — publish both versions to a
   :class:`repro.fleet.ModelRegistry`, promote, roll back, re-promote; load
   the live artifact back (digest-checked) and require byte-equal
   forecasts.
3. **Multi-tenant routing + admission** — two city tenants on one
   :class:`repro.fleet.FleetRouter`; a deliberately slowed primary plus a
   tiny admission bound forces load shedding on one tenant while the other
   stays crisp.  Every response must carry a valid ``source``.
4. **Hot swap under load** — client threads hammer the tenant while the
   primary is swapped v1 -> v2 mid-stream.  Gate: zero failed requests,
   every response attributed to exactly one of the two versions, the two
   version counts sum to the total, and post-swap traffic serves from v2.
5. **Shadow deployment** — v1 shadows the new primary; divergence (MAE and
   percent disagreement) must accumulate off the hot path.
6. **Drift -> retrain -> swap** — replay a regime-shifted stream until the
   :class:`repro.fleet.DriftDetector` trips, then let
   :class:`repro.fleet.FleetManager` fine-tune, validate on held-back
   windows, publish, promote, and hot-swap the winner end to end.

Each phase contributes a gate; the overall ``ok`` is their conjunction and
the subcommand exits nonzero when any gate fails.  ``--fast`` shrinks
everything to the CI budget.
"""

from __future__ import annotations

import copy
import json
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..data.datasets import TrafficDataset
from ..data.scalers import StandardScaler
from ..fleet import (
    DriftPolicy,
    FleetConfig,
    FleetManager,
    FleetRouter,
    ModelRegistry,
    RetrainPolicy,
)
from ..obs import ListSink
from ..serve import ForecasterArtifact, ServeConfig
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset
from .serve_bench import DATASET, HISTORY, HORIZON, _train_artifact

#: every response the fleet may legally return
VALID_SOURCES = ("model", "cache", "fallback", "shed")


def _perturbed_variant(artifact: ForecasterArtifact, scale: float = 0.05, seed: int = 1) -> ForecasterArtifact:
    """A distinct-but-related artifact: same architecture, nudged weights.

    Stands in for "the next training run's weights" so registry, shadow,
    and A/B phases compare two genuinely different models without paying
    for a second training loop.
    """
    model = copy.deepcopy(artifact.model)
    rng = np.random.default_rng(seed)
    for parameter in model.parameters():
        parameter.data = parameter.data + scale * rng.standard_normal(parameter.data.shape)
    return ForecasterArtifact(
        model,
        scaler=artifact.scaler,
        model_name=artifact.model_name,
        history=artifact.history,
        horizon=artifact.horizon,
        metadata={"perturbed_from": artifact.model_id, "perturb_scale": scale},
    )


def _drifted_dataset(dataset: TrafficDataset, shift_sigmas: float = 3.0) -> TrafficDataset:
    """A regime-shifted copy of ``dataset``: a level shift of N train sigmas.

    An additive shift (a demand surge) moves the stream outside the regime
    the live scaler normalizes for, so a model trained on the original data
    is genuinely miscalibrated on it — the synthetic drift scenario the
    lifecycle must survive.  (A purely multiplicative shift is nearly
    invisible here: standard scaling makes the model roughly
    scale-equivariant.)  The refit scaler makes the copy a self-consistent
    "recent data" bundle for the drift-response fine-tune.
    """
    shift = shift_sigmas * float(dataset.train_raw.std())
    train_raw = dataset.train_raw + shift
    val_raw = dataset.val_raw + shift
    test_raw = dataset.test_raw + shift
    scaler = StandardScaler().fit(train_raw)
    return TrafficDataset(
        name=dataset.name,
        profile=dataset.profile,
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=dataset.network,
    )


# ---------------------------------------------------------------------- #
# phases
# ---------------------------------------------------------------------- #
def _registry_drill(
    registry: ModelRegistry,
    model_id: str,
    v1_artifact: ForecasterArtifact,
    v2_artifact: ForecasterArtifact,
    dataset: TrafficDataset,
    window: np.ndarray,
) -> Dict:
    """publish x2 -> promote -> rollback -> re-promote -> digest-checked load."""
    v1 = registry.publish(
        model_id,
        v1_artifact,
        metrics={"source": "initial training"},
        dataset_name=dataset.name,
        dataset_profile=dataset.profile,
        promote=True,
    )
    v2 = registry.publish(
        model_id,
        v2_artifact,
        metrics={"source": "perturbed variant"},
        dataset_name=dataset.name,
        dataset_profile=dataset.profile,
    )
    live_after_publish = registry.live_version(model_id)
    registry.promote(model_id, v2)
    live_after_promote = registry.live_version(model_id)
    rolled_back_to = registry.rollback(model_id)
    live_after_rollback = registry.live_version(model_id)
    registry.promote(model_id, v2)

    loaded = registry.load(model_id, v1, dataset=dataset)
    forecasts_match = bool(np.allclose(loaded.predict(window), v1_artifact.predict(window)))
    ok = bool(
        v1 == 1
        and v2 == 2
        and live_after_publish == v1  # unpromoted publish must not move live
        and live_after_promote == v2
        and rolled_back_to == v1
        and live_after_rollback == v1
        and registry.live_version(model_id) == v2
        and loaded.model_id == v1_artifact.model_id
        and loaded.registry_version == v1
        and forecasts_match
    )
    return {
        "versions": [v1, v2],
        "live_after_publish": live_after_publish,
        "live_after_promote": live_after_promote,
        "rolled_back_to": rolled_back_to,
        "live_after_rollback": live_after_rollback,
        "final_live": registry.live_version(model_id),
        "loaded_model_id_match": loaded.model_id == v1_artifact.model_id,
        "loaded_forecast_match": forecasts_match,
        "events": len(registry.history(model_id)),
        "ok": ok,
    }


def _admission_phase(
    router: FleetRouter,
    dataset: TrafficDataset,
    slow_tenant: str,
    crisp_tenant: str,
    clients: int,
    rounds: int,
) -> Dict:
    """Overload one tenant behind a slowed model; the other must stay clean."""
    slow_artifact = router.live_artifact(slow_tenant)
    hook = slow_artifact.model.register_forward_pre_hook(
        lambda module, args: time.sleep(0.03)
    )
    sources = {tenant: dict.fromkeys(VALID_SOURCES, 0) for tenant in (slow_tenant, crisp_tenant)}
    invalid = 0
    try:
        with ThreadPoolExecutor(max_workers=clients) as pool:
            for round_index in range(rounds):
                tick = dataset.test_raw[:, (HISTORY + round_index) % dataset.test_raw.shape[1], :]
                router.ingest(slow_tenant, tick)
                router.ingest(crisp_tenant, tick)
                futures = [
                    pool.submit(router.forecast, slow_tenant) for _ in range(clients)
                ] + [pool.submit(router.forecast, crisp_tenant) for _ in range(2)]
                for future in futures:
                    result = future.result()
                    if result.source not in VALID_SOURCES:
                        invalid += 1
                    else:
                        sources[result.model_id][result.source] += 1
    finally:
        hook.remove()
    snapshot = router.snapshot()["tenants"]
    crisp_ok = sources[crisp_tenant]["model"] + sources[crisp_tenant]["cache"] > 0
    ok = bool(
        invalid == 0
        and snapshot[slow_tenant]["sheds"] > 0
        and sources[slow_tenant]["shed"] == snapshot[slow_tenant]["sheds"]
        and crisp_ok
        and snapshot[crisp_tenant]["sheds"] == 0
    )
    return {
        "clients": clients,
        "rounds": rounds,
        "sources": sources,
        "invalid_sources": invalid,
        "slow_tenant_sheds": snapshot[slow_tenant]["sheds"],
        "crisp_tenant_sheds": snapshot[crisp_tenant]["sheds"],
        "ok": ok,
    }


def _swap_phase(
    router: FleetRouter,
    registry: ModelRegistry,
    dataset: TrafficDataset,
    model_id: str,
    clients: int,
    requests_per_client: int,
) -> Dict:
    """Hot-swap v1 -> v2 while client threads hammer the tenant.

    The zero-downtime gate of the whole subsystem: no request may fail or
    drop, every response is attributed to exactly one of the two versions,
    and once the swap returns the tenant serves v2.
    """
    from_version = router.live_version(model_id)
    v2_artifact = registry.load(model_id, dataset=dataset)  # live is v2 now
    to_version = v2_artifact.registry_version

    results, errors = [], []
    results_lock = threading.Lock()
    start_barrier = threading.Barrier(clients + 1)

    def client(worker: int) -> None:
        start_barrier.wait()
        for i in range(requests_per_client):
            tick = dataset.test_raw[:, (HISTORY + worker + i) % dataset.test_raw.shape[1], :]
            try:
                if worker == 0:  # one writer advances the stream, all read
                    router.ingest(model_id, tick)
                result = router.forecast(model_id)
            except Exception as error:  # any raise = a dropped request
                with results_lock:
                    errors.append(f"{type(error).__name__}: {error}")
                return
            with results_lock:
                results.append((result.source, result.version))

    threads = [threading.Thread(target=client, args=(w,)) for w in range(clients)]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    time.sleep(0.02)  # let pre-swap traffic land on v1
    swap_report = router.swap(model_id, v2_artifact)
    for thread in threads:
        thread.join()

    by_version: Dict[str, int] = {}
    bad_sources = 0
    for source, version in results:
        if source not in VALID_SOURCES:
            bad_sources += 1
        by_version[str(version)] = by_version.get(str(version), 0) + 1
    post_swap = router.forecast(model_id)
    expected_total = clients * requests_per_client
    versions_sum = sum(by_version.values())
    ok = bool(
        not errors
        and bad_sources == 0
        and versions_sum == expected_total == len(results)
        and set(by_version) <= {str(from_version), str(to_version)}
        and swap_report["drained"]
        and router.live_version(model_id) == to_version
        and post_swap.version == to_version
        and post_swap.source in VALID_SOURCES
    )
    return {
        "from_version": from_version,
        "to_version": to_version,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": len(results),
        "errors": errors,
        "invalid_sources": bad_sources,
        "by_version": by_version,
        "versions_sum_matches_total": versions_sum == expected_total,
        "drained": bool(swap_report["drained"]),
        "old_engine_requests": swap_report["old_requests"],
        "post_swap_version": post_swap.version,
        "ok": ok,
    }


def _shadow_phase(
    router: FleetRouter,
    registry: ModelRegistry,
    dataset: TrafficDataset,
    model_id: str,
    sink: ListSink,
    ticks: int,
) -> Dict:
    """v1 shadows the v2 primary; divergence must accumulate off-path."""
    shadow_artifact = registry.load(model_id, 1, dataset=dataset)
    events_before = len(sink.of_type("shadow_divergence"))
    router.start_shadow(model_id, shadow_artifact)
    for t in range(ticks):
        tick = dataset.test_raw[:, (2 * HISTORY + t) % dataset.test_raw.shape[1], :]
        router.ingest(model_id, tick)
        router.forecast(model_id)
    router.drain_shadow()
    summary = router.stop_shadow(model_id)
    divergence_events = len(sink.of_type("shadow_divergence")) - events_before
    ok = bool(
        summary["compared"] > 0
        and np.isfinite(summary["mean_mae"])
        and summary["mean_mae"] > 0  # perturbed weights genuinely diverge
        and divergence_events == summary["compared"]
    )
    return {"ticks": ticks, **summary, "divergence_events": divergence_events, "ok": ok}


def _drift_phase(
    manager: FleetManager,
    dataset: TrafficDataset,
    model_id: str,
    policy: RetrainPolicy,
    calibration_ticks: int,
    max_drift_ticks: int,
) -> Dict:
    """Regime shift -> drift trip -> fine-tune -> validate -> promote -> swap."""
    router = manager.router
    drifted = _drifted_dataset(dataset)

    for t in range(calibration_ticks):  # settle the post-swap baseline
        router.ingest(model_id, dataset.test_raw[:, t % dataset.test_raw.shape[1], :])
        router.forecast(model_id)
    ticks_to_trip = None
    for t in range(max_drift_ticks):  # then replay the shifted regime
        router.ingest(model_id, drifted.test_raw[:, t % drifted.test_raw.shape[1], :])
        router.forecast(model_id)
        if router.drift_status(model_id)["drifted"]:
            ticks_to_trip = t + 1
            break
    verdict = router.drift_status(model_id)

    version_before = router.live_version(model_id)
    report = manager.retrain(model_id, drifted, policy=policy)
    post = router.forecast(model_id)
    ok = bool(
        verdict["drifted"]
        and ticks_to_trip is not None
        and report["action"] == "swapped"
        and report["swap"]["drained"]
        and router.live_version(model_id) == report["candidate_version"]
        and router.live_version(model_id) != version_before
        and post.version == report["candidate_version"]
        and post.source in VALID_SOURCES
        and report["candidate_mae"] <= report["accept_margin"] * report["live_mae"]
    )
    return {
        "drift": verdict,
        "ticks_to_trip": ticks_to_trip,
        "version_before": version_before,
        "retrain": {k: v for k, v in report.items() if k != "swap"},
        "swap": report.get("swap"),
        "post_swap_version": post.version,
        "ok": ok,
    }


# ---------------------------------------------------------------------- #
def run(
    settings: Optional[RunSettings] = None,
    out_dir: "Path | str" = "results",
    fast: bool = False,
    model_name: str = "st-wa",
) -> Tuple[TableResult, Dict]:
    """Run the full fleet lifecycle benchmark; returns table + JSON report."""
    settings = settings or RunSettings.smoke()
    if fast:
        settings = settings.with_overrides(epochs=2, max_batches=3, eval_batches=2)
    clients, requests_per_client, shadow_ticks = (4, 6, 5) if fast else (6, 12, 10)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = get_dataset(DATASET, settings.profile)
    scratch = out_dir / "fleet_scratch"
    shutil.rmtree(scratch, ignore_errors=True)
    model_id = "city-a"
    second_tenant = "city-b"

    artifact, train_info = _train_artifact(model_name, dataset, settings, scratch / "ckpt")
    variant = _perturbed_variant(artifact)
    probe = dataset.test_raw[:, :HISTORY, :]

    registry = ModelRegistry(scratch / "registry")
    drill = _registry_drill(registry, model_id, artifact, variant, dataset, probe)

    sink = ListSink()
    config = FleetConfig(
        max_inflight=2,
        disagree_tol=0.02,
        drift=DriftPolicy(window=8, calibration=8, factor=1.5, min_samples=4),
        serve=ServeConfig(
            max_batch_size=max(2, clients),
            max_wait_ms=2.0,
            cache_ttl_s=60.0,
            deadline_ms=10_000.0,
            cooldown_s=0.05,
        ),
        sink=sink,
    )
    retrain_policy = RetrainPolicy(
        epochs=1 if fast else 2,
        max_batches=3 if fast else 10,
        eval_batches=2,
        holdout_windows=4 if fast else 8,
        accept_margin=1.0,
    )
    with FleetRouter(config) as router:
        manager = FleetManager(registry, router, sink=sink)
        manager.deploy(
            model_id, version=1, num_sensors=dataset.num_sensors, dataset=dataset
        )
        router.add_model(second_tenant, variant, dataset.num_sensors)
        for t in range(HISTORY):  # warm both tenants' stream rings
            tick = dataset.test_raw[:, t % dataset.test_raw.shape[1], :]
            router.ingest(model_id, tick)
            router.ingest(second_tenant, tick)

        admission = _admission_phase(
            router, dataset, model_id, second_tenant, clients=clients, rounds=4
        )
        swap = _swap_phase(
            router, registry, dataset, model_id,
            clients=clients, requests_per_client=requests_per_client,
        )
        shadow = _shadow_phase(router, registry, dataset, model_id, sink, ticks=shadow_ticks)
        drift = _drift_phase(
            manager, dataset, model_id, retrain_policy,
            calibration_ticks=10, max_drift_ticks=40,
        )
        snapshot = router.snapshot()
        slo = router._tenants[model_id].primary.engine.stats.slo_report()
    shutil.rmtree(scratch, ignore_errors=True)  # bench scratch, not a result

    phases = {
        "registry": drill,
        "admission": admission,
        "hot_swap": swap,
        "shadow": shadow,
        "drift_retrain": drift,
    }
    ok = all(phase["ok"] for phase in phases.values())
    report = {
        "schema": 1,
        "model": model_name,
        "dataset": DATASET,
        "scope": settings.scope,
        "fast": fast,
        "train": train_info,
        "artifacts": {"v1": artifact.model_id, "v2": variant.model_id},
        **phases,
        "fleet": snapshot,
        "identity_stamp": {  # satellite: SLO reports carry artifact identity
            "model_id": slo.get("model_id"),
            "artifact_version": slo.get("artifact_version"),
            "executor_kind": slo.get("executor_kind"),
        },
        "events": {
            "total": len(sink.events),
            "fleet_swap": len(sink.of_type("fleet_swap")),
            "fleet_shed": len(sink.of_type("fleet_shed")),
            "shadow_divergence": len(sink.of_type("shadow_divergence")),
            "drift": len(sink.of_type("drift")),
            "fleet_retrain": len(sink.of_type("fleet_retrain")),
        },
        "ok": ok,
    }
    out_path = out_dir / "fleet_bench.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    rows = [
        [
            "registry",
            "PASS" if drill["ok"] else "FAIL",
            f"v{drill['versions'][0]}->v{drill['versions'][1]}, rollback to "
            f"v{drill['rolled_back_to']}, {drill['events']} log events, load verified",
        ],
        [
            "admission",
            "PASS" if admission["ok"] else "FAIL",
            f"{admission['slow_tenant_sheds']} sheds on {model_id}, "
            f"{admission['crisp_tenant_sheds']} on {second_tenant}, "
            f"{admission['invalid_sources']} invalid sources",
        ],
        [
            "hot_swap",
            "PASS" if swap["ok"] else "FAIL",
            f"{swap['completed']} req during v{swap['from_version']}->v{swap['to_version']}, "
            f"{len(swap['errors'])} errors, by_version={swap['by_version']}, "
            f"drained={swap['drained']}",
        ],
        [
            "shadow",
            "PASS" if shadow["ok"] else "FAIL",
            f"{shadow['compared']} compared, mean MAE {fmt(shadow['mean_mae'])}, "
            f"disagree {fmt(shadow['mean_disagree_pct'])}%",
        ],
        [
            "drift_retrain",
            "PASS" if drift["ok"] else "FAIL",
            f"tripped after {drift['ticks_to_trip']} ticks, "
            f"{drift['retrain']['action']} to v{drift['retrain']['candidate_version']} "
            f"(cand MAE {fmt(drift['retrain']['candidate_mae'])} vs "
            f"live {fmt(drift['retrain']['live_mae'])})",
        ],
    ]
    table = TableResult(
        experiment_id="fleet_bench",
        title=f"Fleet lifecycle benchmark ({model_name}, {DATASET}, {settings.scope})",
        headers=["phase", "status", "detail"],
        rows=rows,
        notes=[f"full report: {out_path}"],
        extras={"report": report},
    )
    return table, report
