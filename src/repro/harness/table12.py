"""Table XII: effect of the latent variable size k (PEMS04).

The paper sweeps k in {4, 8, 16, 32}: too small underfits the traffic
dynamics, too large overfits; the middle sizes win.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import make_st_wa
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score_model

TABLE12_SIZES = (4, 8, 16, 32)


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    sizes: Sequence[int] = TABLE12_SIZES,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Train ST-WA for each latent size k."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    results = {}
    for k in sizes:
        model = make_st_wa(
            dataset.num_sensors,
            history=history,
            horizon=horizon,
            seed=settings.seed,
            model_dim=24,
            latent_dim=k,
            skip_dim=48,
            predictor_hidden=196,
        )
        results[k] = train_and_score_model(model, dataset, history, horizon, settings, name="st-wa")
    headers = ["k", "MAE", "MAPE", "RMSE"]
    rows = [
        [str(k), fmt(results[k]["mae"]), fmt(results[k]["mape"]), fmt(results[k]["rmse"])]
        for k in sizes
    ]
    return TableResult(
        experiment_id="table12",
        title=f"Effect of latent size k, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: k=16 best; k=4 underfits, k=32 overfits."],
        extras={"results": {k: results[k]["mae"] for k in sizes}},
    )
