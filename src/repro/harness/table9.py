"""Table IX: effect of window sizes and stacking depth (PEMS04).

The paper sweeps the per-layer window sizes: three 3-layer stacks, two
2-layer stacks, and the degenerate single layer with S = H = 12.  Finding:
3-layer variants are nearly identical (insensitive to the exact split);
the single layer is clearly the worst.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core import make_st_wa
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score_model

TABLE9_CONFIGS: Tuple[Tuple[int, ...], ...] = (
    (3, 2, 2),
    (2, 3, 2),
    (2, 2, 3),
    (4, 3),
    (6, 2),
    (12,),
)


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    configurations: Sequence[Tuple[int, ...]] = TABLE9_CONFIGS,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Train ST-WA with each window-size stack."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    labels = ["S=" + ",".join(map(str, sizes)) for sizes in configurations]
    results = {}
    for sizes, label in zip(configurations, labels):
        model = make_st_wa(
            dataset.num_sensors,
            history=history,
            horizon=horizon,
            window_sizes=sizes,
            seed=settings.seed,
            model_dim=24,
            latent_dim=12,
            skip_dim=48,
            predictor_hidden=196,
        )
        results[label] = train_and_score_model(model, dataset, history, horizon, settings, name="st-wa")
    headers = ["Metric", *labels]
    rows = [
        [metric.upper(), *[fmt(results[label][metric]) for label in labels]]
        for metric in ("mae", "mape", "rmse")
    ]
    return TableResult(
        experiment_id="table9",
        title=f"Effect of window sizes, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: 3-layer variants within noise of each other; single layer (S=12) worst."],
        extras={"results": {label: results[label]["mae"] for label in labels}},
    )
