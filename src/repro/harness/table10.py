"""Table X: effect of the KL regularization term (PEMS04).

The paper trains ST-WA with and without the KL term of Eq. 20; removing it
costs a clear amount of accuracy.
"""

from __future__ import annotations

from typing import Optional

from ..core import make_st_wa
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score_model


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """ST-WA with the regularizer vs. with kl_weight forced to zero."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    results = {}
    for label, kl_weight in (("With", 0.1), ("Without", 0.0)):
        model = make_st_wa(
            dataset.num_sensors,
            history=history,
            horizon=horizon,
            seed=settings.seed,
            model_dim=24,
            latent_dim=12,
            skip_dim=48,
            predictor_hidden=196,
        )
        run_settings = settings
        # the trainer owns the loss; route the ablation through its kl weight
        from ..data import WindowSpec
        from ..training import Trainer, TrainerConfig

        config = TrainerConfig(
            lr=settings.lr,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            patience=settings.patience,
            max_batches_per_epoch=settings.max_batches,
            eval_batches=settings.eval_batches,
            seed=settings.seed,
            kl_weight=kl_weight,
        )
        trainer = Trainer(model, dataset, WindowSpec(history, horizon), config)
        trainer.fit()
        results[label] = trainer.evaluate("test", max_batches=settings.eval_batches)
    headers = ["Metric", "With", "Without"]
    rows = [
        [metric.upper(), fmt(results["With"][metric]), fmt(results["Without"][metric])]
        for metric in ("mae", "mape", "rmse")
    ]
    return TableResult(
        experiment_id="table10",
        title=f"Effect of the regularization term, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: removing the KL regularizer loses accuracy (19.06 -> 19.23 MAE)."],
        extras={"with_mae": results["With"]["mae"], "without_mae": results["Without"]["mae"]},
    )
