"""Parallel-training benchmark: serial equivalence + speedup vs workers.

``python -m repro.harness parallel-bench [--fast]`` runs two gates against
the data-parallel engine (:mod:`repro.parallel`) and writes
``<out>/parallel_bench.json``:

* **Equivalence** — a deterministic model (``st-wa-det``: the full ST-WA
  architecture with deterministic latents) is trained serially and with
  ``n_workers=2`` from the same seed for several epochs; the loss and
  validation trajectories must agree within ``EQUIVALENCE_RTOL`` relative
  tolerance (in practice they agree to ~1e-16: the parallel gradient is the
  same weighted mean serial training computes, merely re-associated).
  This gate is unconditional — it holds on any machine.
* **Speedup** — wall-clock seconds-per-warm-epoch serial vs parallel at
  each worker count.  This gate needs hardware: it is enforced only when
  the host exposes at least two CPU cores to this process
  (``len(os.sched_getaffinity(0))``); on a single-core host the measured
  speedup is still recorded, with ``enforced: false``, because no process
  placement can beat serial on one core.

The exit code is nonzero if the equivalence check fails, or if the speedup
gate is enforced and the best measured speedup falls below ``--min-speedup``
(default 1.3x at 2 workers).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BuildSpec, build_from_spec
from ..data import WindowSpec
from ..exec import ExecutorSpec
from ..training import Trainer, TrainerConfig, TrainingHistory
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset

HISTORY = 12
HORIZON = 12
DATASET = "PEMS08"  # smallest simulated network: the bench is about the loop
EQUIVALENCE_MODEL = "st-wa-det"  # deterministic latents: exact parallel math
EQUIVALENCE_RTOL = 1e-6
EQUIVALENCE_EPOCHS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _train(
    model_name: str,
    dataset,
    settings: RunSettings,
    *,
    n_workers: int,
    epochs: int,
    batch_size: int,
    prefetch: bool = True,
) -> Tuple[TrainingHistory, float]:
    spec = BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, seed=settings.seed)
    model = build_from_spec(model_name, spec)
    executor = (
        ExecutorSpec.parallel(n_workers=n_workers, prefetch=prefetch)
        if n_workers >= 2
        else ExecutorSpec.serial()
    )
    config = TrainerConfig(
        lr=settings.lr,
        epochs=epochs,
        batch_size=batch_size,
        patience=10_000,  # fixed-length runs: early stopping would desync timing
        max_batches_per_epoch=settings.max_batches,
        eval_batches=settings.eval_batches,
        seed=settings.seed,
        executor=executor,
    )
    trainer = Trainer(model, dataset, WindowSpec(HISTORY, HORIZON), config)
    start = time.perf_counter()
    history = trainer.fit()
    return history, time.perf_counter() - start


def _max_rel_diff(a: Sequence[float], b: Sequence[float]) -> float:
    left = np.asarray(a, dtype=np.float64)
    right = np.asarray(b, dtype=np.float64)
    if left.shape != right.shape:
        return float("inf")
    scale = np.maximum(np.abs(left), 1e-12)
    return float(np.max(np.abs(left - right) / scale)) if left.size else float("inf")


def _equivalence_check(dataset, settings: RunSettings) -> Dict[str, object]:
    """Serial vs n_workers=2 loss trajectories on a deterministic model."""
    serial, _ = _train(
        EQUIVALENCE_MODEL,
        dataset,
        settings,
        n_workers=0,
        epochs=EQUIVALENCE_EPOCHS,
        batch_size=settings.batch_size,
    )
    parallel, _ = _train(
        EQUIVALENCE_MODEL,
        dataset,
        settings,
        n_workers=2,
        epochs=EQUIVALENCE_EPOCHS,
        batch_size=settings.batch_size,
    )
    loss_diff = _max_rel_diff(serial.train_loss, parallel.train_loss)
    val_diff = _max_rel_diff(serial.val_mae, parallel.val_mae)
    passed = loss_diff <= EQUIVALENCE_RTOL and val_diff <= EQUIVALENCE_RTOL
    return {
        "model": EQUIVALENCE_MODEL,
        "epochs": EQUIVALENCE_EPOCHS,
        "rtol": EQUIVALENCE_RTOL,
        "serial_train_loss": [float(v) for v in serial.train_loss],
        "parallel_train_loss": [float(v) for v in parallel.train_loss],
        "serial_val_mae": [float(v) for v in serial.val_mae],
        "parallel_val_mae": [float(v) for v in parallel.val_mae],
        "max_rel_diff_train_loss": loss_diff,
        "max_rel_diff_val_mae": val_diff,
        "passed": passed,
    }


def run(
    settings: Optional[RunSettings] = None,
    out_dir: Path = Path("results"),
    *,
    fast: bool = False,
    model_name: str = "st-wa",
    worker_counts: Optional[Sequence[int]] = None,
    min_speedup: float = 1.3,
) -> Tuple[TableResult, Dict]:
    """Run the equivalence and speedup gates; write ``parallel_bench.json``."""
    settings = settings or RunSettings.smoke()
    if fast:
        settings = settings.with_overrides(epochs=3, max_batches=4, eval_batches=2)
    counts = list(worker_counts) if worker_counts else ([2] if fast else [2, 4])
    cores = _available_cores()
    dataset = get_dataset(DATASET, settings.profile)

    equivalence = _equivalence_check(dataset, settings)

    # speedup: generous batch so each shard amortizes the per-step overhead
    # (weight codec + pipe transfer); warm seconds-per-epoch excludes the
    # first epoch, which pays pool/prefetcher start-up
    bench_epochs = max(3, settings.epochs)
    bench_batch = max(64, settings.batch_size)
    serial_history, serial_wall = _train(
        model_name,
        dataset,
        settings,
        n_workers=0,
        epochs=bench_epochs,
        batch_size=bench_batch,
    )
    serial_epoch = serial_history.seconds_per_epoch_warm
    workers: List[Dict[str, object]] = []
    for count in counts:
        parallel_history, parallel_wall = _train(
            model_name,
            dataset,
            settings,
            n_workers=count,
            epochs=bench_epochs,
            batch_size=bench_batch,
        )
        parallel_epoch = parallel_history.seconds_per_epoch_warm
        workers.append(
            {
                "n_workers": count,
                "seconds_per_epoch_warm": parallel_epoch,
                "wall_seconds": parallel_wall,
                "speedup": serial_epoch / parallel_epoch if parallel_epoch > 0 else 0.0,
            }
        )

    best_speedup = max((w["speedup"] for w in workers), default=0.0)
    enforced = cores >= 2
    speedup_ok = (not enforced) or best_speedup >= min_speedup
    speedup_note = (
        None
        if enforced
        else (
            f"single-core host ({cores} core visible to this process): no "
            "process placement can beat serial here, so the serial-vs-parallel "
            "comparison is recorded but not rendered or enforced"
        )
    )
    report = {
        "host": {"cpu_cores": cores},
        # top-level mirrors for dashboards/jq one-liners: how much hardware
        # the run saw and whether the speedup gate could actually bite
        "cores_detected": cores,
        "speedup_gate_enforced": enforced,
        "model": model_name,
        "scope": settings.scope,
        "fast": fast,
        "bench_epochs": bench_epochs,
        "batch_size": bench_batch,
        "serial": {
            "seconds_per_epoch_warm": serial_epoch,
            "wall_seconds": serial_wall,
        },
        "workers": workers,
        "equivalence": equivalence,
        "speedup_gate": {
            "threshold": min_speedup,
            "enforced": enforced,
            "best_speedup": best_speedup,
            "passed": speedup_ok,
        },
        "all_passed": bool(equivalence["passed"] and speedup_ok),
    }
    if speedup_note is not None:
        report["speedup_note"] = speedup_note

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "parallel_bench.json"
    json_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        [
            "serial",
            fmt(serial_epoch, 3),
            "1.00",
            "-",
        ]
    ]
    for worker in workers:
        rows.append(
            [
                f"{worker['n_workers']} workers",
                fmt(worker["seconds_per_epoch_warm"], 3),
                fmt(worker["speedup"], 2),
                "pass" if worker["speedup"] >= min_speedup else ("-" if not enforced else "FAIL"),
            ]
        )
    notes = [
        f"equivalence ({EQUIVALENCE_MODEL}, {EQUIVALENCE_EPOCHS} epochs): "
        f"max rel diff {equivalence['max_rel_diff_train_loss']:.2e} "
        f"(rtol {EQUIVALENCE_RTOL:.0e}) -> "
        + ("PASS" if equivalence["passed"] else "FAIL"),
        f"report written to {json_path}",
    ]
    # the serial-vs-parallel comparison line only renders when the host could
    # actually parallelize; a single-core measurement would just be noise
    if enforced:
        notes.insert(
            1,
            f"speedup gate >= {min_speedup:.2f}x: "
            f"{'PASS' if speedup_ok else 'FAIL'} (best {best_speedup:.2f}x)",
        )
    else:
        notes.insert(1, speedup_note)
    table = TableResult(
        experiment_id="parallel_bench",
        title=f"Data-parallel training: {model_name}, speedup vs workers",
        headers=["configuration", "s/epoch (warm)", "speedup", "gate"],
        rows=rows,
        notes=notes,
        extras={"report": report},
    )
    return table, report
