"""Assemble EXPERIMENTS.md "measured" sections from saved result files.

Each harness runner saves ``<results_dir>/<experiment_id>.txt``.
:func:`splice_results` replaces the ``<!-- <ID>_MEASURED -->`` markers in
EXPERIMENTS.md with fenced copies of those files, so the record of
paper-vs-measured stays mechanically in sync with the latest run:

    python -m repro.harness.summary results_quick EXPERIMENTS.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Union

PathLike = Union[str, Path]

_MARKER = re.compile(r"<!--\s*(?P<name>[A-Z0-9_]+)_MEASURED\s*-->")

#: marker name -> result file stem
_MARKER_TO_FILE = {
    "TABLE4": "table4",
    "TABLE5": "table5",
    "TABLE6": "table6",
    "TABLE7": "table7",
    "TABLE8": "table8",
    "TABLE9": "table9",
    "TABLE10": "table10",
    "TABLE11": "table11",
    "TABLE12": "table12",
    "TABLE13": "table13",
    "TABLE14": "table14",
    "FIGURE9": "figure9",
    "FIGURE10": "figure10",
    "SCALING": "attention_scaling",
}


def collect_results(results_dir: PathLike) -> Dict[str, str]:
    """Read every ``<experiment>.txt`` in ``results_dir``; stem -> content."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    return {path.stem: path.read_text().rstrip() for path in sorted(results_dir.glob("*.txt"))}


def splice_results(experiments_md: PathLike, results_dir: PathLike) -> int:
    """Replace measured-result markers in ``experiments_md``; returns count.

    Markers whose result file is missing are left in place (so a partial
    run fills what it can).  Re-running replaces previously spliced blocks:
    a spliced block is bracketed by the marker and an ``<!-- /NAME -->``
    end marker.
    """
    path = Path(experiments_md)
    text = path.read_text()
    results = collect_results(results_dir)
    spliced = 0

    for name, stem in _MARKER_TO_FILE.items():
        if stem not in results:
            continue
        block = f"<!-- {name}_MEASURED -->\n```text\n{results[stem]}\n```\n<!-- /{name}_MEASURED -->"
        # replace an existing spliced block, else the bare marker
        existing = re.compile(
            rf"<!-- {name}_MEASURED -->.*?<!-- /{name}_MEASURED -->", re.DOTALL
        )
        if existing.search(text):
            text = existing.sub(block, text)
            spliced += 1
        elif f"<!-- {name}_MEASURED -->" in text:
            text = text.replace(f"<!-- {name}_MEASURED -->", block)
            spliced += 1
    path.write_text(text)
    return spliced


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print("usage: python -m repro.harness.summary <results_dir> <EXPERIMENTS.md>", file=sys.stderr)
        return 2
    count = splice_results(argv[1], argv[0])
    print(f"spliced {count} measured sections from {argv[0]} into {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
