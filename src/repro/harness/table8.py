"""Table VIII: ablation study on PEMS04 (SA / WA-1 / WA / S-WA / ST-WA).

Accuracy plus training time per epoch, memory, and parameter counts.  The
paper's findings to reproduce in shape:

* WA-1 is ~3x faster and ~5x lighter than canonical self-attention (SA);
* stacking (WA) improves accuracy over WA-1;
* S-WA and ST-WA further improve accuracy, ST-WA the best, at moderate
  extra cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..baselines import model_family
from ..training.memory import ModelDims, activation_gb
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

TABLE8_MODELS = ("SA", "WA-1", "WA", "S-WA", "ST-WA")


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    models: Sequence[str] = TABLE8_MODELS,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Ablation grid with accuracy + cost rows, as in the paper."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    results = {model: train_and_score(model, dataset, history, horizon, settings) for model in models}

    headers = ["", *models]
    rows = []
    for metric in ("mae", "mape", "rmse"):
        rows.append([metric.upper(), *[fmt(results[m][metric]) for m in models]])
    rows.append(
        [
            "Memory (GB, analytic)",
            *[
                fmt(
                    activation_gb(
                        model_family(m),
                        ModelDims(num_sensors=dataset.num_sensors, history=history),
                    ),
                    4,
                )
                for m in models
            ],
        ]
    )
    rows.append(["Training (s/epoch)", *[fmt(results[m]["seconds_per_epoch_warm"]) for m in models]])
    rows.append(["# Para", *[str(int(results[m]["parameters"])) for m in models]])
    return TableResult(
        experiment_id="table8",
        title=f"Ablation study on {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "Paper shape: SA worst accuracy and heaviest; WA-1 < WA < S-WA <= ST-WA accuracy;",
            "ST-WA best accuracy at moderate extra runtime.",
        ],
        extras={"results": {m: results[m]["mae"] for m in models}},
    )
