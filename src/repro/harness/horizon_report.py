"""Per-horizon-step accuracy breakdown (companion analysis).

Not a numbered table in this paper, but the standard presentation in the
literature it builds on (DCRNN, GWN report 15/30/60-minute columns): error
grows with the forecast step, and the gap between a strong model and a
weak one widens at longer steps.  This runner trains the requested models
once and reports MAE at 15 / 30 / 60 minutes (steps 3, 6, 12 at 5-minute
resolution).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..baselines import BuildSpec, build_from_spec
from ..data import BatchIterator, SlidingWindowDataset, WindowSpec
from ..tensor import Tensor, no_grad
from ..training import Trainer, TrainerConfig, horizon_breakdown
from .reporting import TableResult, fmt
from .runner import NON_TRAINED, RunSettings, get_dataset

DEFAULT_MODELS = ("Persistence", "GRU", "AGCRN", "ST-WA")
REPORT_STEPS = (3, 6, 12)  # 15 min / 30 min / 60 min


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    models: Sequence[str] = DEFAULT_MODELS,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Train each model and report per-step MAE at 15/30/60 minutes."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    spec = WindowSpec(history, horizon)
    per_model = {}
    for name in models:
        model = build_from_spec(
            name, BuildSpec(dataset=dataset, history=history, horizon=horizon, seed=settings.seed)
        )
        config = TrainerConfig(
            lr=settings.lr,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            patience=settings.patience,
            max_batches_per_epoch=settings.max_batches,
            eval_batches=settings.eval_batches,
            seed=settings.seed,
        )
        trainer = Trainer(model, dataset, spec, config)
        if name.lower() not in NON_TRAINED and model.parameters():
            trainer.fit()
        # collect raw-unit predictions for the breakdown
        windows = SlidingWindowDataset(dataset.test, spec, raw=dataset.test_raw)
        iterator = BatchIterator(windows, batch_size=settings.batch_size, shuffle=False, max_batches=settings.eval_batches)
        predictions, targets = [], []
        model.eval()
        with no_grad():
            for x_batch, y_raw in iterator:
                prediction = model(Tensor(x_batch)).numpy()
                predictions.append(dataset.scaler.inverse_transform(prediction))
                targets.append(y_raw)
        breakdown = horizon_breakdown(np.concatenate(predictions), np.concatenate(targets))
        per_model[name] = breakdown

    headers = ["Model"] + [f"{5 * step} min MAE" for step in REPORT_STEPS]
    rows = [
        [name, *[fmt(per_model[name][step]["mae"]) for step in REPORT_STEPS]]
        for name in models
    ]
    monotone = sum(
        1
        for name in models
        if per_model[name][REPORT_STEPS[-1]]["mae"] >= per_model[name][REPORT_STEPS[0]]["mae"]
    )
    return TableResult(
        experiment_id="horizon_report",
        title=f"Per-step accuracy breakdown, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "Literature convention (DCRNN/GWN): error grows with the forecast step.",
            f"{monotone}/{len(models)} models show 60-min error >= 15-min error in this run.",
        ],
        extras={"per_model": {m: {s: per_model[m][s]["mae"] for s in REPORT_STEPS} for m in models}},
    )
