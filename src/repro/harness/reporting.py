"""Result containers and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, Path]


@dataclass
class TableResult:
    """One reproduced table/figure: id, headers, rows, free-form notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(str(cell)))
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def save(self, directory: PathLike) -> Path:
        """Write the text rendering to ``<directory>/<experiment_id>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.txt"
        path.write_text(self.to_text() + "\n")
        return path


def fmt(value: float, digits: int = 2) -> str:
    """Format a metric value, passing through non-numeric markers."""
    if isinstance(value, str):
        return value
    return f"{value:.{digits}f}"
