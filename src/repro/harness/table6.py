"""Table VI: long-horizon forecasting, H = U = 72, with OOM behaviour.

The paper compares the top-3 baselines and ST-WA at H=U=72 on all four
datasets; STFGNN and EnhanceNet run **out of memory** on PEMS07 (N=883).
Accuracy is measured on the simulated datasets; the OOM determination uses
the analytic memory model of :mod:`repro.training.memory` evaluated at the
*paper-scale* sensor counts against the V100's 16 GB budget (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..baselines import model_family
from ..data.datasets import dataset_spec
from ..training.memory import ModelDims, V100_BUDGET_GB, activation_gb
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

TABLE6_MODELS = ("STFGNN", "EnhanceNet", "AGCRN", "ST-WA")
TABLE6_DATASETS = ("PEMS03", "PEMS04", "PEMS07", "PEMS08")


def paper_scale_memory_gb(model: str, dataset_name: str, history: int, batch: int = 64) -> float:
    """Estimated training-step activation memory at the paper's N (GB)."""
    dims = ModelDims(
        batch=batch,
        num_sensors=dataset_spec(dataset_name).paper_sensors,
        history=history,
        horizon=history,
    )
    return activation_gb(model_family(model), dims)


def run(
    settings: Optional[RunSettings] = None,
    datasets: Sequence[str] = TABLE6_DATASETS,
    models: Sequence[str] = TABLE6_MODELS,
    history: int = 72,
    horizon: int = 72,
    budget_gb: float = V100_BUDGET_GB,
) -> TableResult:
    """H=U=72 accuracy with analytic OOM marking, as in the paper."""
    settings = settings or RunSettings.smoke()
    headers = ["Dataset", "Metric", *models]
    rows = []
    oom_pairs = []
    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, settings.profile)
        results = {}
        for model in models:
            memory_gb = paper_scale_memory_gb(model, dataset_name, history)
            if memory_gb > budget_gb:
                results[model] = None  # OOM at paper scale
                oom_pairs.append(f"{model}@{dataset_name} ({memory_gb:.1f} GB)")
            else:
                results[model] = train_and_score(model, dataset, history, horizon, settings)
        for metric in ("mae", "mape", "rmse"):
            row = [dataset_name if metric == "mae" else "", metric.upper()]
            for model in models:
                row.append("OOM" if results[model] is None else fmt(results[model][metric]))
            rows.append(row)
    return TableResult(
        experiment_id="table6",
        title=f"Overall accuracy, H={history}, U={horizon} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            f"OOM = analytic activation memory at paper-scale N exceeds {budget_gb:.0f} GB "
            "(paper: STFGNN and EnhanceNet OOM on PEMS07).",
            "OOM pairs this run: " + (", ".join(oom_pairs) if oom_pairs else "none"),
        ],
        extras={"oom_pairs": oom_pairs},
    )
