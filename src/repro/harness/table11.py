"""Table XI: stochastic vs deterministic latent variables (PEMS04).

The deterministic variant replaces z and z_t with plain vectors (their
means) and drops the KL term — the paper shows the stochastic version wins.
"""

from __future__ import annotations

from typing import Optional

from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """ST-WA vs its deterministic counterpart."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    stochastic = train_and_score("ST-WA", dataset, history, horizon, settings)
    deterministic = train_and_score("ST-WA-det", dataset, history, horizon, settings)
    headers = ["", "MAE", "MAPE", "RMSE"]
    rows = [
        ["ST-WA", fmt(stochastic["mae"]), fmt(stochastic["mape"]), fmt(stochastic["rmse"])],
        [
            "Deterministic ST-WA",
            fmt(deterministic["mae"]),
            fmt(deterministic["mape"]),
            fmt(deterministic["rmse"]),
        ],
    ]
    return TableResult(
        experiment_id="table11",
        title=f"Effect of stochastic latent variables, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: stochastic beats deterministic (19.06 vs 19.32 MAE)."],
        extras={"stochastic_mae": stochastic["mae"], "deterministic_mae": deterministic["mae"]},
    )
