"""Table XIII: effect of the number of proxies p (PEMS04, H=U=72).

More proxies improve accuracy but cost training time and parameters —
the paper's p in {1, 2, 3} sweep at the long-horizon setting.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import make_st_wa
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score_model

TABLE13_PROXIES = (1, 2, 3)


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    proxies: Sequence[int] = TABLE13_PROXIES,
    history: int = 72,
    horizon: int = 72,
) -> TableResult:
    """Train ST-WA for each proxy count at H=U=72."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    results = {}
    for p in proxies:
        model = make_st_wa(
            dataset.num_sensors,
            history=history,
            horizon=horizon,
            seed=settings.seed,
            num_proxies=p,
            model_dim=24,
            latent_dim=12,
            skip_dim=48,
            predictor_hidden=196,
        )
        results[p] = train_and_score_model(model, dataset, history, horizon, settings, name="st-wa")
    headers = ["p", "MAE", "MAPE", "RMSE", "Training (s/epoch)", "# Para"]
    rows = [
        [
            str(p),
            fmt(results[p]["mae"]),
            fmt(results[p]["mape"]),
            fmt(results[p]["rmse"]),
            fmt(results[p]["seconds_per_epoch_warm"]),
            str(int(results[p]["parameters"])),
        ]
        for p in proxies
    ]
    return TableResult(
        experiment_id="table13",
        title=f"Effect of number of proxies, {dataset_name}, H=U={history} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: accuracy improves with p while time and parameters grow."],
        extras={"results": {p: results[p]["mae"] for p in proxies}},
    )
