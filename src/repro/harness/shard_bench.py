"""Sensor-sharding gates: serial equivalence, serve identity, city scale.

``python -m repro.harness shard-bench [--fast]`` runs four gates against
the sensor-sharded execution path (:class:`repro.exec.ShardedExecutor`) and
writes ``<out>/shard_bench.json``:

* **Training equivalence** — serial vs ``ExecutorSpec.sharded(n_workers=2)``
  loss trajectories on both ``st-wa-det`` (batch-axis fallback: the model
  mixes across sensors, so the executor degrades to data-parallel
  semantics) and ``simst`` (true sensor-axis sharding), each within
  ``EQUIVALENCE_RTOL``.  Unconditional: the all-reduce identity holds on
  any machine.
* **Serve identity** — a SimST artifact served through
  :class:`repro.serve.ServingEngine` twice, default inference executor vs
  ``ServeConfig(executor=ExecutorSpec.sharded(...))``; forecasts must be
  identical within ``SERVE_ATOL`` (in practice bit-equal: per-sensor
  forwards are slice-invariant).
* **City scale** — SimST at ``city_sensors`` (default N=10k, synthetic
  ring neighbors, no dense adjacency anywhere): one serial training step's
  tracemalloc peak must stay within ``envelope_slack`` × the
  :class:`repro.training.CapacityPlanner` prediction (float64 bytes), the
  sharded executor must train at that N, and its fanned-out forecast must
  equal the in-process forward.
* **Speedup** — seconds per city-scale training step, serial vs sharded.
  Enforced only on multi-core hosts (``speedup_gate_enforced`` /
  ``cores_detected`` mirror ``parallel_bench``'s contract); a single core
  cannot beat serial by process placement.

Exit code is nonzero unless every enforced gate passes (``all_passed``).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BuildSpec, build_from_spec
from ..data import WindowSpec
from ..exec import ExecutorSpec, make_executor
from ..training import Trainer, TrainerConfig, TrainingHistory
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset

HISTORY = 12
HORIZON = 12
DATASET = "PEMS08"
EQUIVALENCE_MODELS = ("st-wa-det", "simst")
EQUIVALENCE_RTOL = 1e-6
EQUIVALENCE_EPOCHS = 3
SERVE_ATOL = 1e-9
CITY_SENSORS = 10_000
ENVELOPE_SLACK = 2.0  # measured N=10k peak runs ~1.4x the analytic model


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _train(
    model_name: str,
    dataset,
    settings: RunSettings,
    *,
    sharded_workers: int,
    epochs: int,
) -> TrainingHistory:
    spec = BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, seed=settings.seed)
    model = build_from_spec(model_name, spec)
    executor = (
        ExecutorSpec.sharded(n_workers=sharded_workers)
        if sharded_workers >= 2
        else ExecutorSpec.serial()
    )
    config = TrainerConfig(
        lr=settings.lr,
        epochs=epochs,
        batch_size=settings.batch_size,
        patience=10_000,
        max_batches_per_epoch=settings.max_batches,
        eval_batches=settings.eval_batches,
        seed=settings.seed,
        executor=executor,
    )
    return Trainer(model, dataset, WindowSpec(HISTORY, HORIZON), config).fit()


def _max_rel_diff(a: Sequence[float], b: Sequence[float]) -> float:
    left = np.asarray(a, dtype=np.float64)
    right = np.asarray(b, dtype=np.float64)
    if left.shape != right.shape:
        return float("inf")
    scale = np.maximum(np.abs(left), 1e-12)
    return float(np.max(np.abs(left - right) / scale)) if left.size else float("inf")


def _equivalence_check(
    dataset, settings: RunSettings, n_workers: int
) -> List[Dict[str, object]]:
    """Serial vs sharded loss trajectories, both shard axes."""
    checks: List[Dict[str, object]] = []
    for model_name in EQUIVALENCE_MODELS:
        serial = _train(
            model_name, dataset, settings, sharded_workers=0, epochs=EQUIVALENCE_EPOCHS
        )
        sharded = _train(
            model_name,
            dataset,
            settings,
            sharded_workers=n_workers,
            epochs=EQUIVALENCE_EPOCHS,
        )
        loss_diff = _max_rel_diff(serial.train_loss, sharded.train_loss)
        val_diff = _max_rel_diff(serial.val_mae, sharded.val_mae)
        checks.append(
            {
                "model": model_name,
                "shard_axis": "sensor" if model_name == "simst" else "batch",
                "epochs": EQUIVALENCE_EPOCHS,
                "rtol": EQUIVALENCE_RTOL,
                "max_rel_diff_train_loss": loss_diff,
                "max_rel_diff_val_mae": val_diff,
                "serial_train_loss": [float(v) for v in serial.train_loss],
                "sharded_train_loss": [float(v) for v in sharded.train_loss],
                "passed": loss_diff <= EQUIVALENCE_RTOL and val_diff <= EQUIVALENCE_RTOL,
            }
        )
    return checks


def _serve_identity_check(dataset, settings: RunSettings, n_workers: int) -> Dict[str, object]:
    """ServingEngine forecasts: default inference executor vs sharded fanout."""
    from ..serve import ForecasterArtifact, ServeConfig, ServingEngine

    spec = BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, seed=settings.seed)
    model = build_from_spec("simst", spec)
    artifact = ForecasterArtifact(
        model,
        scaler=dataset.scaler,
        model_name="simst",
        history=HISTORY,
        horizon=HORIZON,
    )
    window = dataset.train_raw[:, -HISTORY:, :]  # raw is (N, T, F) -> (N, H, F)
    with ServingEngine(artifact, num_sensors=dataset.num_sensors) as engine:
        baseline = engine.forecast(window)
    config = ServeConfig(executor=ExecutorSpec.sharded(n_workers=n_workers))
    with ServingEngine(artifact, num_sensors=dataset.num_sensors, config=config) as engine:
        sharded = engine.forecast(window)
        executor_kind = engine.snapshot().get("executor_kind")
    max_diff = float(np.max(np.abs(baseline.forecast - sharded.forecast)))
    return {
        "model": "simst",
        "n_workers": n_workers,
        "atol": SERVE_ATOL,
        "executor_kind": executor_kind,
        "max_abs_diff": max_diff,
        "passed": max_diff <= SERVE_ATOL,
    }


def _build_city_model(num_sensors: int, seed: int):
    """SimST at city scale: synthetic ring neighbors, no dense adjacency."""
    from ..core import SimSTForecaster

    k = 8
    idx = (np.arange(num_sensors)[:, None] + np.arange(1, k + 1)[None, :]) % num_sensors
    wt = np.full((num_sensors, k), 1.0 / k)
    return SimSTForecaster(
        num_sensors,
        history=HISTORY,
        horizon=HORIZON,
        hidden=64,
        embedding_dim=16,
        predictor_hidden=128,
        neighbors=(idx.astype(np.int64), wt),
        seed=seed,
    )


def _city_scale_check(
    num_sensors: int,
    n_workers: int,
    seed: int,
    *,
    envelope_slack: float,
    steps: int,
) -> Dict[str, object]:
    """Train + serve SimST at N sensors inside the planner's envelope."""
    from ..exec.base import eval_forward
    from ..training.memory import CapacityPlanner, ModelDims

    rng = np.random.default_rng(seed)
    batch = 4
    x = rng.standard_normal((batch, num_sensors, HISTORY, 1))
    y = rng.standard_normal((batch, num_sensors, HORIZON, 1))

    planner = CapacityPlanner(
        dims=ModelDims(batch=batch, history=HISTORY, horizon=HORIZON, hidden=64, proxies=8),
        bytes_per_element=8,  # this substrate trains in float64
    )
    predicted_gb = planner.family_gb("per_sensor", num_sensors)
    envelope_gb = predicted_gb * envelope_slack

    model = _build_city_model(num_sensors, seed)
    serial_seconds: List[float] = []
    with make_executor(model, ExecutorSpec.serial()) as executor:
        tracemalloc.start()
        for _ in range(max(1, steps)):
            start = time.perf_counter()
            executor.train_step(None, (x, y))
            serial_seconds.append(time.perf_counter() - start)
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        expected = eval_forward(model, x[:1])
    measured_gb = peak_bytes / 1024**3

    sharded_model = _build_city_model(num_sensors, seed)
    sharded_seconds: List[float] = []
    with make_executor(sharded_model, ExecutorSpec.sharded(n_workers=n_workers)) as executor:
        shard_axis = executor.shard_axis
        for _ in range(max(1, steps)):
            start = time.perf_counter()
            executor.train_step(None, (x, y))
            sharded_seconds.append(time.perf_counter() - start)
        # reset to the serial model's initial weights so the fanned-out
        # forecast is comparable with the in-process one
        sharded_model.load_state_dict(model.state_dict())
        forecast = executor.predict(None, x[:1])
    serve_diff = float(np.max(np.abs(forecast - expected)))

    return {
        "num_sensors": int(num_sensors),
        "batch": batch,
        "n_workers": n_workers,
        "shard_axis": shard_axis,
        "steps": int(max(1, steps)),
        "predicted_gb": predicted_gb,
        "envelope_slack": envelope_slack,
        "envelope_gb": envelope_gb,
        "measured_peak_gb": measured_gb,
        "within_envelope": measured_gb <= envelope_gb,
        "serial_step_seconds": serial_seconds,
        "sharded_step_seconds": sharded_seconds,
        "serve_max_abs_diff": serve_diff,
        "serve_identical": serve_diff <= SERVE_ATOL,
        "passed": measured_gb <= envelope_gb and serve_diff <= SERVE_ATOL,
    }


def run(
    settings: Optional[RunSettings] = None,
    out_dir: Path = Path("results"),
    *,
    fast: bool = False,
    model_name: str = "simst",
    n_workers: int = 2,
    city_sensors: int = CITY_SENSORS,
    city_steps: int = 3,
    envelope_slack: float = ENVELOPE_SLACK,
    min_speedup: float = 1.1,
) -> Tuple[TableResult, Dict]:
    """Run the sharding gates; write ``shard_bench.json``."""
    settings = settings or RunSettings.smoke()
    if fast:
        settings = settings.with_overrides(epochs=3, max_batches=4, eval_batches=2)
        city_steps = min(city_steps, 2)
    cores = _available_cores()
    dataset = get_dataset(DATASET, settings.profile)

    equivalence = _equivalence_check(dataset, settings, n_workers)
    serve_identity = _serve_identity_check(dataset, settings, n_workers)
    city = _city_scale_check(
        city_sensors,
        n_workers,
        settings.seed,
        envelope_slack=envelope_slack,
        steps=city_steps,
    )

    # speedup from the city-scale step timings (skip the first sharded step:
    # it pays worker-pool warm-up); at city N the per-step compute dwarfs
    # the weight/shard pipe transport, which is where sensor sharding wins
    serial_step = float(np.mean(city["serial_step_seconds"]))
    warm_sharded = city["sharded_step_seconds"][1:] or city["sharded_step_seconds"]
    sharded_step = float(np.mean(warm_sharded))
    speedup = serial_step / sharded_step if sharded_step > 0 else 0.0
    enforced = cores >= 2
    speedup_ok = (not enforced) or speedup >= min_speedup

    equivalence_ok = all(check["passed"] for check in equivalence)
    report = {
        "host": {"cpu_cores": cores},
        "cores_detected": cores,
        "speedup_gate_enforced": enforced,
        "model": model_name,
        "scope": settings.scope,
        "fast": fast,
        "n_workers": n_workers,
        "equivalence": equivalence,
        "serve_identity": serve_identity,
        "city_scale": city,
        "speedup_gate": {
            "threshold": min_speedup,
            "enforced": enforced,
            "serial_step_seconds": serial_step,
            "sharded_step_seconds": sharded_step,
            "speedup": speedup,
            "passed": speedup_ok,
        },
        "all_passed": bool(
            equivalence_ok
            and serve_identity["passed"]
            and city["passed"]
            and speedup_ok
        ),
    }
    if not enforced:
        report["speedup_note"] = (
            f"single-core host ({cores} core visible to this process): the "
            "serial-vs-sharded step comparison is recorded but not enforced"
        )

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "shard_bench.json"
    json_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = []
    for check in equivalence:
        rows.append(
            [
                f"train equivalence ({check['model']}, {check['shard_axis']})",
                f"rel diff {check['max_rel_diff_train_loss']:.2e}",
                f"rtol {EQUIVALENCE_RTOL:.0e}",
                "pass" if check["passed"] else "FAIL",
            ]
        )
    rows.append(
        [
            "serve identity (ServingEngine)",
            f"abs diff {serve_identity['max_abs_diff']:.2e}",
            f"atol {SERVE_ATOL:.0e}",
            "pass" if serve_identity["passed"] else "FAIL",
        ]
    )
    rows.append(
        [
            f"city memory (N={city['num_sensors']})",
            f"{fmt(city['measured_peak_gb'], 3)} GB peak",
            f"envelope {fmt(city['envelope_gb'], 3)} GB",
            "pass" if city["within_envelope"] else "FAIL",
        ]
    )
    rows.append(
        [
            f"city serve (N={city['num_sensors']}, {city['shard_axis']}-sharded)",
            f"abs diff {city['serve_max_abs_diff']:.2e}",
            f"atol {SERVE_ATOL:.0e}",
            "pass" if city["serve_identical"] else "FAIL",
        ]
    )
    rows.append(
        [
            f"speedup ({n_workers} shard workers)",
            f"{fmt(speedup, 2)}x",
            f">= {min_speedup:.2f}x" if enforced else "unenforced",
            ("pass" if speedup_ok else "FAIL") if enforced else "-",
        ]
    )
    notes = [f"report written to {json_path}"]
    if not enforced:
        notes.insert(0, report["speedup_note"])
    table = TableResult(
        experiment_id="shard_bench",
        title=f"Sensor sharding: serial equivalence + city scale (N={city_sensors})",
        headers=["gate", "measured", "bound", "verdict"],
        rows=rows,
        notes=notes,
        extras={"report": report},
    )
    return table, report
