"""Shared experiment executor: build -> train -> score one model.

Scopes trade fidelity for wall time (all on the simulated datasets):

* ``smoke``    — a few epochs; CI/benchmark default.  Validates the full
  pipeline and preserves gross ordering, not fine ordering.
* ``quick``    — minutes per model; resolves most of the paper's orderings.
* ``standard`` — the most faithful setting feasible on CPU.

Select via the ``REPRO_SCOPE`` environment variable or pass
:class:`RunSettings` explicitly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..baselines import build_model
from ..data import TrafficDataset, WindowSpec, load_dataset
from ..training import Trainer, TrainerConfig

#: models that are fit analytically (or not at all) rather than by SGD
NON_TRAINED = {"persistence", "windowmean", "var"}


@dataclass(frozen=True)
class RunSettings:
    """Wall-time scoped training settings for harness runs."""

    scope: str = "smoke"
    profile: str = "fast"
    epochs: int = 2
    max_batches: int = 5
    eval_batches: Optional[int] = 4
    batch_size: int = 32
    lr: float = 8e-3
    patience: int = 50
    seed: int = 0

    @classmethod
    def smoke(cls) -> "RunSettings":
        return cls()

    @classmethod
    def quick(cls) -> "RunSettings":
        return cls(scope="quick", epochs=25, max_batches=20, eval_batches=8, lr=6e-3, patience=25)

    @classmethod
    def standard(cls) -> "RunSettings":
        return cls(scope="standard", epochs=40, max_batches=30, eval_batches=None, lr=6e-3, patience=10)

    @classmethod
    def from_env(cls, default: str = "smoke") -> "RunSettings":
        """Pick a scope from ``REPRO_SCOPE`` (smoke | quick | standard)."""
        scope = os.environ.get("REPRO_SCOPE", default).lower()
        factories = {"smoke": cls.smoke, "quick": cls.quick, "standard": cls.standard}
        if scope not in factories:
            raise KeyError(f"REPRO_SCOPE must be one of {sorted(factories)}, got {scope!r}")
        return factories[scope]()

    def with_overrides(self, **kwargs) -> "RunSettings":
        return replace(self, **kwargs)


_DATASET_CACHE: Dict[tuple, TrafficDataset] = {}


def get_dataset(name: str, profile: str) -> TrafficDataset:
    """Load (and cache) a simulated dataset — the harness reuses them heavily."""
    key = (name.upper(), profile)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, profile=profile)
    return _DATASET_CACHE[key]


def train_and_score(
    model_name: str,
    dataset: TrafficDataset,
    history: int,
    horizon: int,
    settings: RunSettings,
) -> Dict[str, float]:
    """Train ``model_name`` on ``dataset`` and return test metrics + costs.

    Returns keys: ``mae``, ``rmse``, ``mape``, ``seconds_per_epoch``,
    ``train_seconds``, ``parameters``, ``epochs_run``.
    """
    model = build_model(model_name, dataset, history, horizon, seed=settings.seed)
    return train_and_score_model(model, dataset, history, horizon, settings, name=model_name)


def train_and_score_model(
    model,
    dataset: TrafficDataset,
    history: int,
    horizon: int,
    settings: RunSettings,
    name: str = "",
) -> Dict[str, float]:
    """Like :func:`train_and_score` for an already-instantiated model.

    Used by the ablation tables, which sweep :class:`repro.core.STWAConfig`
    fields the registry does not expose.
    """
    spec = WindowSpec(history, horizon)
    config = TrainerConfig(
        lr=settings.lr,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        patience=settings.patience,
        max_batches_per_epoch=settings.max_batches,
        eval_batches=settings.eval_batches,
        seed=settings.seed,
    )
    trainer = Trainer(model, dataset, spec, config)
    start = time.perf_counter()
    if name.lower() in NON_TRAINED or not model.parameters():
        seconds_per_epoch = 0.0
        epochs_run = 0
    else:
        history_record = trainer.fit()
        seconds_per_epoch = history_record.seconds_per_epoch
        epochs_run = history_record.epochs_run
    train_seconds = time.perf_counter() - start
    metrics = trainer.evaluate("test", max_batches=settings.eval_batches)
    metrics["seconds_per_epoch"] = seconds_per_epoch
    metrics["train_seconds"] = train_seconds
    metrics["parameters"] = float(model.num_parameters())
    metrics["epochs_run"] = float(epochs_run)
    return metrics
