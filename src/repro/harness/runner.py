"""Shared experiment executor: build -> train -> score one model.

Scopes trade fidelity for wall time (all on the simulated datasets):

* ``smoke``    — a few epochs; CI/benchmark default.  Validates the full
  pipeline and preserves gross ordering, not fine ordering.
* ``quick``    — minutes per model; resolves most of the paper's orderings.
* ``standard`` — the most faithful setting feasible on CPU.

Construct settings explicitly with :meth:`RunSettings.from_scope` (or the
``smoke()`` / ``quick()`` / ``standard()`` factories).  The historical
``REPRO_SCOPE`` environment-variable side channel is gone:
:meth:`RunSettings.from_env` now raises ``RuntimeError`` (it warned for one
release).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..baselines import BuildSpec, build_from_spec
from ..data import TrafficDataset, WindowSpec, load_dataset
from ..obs import MetricsSink
from ..training import Trainer, TrainerConfig

#: models that are fit analytically (or not at all) rather than by SGD
NON_TRAINED = {"persistence", "windowmean", "var"}


@dataclass(frozen=True)
class RunSettings:
    """Wall-time scoped training settings for harness runs.

    ``sink`` (optional) is a :class:`repro.obs.MetricsSink` that every table
    harness threads into the :class:`Trainer` so runs leave a structured
    JSONL runtime trace.
    """

    scope: str = "smoke"
    profile: str = "fast"
    epochs: int = 2
    max_batches: int = 5
    eval_batches: Optional[int] = 4
    batch_size: int = 32
    lr: float = 8e-3
    patience: int = 50
    seed: int = 0
    sink: Optional[MetricsSink] = field(default=None, compare=False)

    @classmethod
    def smoke(cls) -> "RunSettings":
        return cls()

    @classmethod
    def quick(cls) -> "RunSettings":
        return cls(scope="quick", epochs=25, max_batches=20, eval_batches=8, lr=6e-3, patience=25)

    @classmethod
    def standard(cls) -> "RunSettings":
        return cls(scope="standard", epochs=40, max_batches=30, eval_batches=None, lr=6e-3, patience=10)

    @classmethod
    def from_scope(cls, name: str) -> "RunSettings":
        """Explicit constructor: ``name`` is smoke | quick | standard."""
        factories = {"smoke": cls.smoke, "quick": cls.quick, "standard": cls.standard}
        key = name.lower()
        if key not in factories:
            raise KeyError(f"scope must be one of {sorted(factories)}, got {name!r}")
        return factories[key]()

    @classmethod
    def from_env(cls, default: str = "smoke") -> "RunSettings":
        """Removed: the ``REPRO_SCOPE`` env side channel no longer exists.

        It made scope selection invisible at call sites; after a release of
        :class:`DeprecationWarning` it now raises.  Construct settings
        explicitly with :meth:`from_scope` (or ``smoke()`` / ``quick()`` /
        ``standard()``) and pass them down.
        """
        raise RuntimeError(
            "RunSettings.from_env()/REPRO_SCOPE has been removed; construct "
            "settings explicitly with RunSettings.from_scope(name)"
        )

    def with_overrides(self, **kwargs) -> "RunSettings":
        return replace(self, **kwargs)


_DATASET_CACHE: Dict[tuple, TrafficDataset] = {}


def get_dataset(name: str, profile: str) -> TrafficDataset:
    """Load (and cache) a simulated dataset — the harness reuses them heavily."""
    key = (name.upper(), profile)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, profile=profile)
    return _DATASET_CACHE[key]


def train_and_score(
    model_name: str,
    dataset: TrafficDataset,
    history: int,
    horizon: int,
    settings: RunSettings,
) -> Dict[str, float]:
    """Train ``model_name`` on ``dataset`` and return test metrics + costs.

    Returns keys: ``mae``, ``rmse``, ``mape``, ``seconds_per_epoch``,
    ``seconds_per_epoch_warm``, ``train_seconds``, ``parameters``,
    ``epochs_run``.  The warm figure skips the JIT-/cache-cold first epoch
    and is what the runtime tables report.
    """
    spec = BuildSpec(dataset=dataset, history=history, horizon=horizon, seed=settings.seed)
    model = build_from_spec(model_name, spec)
    return train_and_score_model(model, dataset, history, horizon, settings, name=model_name)


def train_and_score_model(
    model,
    dataset: TrafficDataset,
    history: int,
    horizon: int,
    settings: RunSettings,
    name: str = "",
) -> Dict[str, float]:
    """Like :func:`train_and_score` for an already-instantiated model.

    Used by the ablation tables, which sweep :class:`repro.core.STWAConfig`
    fields the registry does not expose.
    """
    spec = WindowSpec(history, horizon)
    config = TrainerConfig(
        lr=settings.lr,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        patience=settings.patience,
        max_batches_per_epoch=settings.max_batches,
        eval_batches=settings.eval_batches,
        seed=settings.seed,
        sink=settings.sink,
    )
    trainer = Trainer(model, dataset, spec, config)
    start = time.perf_counter()
    if name.lower() in NON_TRAINED or not model.parameters():
        seconds_per_epoch = 0.0
        seconds_per_epoch_warm = 0.0
        epochs_run = 0
    else:
        history_record = trainer.fit()
        seconds_per_epoch = history_record.seconds_per_epoch
        seconds_per_epoch_warm = history_record.seconds_per_epoch_warm
        epochs_run = history_record.epochs_run
    train_seconds = time.perf_counter() - start
    metrics = trainer.evaluate("test", max_batches=settings.eval_batches)
    metrics["seconds_per_epoch"] = seconds_per_epoch
    metrics["seconds_per_epoch_warm"] = seconds_per_epoch_warm
    metrics["train_seconds"] = train_seconds
    metrics["parameters"] = float(model.num_parameters())
    metrics["epochs_run"] = float(epochs_run)
    return metrics
