"""Serving load benchmark: the whole ``repro.serve`` stack under fire.

``python -m repro.harness serve-bench`` exercises the online inference
engine end to end and writes ``<out>/serve_bench.json``:

1. **Train** a real model (default ST-WA on PEMS08, smoke scale) with
   checkpointing, then promote the schema-v2 checkpoint to a frozen
   :class:`repro.serve.ForecasterArtifact` (plus a save/load round-trip of
   the standalone artifact archive).
2. **Inference mode** — time the artifact's :class:`repro.tensor.
   inference_mode` forward against the same weights with autodiff graph
   construction enabled; the report records both and the speedup.
3. **Executor comparison** — serve the same request stream once through
   the default ``inference`` backend and once through
   ``ExecutorSpec(kind="compiled")`` (trace-once/replay-many,
   :mod:`repro.compile`); p50/p95/p99 request latencies land side by side
   in the report, and every SLO report event is stamped with the
   ``executor_kind`` that produced it.
4. **Load phase** — replay the test split as a live stream into a
   :class:`repro.serve.ServingEngine` while concurrent client threads
   request forecasts: micro-batch coalescing, cache hits on repeated
   queries, invalidation on every ingest.
5. **Fault drill** — a forward pre-hook makes the model raise; requests
   must degrade to the persistence fallback, the circuit breaker must open,
   and service must recover once the fault clears.
6. **SLO gate** — p95 latency is checked against ``--slo-p95-ms``; the
   subcommand exits nonzero if the SLO fails, any drill fails, or the
   cache never hit.  ``--fast`` shrinks everything to the CI budget.
"""

from __future__ import annotations

import json
import shutil
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import BuildSpec, build_from_spec
from ..data import WindowSpec
from ..exec import ExecutorSpec
from ..obs import ListSink
from ..serve import ForecasterArtifact, ServeConfig, ServingEngine, load_artifact
from ..tensor import Tensor
from ..training import Trainer, TrainerConfig, latest_checkpoint
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset

HISTORY = 12
HORIZON = 12
DATASET = "PEMS08"  # smallest simulated network: serve-bench is about the engine


def _train_artifact(
    model_name: str, dataset, settings: RunSettings, ckpt_dir: Path
) -> Tuple[ForecasterArtifact, Dict]:
    """Short real training run -> schema-v2 checkpoint -> frozen artifact."""
    shutil.rmtree(ckpt_dir, ignore_errors=True)
    spec = BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, seed=settings.seed)
    trainer = Trainer(
        build_from_spec(model_name, spec),
        dataset,
        WindowSpec(HISTORY, HORIZON),
        TrainerConfig(
            lr=settings.lr,
            epochs=settings.epochs,
            batch_size=settings.batch_size,
            patience=settings.patience,
            max_batches_per_epoch=settings.max_batches,
            eval_batches=settings.eval_batches,
            seed=settings.seed,
            checkpoint_dir=ckpt_dir,
        ),
    )
    history = trainer.fit()
    checkpoint = latest_checkpoint(ckpt_dir)
    if checkpoint is None:
        raise RuntimeError(f"training left no checkpoint in {ckpt_dir}")
    artifact = ForecasterArtifact.from_training_checkpoint(
        checkpoint,
        build_from_spec(model_name, spec),
        scaler=dataset.scaler,
        model_name=model_name,
        history=HISTORY,
        horizon=HORIZON,
    )
    info = {
        "epochs_run": history.epochs_run,
        "best_val_mae": min(history.val_mae) if history.val_mae else None,
        "checkpoint": checkpoint.name,
    }
    return artifact, info


def _roundtrip(artifact: ForecasterArtifact, dataset, path: Path, window: np.ndarray) -> Dict:
    """Save/load the standalone artifact archive; forecasts must match."""
    artifact.save(
        path, dataset_name=dataset.name, dataset_profile=dataset.profile, seed=0
    )
    reloaded = load_artifact(path, dataset=dataset)
    match = bool(np.allclose(artifact.predict(window), reloaded.predict(window)))
    return {
        "path": str(path),
        "model_id_match": reloaded.model_id == artifact.model_id,
        "forecast_match": match,
        "ok": match and reloaded.model_id == artifact.model_id,
    }


def _time_inference_vs_grad(artifact: ForecasterArtifact, window: np.ndarray, repeats: int) -> Dict:
    """Same weights, same input: inference_mode vs graph-building forward."""
    scaled = artifact.scaler.transform(window[None])

    artifact.predict(window)  # warm both paths' caches once
    start = time.perf_counter()
    for _ in range(repeats):
        artifact.predict(window)
    inference_s = (time.perf_counter() - start) / repeats

    # grad-enabled control: thaw the parameters so the forward records the
    # full autodiff graph, exactly as a training step would
    for parameter in artifact.model.parameters():
        parameter.requires_grad = True
    try:
        artifact.model(Tensor(scaled))
        start = time.perf_counter()
        for _ in range(repeats):
            artifact.model(Tensor(scaled))
        grad_s = (time.perf_counter() - start) / repeats
    finally:
        artifact.freeze()

    return {
        "repeats": repeats,
        "inference_ms": 1e3 * inference_s,
        "grad_ms": 1e3 * grad_s,
        "speedup": grad_s / inference_s if inference_s > 0 else float("inf"),
    }


def _executor_comparison(artifact: ForecasterArtifact, dataset, requests: int) -> Dict:
    """Same artifact, same request stream: inference vs compiled serving.

    Each backend serves ``requests`` forecasts for *distinct* windows (so
    the prediction cache never masks the model path) through its own
    :class:`ServingEngine`, and the report places their p50/p95/p99 request
    latencies side by side.  The compiled engine pays its one-off plan
    trace during a warm-up forward issued *before* the timed requests, so
    the quantiles compare steady-state replay against steady-state
    ``inference_mode`` — exactly the serving regime the compiled backend
    targets (single-window micro-batches).
    """
    stream = dataset.test_raw
    backends: Dict[str, Dict] = {}
    for spec in (ExecutorSpec.inference(), ExecutorSpec.compiled()):
        config = ServeConfig(
            max_batch_size=1,
            max_wait_ms=0.0,
            deadline_ms=10_000.0,
            executor=spec,
        )
        with ServingEngine(artifact, num_sensors=dataset.num_sensors, config=config) as engine:
            # warm outside the stats window: the compiled path traces its
            # plan here, the inference path warms any lazy module caches
            engine._predict_batch(stream[None, :, :HISTORY, :])
            for i in range(requests):
                engine.forecast(stream[:, 1 + i : 1 + i + HISTORY, :])
            latency = engine.snapshot()["latency"]
            backends[spec.kind] = {
                "executor_kind": engine.executor_kind,
                "requests": requests,
                "p50_ms": latency["p50_ms"],
                "p95_ms": latency["p95_ms"],
                "p99_ms": latency["p99_ms"],
                "fallbacks": engine.stats.fallbacks,
            }
    inference_p50 = backends["inference"]["p50_ms"]
    compiled_p50 = backends["compiled"]["p50_ms"]
    return {
        "requests": requests,
        "inference": backends["inference"],
        "compiled": backends["compiled"],
        "p50_speedup": inference_p50 / compiled_p50 if compiled_p50 > 0 else float("inf"),
        # informational comparison; the hard speedup gate lives in
        # ``repro.harness bench --check``.  Serving it without a single
        # fallback is the correctness bar here.
        "ok": backends["compiled"]["fallbacks"] == 0 and backends["inference"]["fallbacks"] == 0,
    }


def _load_phase(
    engine: ServingEngine, dataset, ticks: int, clients: int, rounds_per_tick: int = 2
) -> Dict:
    """Replay the test stream; concurrent clients query between ticks.

    Each tick fires ``rounds_per_tick`` rounds of ``clients`` concurrent
    requests: round one misses the (just-invalidated) cache and coalesces in
    the micro-batcher; later rounds hit the cache.
    """
    stream = dataset.test_raw  # (N, T, F), raw units
    total = stream.shape[1]
    for t in range(HISTORY):  # warm the ring to a full window
        engine.ingest(stream[:, t % total, :])
    sources = {"model": 0, "cache": 0, "fallback": 0}
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for tick in range(ticks):
            engine.ingest(stream[:, (HISTORY + tick) % total, :])
            for _ in range(rounds_per_tick):
                results = list(pool.map(lambda _: engine.forecast(), range(clients)))
                for result in results:
                    sources[result.source] += 1
    return {
        "ticks": ticks,
        "clients": clients,
        "requests": int(sum(sources.values())),
        "sources": sources,
        "batches_run": engine.batcher.batches_run,
    }


def _fault_drill(engine: ServingEngine, dataset, windows: int) -> Dict:
    """Break the model, demand graceful degradation, then demand recovery."""
    handle = engine.artifact.model.register_forward_pre_hook(
        lambda module, args: (_ for _ in ()).throw(RuntimeError("injected model fault"))
    )
    stream = dataset.test_raw
    reasons = []
    try:
        for i in range(windows):
            # distinct explicit windows so the cache cannot mask the fault
            window = stream[:, i : i + HISTORY, :]
            result = engine.forecast(window)
            reasons.append(result.reason or result.source)
            if not result.ok and result.forecast.shape != (
                dataset.num_sensors,
                HORIZON,
                stream.shape[2],
            ):
                raise AssertionError("fallback forecast has the wrong shape")
    finally:
        handle.remove()
    all_fallback = all(r != "model" for r in reasons)
    circuit_opened = engine.circuit.opens >= 1
    time.sleep(engine.config.cooldown_s + 0.01)  # let the half-open probe through
    recovered = engine.forecast(stream[:, windows : windows + HISTORY, :]).source == "model"
    return {
        "injected_requests": windows,
        "reasons": reasons,
        "all_served_degraded": all_fallback,
        "circuit_opened": circuit_opened,
        "recovered": recovered,
        "ok": all_fallback and circuit_opened and recovered,
    }


def run(
    settings: Optional[RunSettings] = None,
    out_dir: "Path | str" = "results",
    fast: bool = False,
    model_name: str = "st-wa",
    slo_p95_ms: float = 500.0,
) -> Tuple[TableResult, Dict]:
    """Run the full serving benchmark; returns the table and the JSON report."""
    settings = settings or RunSettings.smoke()
    if fast:
        settings = settings.with_overrides(epochs=2, max_batches=3, eval_batches=2)
    ticks, clients, repeats = (6, 4, 3) if fast else (12, 6, 10)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = get_dataset(DATASET, settings.profile)
    ckpt_dir = out_dir / "serve_ckpt"

    artifact, train_info = _train_artifact(model_name, dataset, settings, ckpt_dir)
    probe = dataset.test_raw[:, :HISTORY, :]
    roundtrip = _roundtrip(artifact, dataset, ckpt_dir / "artifact.npz", probe)
    timing = _time_inference_vs_grad(artifact, probe, repeats)
    executors = _executor_comparison(artifact, dataset, requests=5 * clients)

    sink = ListSink()
    config = ServeConfig(
        max_batch_size=max(2, clients),
        max_wait_ms=5.0,
        cache_ttl_s=60.0,
        deadline_ms=10_000.0,  # generous: SLO gating is the latency judge, not the deadline
        failure_threshold=3,
        cooldown_s=0.05,
        sink=sink,
    )
    with ServingEngine(artifact, num_sensors=dataset.num_sensors, config=config) as engine:
        load = _load_phase(engine, dataset, ticks=ticks, clients=clients)
        fault = _fault_drill(engine, dataset, windows=config.failure_threshold + 2)
        snapshot = engine.snapshot()
        slo = engine.stats.slo_report(p95_ms=slo_p95_ms)
    shutil.rmtree(ckpt_dir, ignore_errors=True)  # bench scratch, not a result

    cache_hit_rate = snapshot["cache_hit_rate"]
    ok = bool(
        slo["ok"] and fault["ok"] and roundtrip["ok"] and executors["ok"] and cache_hit_rate > 0
    )
    report = {
        "schema": 1,
        "model": model_name,
        "dataset": DATASET,
        "scope": settings.scope,
        "fast": fast,
        "train": train_info,
        "artifact": {"model_id": artifact.model_id, "roundtrip": roundtrip},
        "inference_mode": timing,
        "executor_comparison": executors,
        "load": load,
        "fault_injection": fault,
        "serving": snapshot,
        "events": {
            "total": len(sink.events),
            "fallback": len(sink.of_type("fallback")),
            "serve_batch": len(sink.of_type("serve_batch")),
        },
        "slo": slo,
        "ok": ok,
    }
    out_path = out_dir / "serve_bench.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    latency = snapshot["latency"]
    rows = [
        [
            "train->artifact",
            "PASS" if roundtrip["ok"] else "FAIL",
            f"{artifact.model_id} from {train_info['checkpoint']}, roundtrip ok",
        ],
        [
            "inference_mode",
            "PASS" if timing["speedup"] > 1.0 else "FAIL",
            f"{fmt(timing['inference_ms'])} ms vs {fmt(timing['grad_ms'])} ms grad "
            f"({fmt(timing['speedup'])}x)",
        ],
        [
            "executors",
            "PASS" if executors["ok"] else "FAIL",
            f"compiled p50/p95/p99 {fmt(executors['compiled']['p50_ms'])}/"
            f"{fmt(executors['compiled']['p95_ms'])}/{fmt(executors['compiled']['p99_ms'])} ms "
            f"vs inference {fmt(executors['inference']['p50_ms'])}/"
            f"{fmt(executors['inference']['p95_ms'])}/{fmt(executors['inference']['p99_ms'])} ms "
            f"({fmt(executors['p50_speedup'])}x p50)",
        ],
        [
            "load",
            "PASS" if cache_hit_rate > 0 else "FAIL",
            f"{load['requests']} req, {load['batches_run']} batches, "
            f"hit rate {fmt(cache_hit_rate)}",
        ],
        [
            "latency",
            "PASS" if slo["ok"] else "FAIL",
            f"p50 {fmt(latency['p50_ms'])} / p95 {fmt(latency['p95_ms'])} / "
            f"p99 {fmt(latency['p99_ms'])} ms (SLO p95 < {fmt(slo_p95_ms, 0)})",
        ],
        [
            "fault_drill",
            "PASS" if fault["ok"] else "FAIL",
            f"degraded={fault['all_served_degraded']}, circuit={fault['circuit_opened']}, "
            f"recovered={fault['recovered']}",
        ],
    ]
    table = TableResult(
        experiment_id="serve_bench",
        title=f"Serving load benchmark ({model_name}, {DATASET}, {settings.scope})",
        headers=["phase", "status", "detail"],
        rows=rows,
        notes=[f"full report: {out_path}"],
        extras={"report": report},
    )
    return table, report
