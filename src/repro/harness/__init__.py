"""Experiment harness: one runner per table/figure of the paper.

``EXPERIMENTS`` maps experiment ids to their ``run`` callables; each returns
a :class:`TableResult` whose rows mirror the paper's layout.  Wall time is
controlled by :class:`RunSettings` (scopes: smoke / quick / standard,
constructed explicitly via :meth:`RunSettings.from_scope`).  The ``profile``
module backs ``python -m repro.harness profile <model>`` — an op/module
runtime profile built on :mod:`repro.obs` — and ``bench`` backs
``python -m repro.harness bench``, the benchmark trajectory harness that
writes ``BENCH_<date>.json`` perf snapshots.  ``chaos`` backs
``python -m repro.harness chaos`` — fault-injection drills
(:mod:`repro.resilience`) that write ``chaos_report.json`` — and
``serve_bench`` backs ``python -m repro.harness serve-bench``, the online
serving load benchmark (:mod:`repro.serve`) that writes
``serve_bench.json``.  ``parallel_bench`` backs
``python -m repro.harness parallel-bench`` — the data-parallel training
gates (:mod:`repro.parallel`) that write ``parallel_bench.json`` — and
``fleet_bench`` backs ``python -m repro.harness fleet-bench``, the model
lifecycle benchmark (:mod:`repro.fleet`: registry, hot swap under load,
shadow divergence, drift-triggered retrain) that writes
``fleet_bench.json``.  ``shard_bench`` backs
``python -m repro.harness shard-bench`` — the sensor-sharding gates
(:class:`repro.exec.ShardedExecutor`: serial equivalence on both shard
axes, serve identity, the N=10k city-scale memory envelope) that write
``shard_bench.json`` — and ``capacity`` backs
``python -m repro.harness capacity``, the
:class:`repro.training.CapacityPlanner` report over the registered zoo
(``capacity_report.json``).
"""

from typing import Callable, Dict

from . import (
    attention_scaling,
    bench,
    capacity,
    chaos,
    fleet_bench,
    horizon_report,
    figure9,
    figure10,
    parallel_bench,
    profile,
    serve_bench,
    shard_bench,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
    table13,
    table14,
)
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score, train_and_score_model

#: experiment id -> runner (every table and figure in the paper's evaluation)
EXPERIMENTS: Dict[str, Callable[..., TableResult]] = {
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "table10": table10.run,
    "table11": table11.run,
    "table12": table12.run,
    "table13": table13.run,
    "table14": table14.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "attention_scaling": attention_scaling.run,
    "horizon_report": horizon_report.run,
}

__all__ = [
    "EXPERIMENTS",
    "TableResult",
    "fmt",
    "RunSettings",
    "get_dataset",
    "bench",
    "capacity",
    "chaos",
    "fleet_bench",
    "profile",
    "serve_bench",
    "shard_bench",
    "train_and_score",
    "train_and_score_model",
]
