"""Table IV: overall accuracy, H = 12, U = 12, all datasets x all baselines.

The paper reports MAE / MAPE / RMSE for 12 models on PEMS03/04/07/08;
ST-WA wins 10 of 12 dataset-metric pairs.  We regenerate the same grid on
the simulated datasets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

#: the paper's column order (Table IV)
TABLE4_MODELS = (
    "LongFormer",
    "DCRNN",
    "STGCN",
    "STG2Seq",
    "GWN",
    "STSGCN",
    "ASTGNN",
    "STFGNN",
    "EnhanceNet",
    "AGCRN",
    "meta-LSTM",
    "ST-WA",
)

TABLE4_DATASETS = ("PEMS03", "PEMS04", "PEMS07", "PEMS08")


def run(
    settings: Optional[RunSettings] = None,
    datasets: Sequence[str] = TABLE4_DATASETS,
    models: Sequence[str] = TABLE4_MODELS,
    history: int = 12,
    horizon: int = 12,
) -> TableResult:
    """Train every model on every dataset; rows follow the paper's layout."""
    settings = settings or RunSettings.smoke()
    headers = ["Dataset", "Metric", *models]
    rows = []
    st_wa_wins = 0
    total_cells = 0
    for dataset_name in datasets:
        dataset = get_dataset(dataset_name, settings.profile)
        results = {
            model: train_and_score(model, dataset, history, horizon, settings) for model in models
        }
        for metric in ("mae", "mape", "rmse"):
            values = {model: results[model][metric] for model in models}
            best = min(values.values())
            row = [dataset_name if metric == "mae" else "", metric.upper()]
            for model in models:
                cell = fmt(values[model])
                if values[model] == best:
                    cell += "*"
                row.append(cell)
            rows.append(row)
            if "ST-WA" in values and values["ST-WA"] == best:
                st_wa_wins += 1
            total_cells += 1
    return TableResult(
        experiment_id="table4",
        title=f"Overall accuracy, H={history}, U={horizon} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "* marks the best model per row (paper: ST-WA best on 10/12).",
            f"ST-WA best on {st_wa_wins}/{total_cells} dataset-metric pairs in this run.",
        ],
        extras={"st_wa_wins": st_wa_wins, "total_cells": total_cells},
    )
