"""``python -m repro.harness bench`` — the perf trajectory harness.

Runs a fixed suite — autodiff op microbenchmarks, one instrumented ST-WA
smoke epoch, and the interpreted-vs-compiled executor comparison
(:mod:`repro.compile`) — and writes ``BENCH_<date>.json`` with wall times,
engine-side gradient-allocation counts (see
:func:`repro.tensor.set_grad_alloc_hook`), and per-benchmark / per-op deltas
against the most recent previous ``BENCH_*.json`` in the output directory.
The same payload is mirrored to a root-level ``BENCH_latest.json`` — a
moving pointer to the newest snapshot that tooling can read without
globbing for dates (never used as a diff baseline).
Committing the JSON gives every future PR a perf baseline to diff against;
``--check`` turns a >``--max-regression`` slowdown of the ST-WA smoke epoch
— or a failed compiled-backend gate (equivalence within 1e-9 rtol over the
optimizer-step trajectory, >=2x online-step speedup) — into a nonzero exit
for CI.  The compiled plan/fusion/fallback breakdown additionally lands in
``<out>/compile_profile.json`` for CI artifact upload.

The suite gradient-checks every optimized fast path
(:func:`repro.tensor.gradcheck.check_fastpath_suite`) before timing
anything, so a bench run is also a cheap correctness gate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops, set_grad_alloc_hook
from ..tensor.gradcheck import check_fastpath_suite
from .reporting import PathLike, TableResult, fmt
from .runner import RunSettings

#: repeats per microbenchmark, keyed by scope
_REPEATS = {"smoke": 5, "quick": 15, "standard": 40}

#: root-level pointer to the newest snapshot, refreshed by every bench run
LATEST_NAME = "BENCH_latest.json"


def _microbenchmarks(rng: np.random.Generator) -> List[Tuple[str, Callable[[], Tensor]]]:
    """The fixed op suite: each entry builds a fresh graph and returns the loss.

    Shapes mirror the reproduction's hot paths: ``(batch, sensors, time/
    features)`` batches against shared 2-D weights, window slicing, per-node
    gathers, and gate concatenation.
    """
    x_data = rng.standard_normal((32, 18, 12, 24))
    w_data = rng.standard_normal((24, 24))
    b_data = rng.standard_normal(24)
    gen_w_data = rng.standard_normal((18, 24, 24))
    gather_idx = rng.integers(0, 12, size=(32, 18, 4, 24))
    fancy_idx = rng.integers(0, 32, size=64)

    def tensors():
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        return x, w, b

    def matmul_shared():
        x, w, _ = tensors()
        return ops.matmul(x, w).sum()

    def linear_fused():
        x, w, b = tensors()
        return ops.linear(x, w, b).sum()

    def matmul_generated():
        x, _, _ = tensors()
        w = Tensor(gen_w_data, requires_grad=True)
        return ops.matmul(x, w).sum()

    def getitem_window_slices():
        x, _, _ = tensors()
        total = None
        for start in range(0, 12, 3):
            piece = x[:, :, start : start + 3, :].sum()
            total = piece if total is None else total + piece
        return total

    def getitem_advanced():
        x, _, _ = tensors()
        return x[np.asarray(fancy_idx)].sum()

    def gather_per_node():
        x, _, _ = tensors()
        return ops.gather(x, 2, gather_idx).sum()

    def concat_gates():
        x, w, b = tensors()
        left = ops.linear(x, w, b)
        right = ops.tanh(x)
        return ops.concat([left, right], axis=-1).sum()

    def elementwise_chain():
        x, _, _ = tensors()
        return ops.tanh(ops.sigmoid(x * 2.0) + x * x).sum()

    return [
        ("matmul_shared_weight", matmul_shared),
        ("linear_fused", linear_fused),
        ("matmul_generated_weight", matmul_generated),
        ("getitem_window_slices", getitem_window_slices),
        ("getitem_advanced_index", getitem_advanced),
        ("gather_per_node", gather_per_node),
        ("concat_gates", concat_gates),
        ("elementwise_chain", elementwise_chain),
    ]


def _time_case(build: Callable[[], Tensor], repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` forward+backward wall time plus grad-alloc counts."""
    build().backward()  # warm caches outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        build().backward()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    allocs = {"count": 0, "bytes": 0}

    def count(nbytes: int) -> None:
        allocs["count"] += 1
        allocs["bytes"] += nbytes

    restore = set_grad_alloc_hook(count)
    try:
        build().backward()
    finally:
        set_grad_alloc_hook(restore)
    return {
        "seconds": best,
        "repeats": repeats,
        "grad_allocs": allocs["count"],
        "grad_alloc_bytes": allocs["bytes"],
    }


def _st_wa_smoke(settings: RunSettings) -> Dict[str, object]:
    """One instrumented ST-WA smoke training pass (same shape as ``profile``)."""
    from . import profile as profile_mod

    result = profile_mod.run(model_name="st-wa", settings=settings, out_dir=None)
    summary = result.extras["summary"]
    return {
        "wall_seconds": summary["wall_seconds"],
        "total_op_seconds": summary["total_op_seconds"],
        "total_op_calls": summary["total_op_calls"],
        "peak_bytes": summary["peak_bytes"],
        "grad_allocs": summary["grad_allocs"],
        "grad_alloc_bytes": summary["grad_alloc_bytes"],
        "ops": {
            f"{stat['name']}.{stat['phase']}": stat["seconds"] for stat in summary["ops"]
        },
    }


def _compiled_bench(
    settings: RunSettings,
    equivalence_steps: int = 6,
    rtol: float = 1e-9,
    speedup_target: float = 2.0,
) -> Dict[str, object]:
    """Interpreted-vs-compiled comparison on the ST-WA smoke configuration.

    Two phases, both on the uninstrumented interpreted path (no op-trace
    hook — the honest baseline, not the profiled one):

    * **equivalence** — two identically seeded models take
      ``equivalence_steps`` optimizer steps (Adam + grad clipping, the
      trainer's loop shape), one through :class:`repro.exec.SerialExecutor`
      and one through :class:`repro.compile.CompiledExecutor`; per-step loss
      and per-parameter gradients must agree within ``rtol``.
    * **per-step wall** — alternating best-of-N timings at the online
      shape (one window per step, the trace-replay target that serving
      hits) and at the full training batch.  The ``speedup_target`` gate is
      enforced on the online step; the training-batch delta is reported
      alongside because at large batches the step is BLAS-bound and the
      dispatch win shrinks — see DESIGN.md "Compiled execution".
    """
    from ..baselines import BuildSpec, build_from_spec
    from ..compile import CompiledExecutor
    from ..data import WindowSpec
    from ..data.windows import BatchIterator, SlidingWindowDataset
    from ..exec import ExecutorSpec, make_executor
    from ..optim import Adam, clip_grad_norm
    from .runner import get_dataset

    dataset = get_dataset("PEMS08", settings.profile)
    windows = SlidingWindowDataset(
        dataset.train, WindowSpec(12, 12), raw=dataset.train_raw
    )

    def build_model():
        return build_from_spec(
            "st-wa", BuildSpec(dataset=dataset, history=12, horizon=12, seed=settings.seed)
        )

    def batches(batch_size: int, count: int):
        iterator = BatchIterator(
            windows,
            batch_size=batch_size,
            shuffle=False,
            rng=np.random.default_rng(settings.seed),
            max_batches=count,
        )
        return [(x, dataset.scaler.transform(y)) for x, y in iterator]

    # --- phase 1: trajectory equivalence under the trainer's loop shape --- #
    serial_model, compiled_model = build_model(), build_model()
    serial_exec = make_executor(
        serial_model, ExecutorSpec.serial(), huber_delta=1.0, kl_weight=0.02
    ).open()
    compiled_exec = CompiledExecutor(
        compiled_model, huber_delta=1.0, kl_weight=0.02
    ).open()
    serial_opt = Adam(serial_model.parameters(), lr=settings.lr)
    compiled_opt = Adam(compiled_model.parameters(), lr=settings.lr)
    worst_loss_rel = worst_grad_rel = 0.0
    equivalence_ok = True
    try:
        for x, y in batches(settings.batch_size, equivalence_steps):
            serial_result = serial_exec.train_step(None, (x, y))
            compiled_result = compiled_exec.train_step(None, (x, y))
            denom = max(abs(serial_result.loss), 1e-30)
            worst_loss_rel = max(
                worst_loss_rel, abs(serial_result.loss - compiled_result.loss) / denom
            )
            equivalence_ok &= bool(
                np.isclose(serial_result.loss, compiled_result.loss, rtol=rtol, atol=1e-12)
            )
            for p_serial, p_compiled in zip(
                serial_model.parameters(), compiled_model.parameters()
            ):
                # gate with rtol + a tiny atol floor (pure relative error is
                # ill-conditioned on near-zero gradient elements); the worst
                # observed relative error stays in the report as a diagnostic
                equivalence_ok &= bool(
                    np.allclose(p_serial.grad, p_compiled.grad, rtol=rtol, atol=1e-12)
                )
                scale = np.maximum(np.abs(p_serial.grad), 1e-30)
                worst_grad_rel = max(
                    worst_grad_rel,
                    float(np.max(np.abs(p_serial.grad - p_compiled.grad) / scale)),
                )
            clip_grad_norm(serial_model.parameters(), 5.0)
            clip_grad_norm(compiled_model.parameters(), 5.0)
            serial_opt.step()
            compiled_opt.step()

        # --- phase 2: per-step wall, interpreted vs compiled replay ------- #
        timing_repeats = {"smoke": 25, "quick": 40, "standard": 60}.get(settings.scope, 25)
        steps: Dict[str, Dict[str, float]] = {}
        for label, batch_size, repeats in (
            ("online", 1, timing_repeats),
            ("train", settings.batch_size, max(timing_repeats // 3, 5)),
        ):
            (x, y), = batches(batch_size, 1)
            compiled_exec.train_step(None, (x, y))  # trace outside the timed region
            serial_best = compiled_best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                serial_exec.train_step(None, (x, y))
                serial_best = min(serial_best, time.perf_counter() - start)
                start = time.perf_counter()
                compiled_exec.train_step(None, (x, y))
                compiled_best = min(compiled_best, time.perf_counter() - start)
            steps[label] = {
                "batch_size": batch_size,
                "serial_step_seconds": serial_best,
                "compiled_step_seconds": compiled_best,
                "speedup": serial_best / compiled_best,
            }
        stats = dict(compiled_exec.stats)
        stats["train_plan_cache"] = compiled_exec.train_plans.stats
        plans = [plan.stats for plan in compiled_exec.train_plans.live_plans()]
    finally:
        serial_exec.close()
        compiled_exec.close()

    speedup = steps["online"]["speedup"]
    return {
        "dataset": "PEMS08",
        "model": "st-wa",
        "equivalence": {
            "steps": equivalence_steps,
            "rtol": rtol,
            "worst_loss_rel": worst_loss_rel,
            "worst_grad_rel": worst_grad_rel,
            "ok": equivalence_ok,
        },
        "steps": steps,
        "speedup": speedup,
        "speedup_target": speedup_target,
        "speedup_ok": speedup >= speedup_target,
        "ok": equivalence_ok and speedup >= speedup_target,
        "executor_stats": stats,
        "plans": plans,
    }


def _find_previous(out_dir: Path, current_name: str) -> Optional[Path]:
    """Most recent dated ``BENCH_*.json`` in ``out_dir`` other than ``current_name``.

    ``BENCH_latest.json`` is excluded: it is a moving pointer to the newest
    snapshot, not a baseline (and sorts after every date), so diffing
    against it would compare a run with itself.
    """
    candidates = sorted(
        p
        for p in out_dir.glob("BENCH_*.json")
        if p.name != current_name and p.name != LATEST_NAME
    )
    return candidates[-1] if candidates else None


def _relative_deltas(new: Dict[str, float], old: Dict[str, float]) -> Dict[str, float]:
    """``(new - old) / old`` for every key present in both (old > 0)."""
    deltas = {}
    for key, new_value in new.items():
        old_value = old.get(key)
        if isinstance(old_value, (int, float)) and old_value > 0 and isinstance(new_value, (int, float)):
            deltas[key] = (new_value - old_value) / old_value
    return deltas


def run(
    settings: Optional[RunSettings] = None,
    out_dir: Optional[PathLike] = "results",
    date: Optional[str] = None,
    check: bool = False,
    max_regression: float = 0.25,
) -> TableResult:
    """Run the bench suite; write ``BENCH_<date>.json``; diff vs the previous.

    With ``check=True`` the result's ``extras["regressed"]`` flags an ST-WA
    smoke epoch more than ``max_regression`` slower than the previous BENCH
    file (the CLI turns that flag into a nonzero exit code).
    """
    settings = settings or RunSettings.from_scope("smoke")
    date = date or time.strftime("%Y-%m-%d")
    gradcheck_cases = check_fastpath_suite()

    rng = np.random.default_rng(0)
    repeats = _REPEATS.get(settings.scope, 5)
    micro: Dict[str, Dict[str, float]] = {}
    for name, build in _microbenchmarks(rng):
        micro[name] = _time_case(build, repeats)

    st_wa = _st_wa_smoke(settings)
    compiled = _compiled_bench(settings)

    payload: Dict[str, object] = {
        "schema": 2,
        "date": date,
        "scope": settings.scope,
        "gradcheck_cases": gradcheck_cases,
        "micro": micro,
        "st_wa_smoke": st_wa,
        "compiled": compiled,
    }

    previous_name = None
    deltas: Dict[str, object] = {}
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        bench_name = f"BENCH_{date}.json"
        previous = _find_previous(out_path, bench_name)
        if previous is not None:
            previous_name = previous.name
            old = json.loads(previous.read_text())
            deltas = {
                "micro_seconds": _relative_deltas(
                    {k: v["seconds"] for k, v in micro.items()},
                    {k: v.get("seconds") for k, v in old.get("micro", {}).items()},
                ),
                "st_wa_wall_seconds": _relative_deltas(
                    {"wall": st_wa["wall_seconds"]},
                    {"wall": old.get("st_wa_smoke", {}).get("wall_seconds")},
                ).get("wall"),
                "st_wa_ops": _relative_deltas(
                    st_wa["ops"], old.get("st_wa_smoke", {}).get("ops", {})
                ),
                "compiled_step_seconds": _relative_deltas(
                    {
                        label: stats["compiled_step_seconds"]
                        for label, stats in compiled["steps"].items()
                    },
                    {
                        label: stats.get("compiled_step_seconds")
                        for label, stats in old.get("compiled", {}).get("steps", {}).items()
                    },
                ),
            }
        payload["previous"] = previous_name
        payload["deltas_vs_previous"] = deltas or None
        serialized = json.dumps(payload, indent=2) + "\n"
        (out_path / bench_name).write_text(serialized)
        # root-level moving pointer so tooling can read "the current perf
        # snapshot" without globbing for the newest date
        (out_path.parent / LATEST_NAME).write_text(serialized)
        # the compiled-backend profile artifact CI uploads: plan programs,
        # fusion stats, cache/fallback counters, per-step timings
        (out_path / "compile_profile.json").write_text(
            json.dumps({"date": date, "scope": settings.scope, "compiled": compiled}, indent=2)
            + "\n"
        )

    regressed = False
    wall_delta = deltas.get("st_wa_wall_seconds") if deltas else None
    if check and wall_delta is not None and wall_delta > max_regression:
        regressed = True
    # the compiled gates are absolute (equivalence rtol + speedup target),
    # so they bind even on a fresh checkout with no previous BENCH file
    if check and not compiled["ok"]:
        regressed = True

    headers = ["Benchmark", "Seconds", "Grad allocs", "Alloc MB", "Delta vs prev"]
    micro_deltas = deltas.get("micro_seconds", {}) if deltas else {}
    rows = []
    for name, stats in micro.items():
        delta = micro_deltas.get(name)
        rows.append(
            [
                name,
                fmt(stats["seconds"], 5),
                str(stats["grad_allocs"]),
                fmt(stats["grad_alloc_bytes"] / 1e6, 3),
                f"{delta:+.1%}" if delta is not None else "-",
            ]
        )
    rows.append(
        [
            "st_wa_smoke_epoch",
            fmt(st_wa["wall_seconds"], 4),
            str(st_wa["grad_allocs"]),
            fmt(st_wa["grad_alloc_bytes"] / 1e6, 2),
            f"{wall_delta:+.1%}" if wall_delta is not None else "-",
        ]
    )
    compiled_deltas = deltas.get("compiled_step_seconds", {}) if deltas else {}
    for label, step in compiled["steps"].items():
        delta = compiled_deltas.get(label)
        rows.append(
            [
                f"compiled_step_{label} (bs={step['batch_size']}, {step['speedup']:.2f}x)",
                fmt(step["compiled_step_seconds"], 5),
                "0",
                "0",
                f"{delta:+.1%}" if delta is not None else "-",
            ]
        )

    equivalence = compiled["equivalence"]
    notes = [
        f"{gradcheck_cases} fast-path gradchecks passed before timing",
        f"microbenchmarks best-of-{repeats}; ST-WA pass instrumented via repro.obs",
        (
            "compiled backend: "
            f"{compiled['speedup']:.2f}x online step vs interpreted serial "
            f"(target {compiled['speedup_target']:.1f}x, "
            f"{'ok' if compiled['speedup_ok'] else 'FAILED'}); "
            f"equivalence over {equivalence['steps']} optimizer steps "
            f"worst grad rel {equivalence['worst_grad_rel']:.1e} "
            f"(rtol {equivalence['rtol']:.0e}, "
            f"{'ok' if equivalence['ok'] else 'FAILED'})"
        ),
    ]
    if previous_name is not None:
        notes.append(f"deltas vs {previous_name} (negative is faster)")
    else:
        notes.append("no previous BENCH_*.json found; this run is the new baseline")
    if check:
        status = "FAILED" if regressed else "ok"
        notes.append(
            f"regression check ({max_regression:.0%} on ST-WA smoke wall + "
            f"compiled equivalence/speedup gates): {status}"
        )

    return TableResult(
        experiment_id=f"BENCH_{date}",
        title=f"Autodiff benchmark trajectory (scope={settings.scope}, {date})",
        headers=headers,
        rows=rows,
        notes=notes,
        extras={"payload": payload, "regressed": regressed},
    )
