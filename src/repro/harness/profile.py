"""``python -m repro.harness profile <model>`` — where does a step go?

Runs one short training pass (or, for non-trained models, one evaluation
pass) of the requested model under :func:`repro.obs.profile` and reports:

* the top-K primitive ops by wall time, forward and backward separately,
  with call counts, analytic FLOP estimates and output bytes;
* the top-K module spans (qualified submodule names) by forward wall time.

The full, un-truncated breakdown is written to
``<out_dir>/profile_<model>.json`` so later perf PRs can diff it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .. import obs
from ..baselines import BuildSpec, build_from_spec
from ..data import WindowSpec
from ..training import Trainer, TrainerConfig
from .reporting import PathLike, TableResult, fmt
from .runner import NON_TRAINED, RunSettings, get_dataset


def run(
    model_name: str = "st-wa",
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    history: int = 12,
    horizon: int = 12,
    top_k: int = 12,
    out_dir: Optional[PathLike] = None,
) -> TableResult:
    """Profile one model for a short training run; optionally dump JSON."""
    settings = settings or RunSettings.from_scope("smoke")
    dataset = get_dataset(dataset_name, settings.profile)
    key = model_name.lower()
    model = build_from_spec(
        key, BuildSpec(dataset=dataset, history=history, horizon=horizon, seed=settings.seed)
    )
    config = TrainerConfig(
        lr=settings.lr,
        epochs=min(settings.epochs, 2),
        batch_size=settings.batch_size,
        patience=settings.patience,
        max_batches_per_epoch=min(settings.max_batches, 3),
        eval_batches=1,
        seed=settings.seed,
        sink=settings.sink,
    )
    trainer = Trainer(model, dataset, WindowSpec(history, horizon), config)
    with obs.profile(model=model) as prof:
        if key in NON_TRAINED or not model.parameters():
            trainer.evaluate("val", max_batches=1)
        else:
            trainer.fit()

    headers = ["Kind", "Name", "Phase", "Calls", "Seconds", "MFLOP est", "MB out"]
    rows = []
    for stat in prof.top_ops(top_k):
        rows.append(
            [
                "op",
                stat.name,
                stat.phase,
                str(stat.calls),
                fmt(stat.seconds, 4),
                fmt(stat.flops / 1e6, 1),
                fmt(stat.bytes / 1e6, 2),
            ]
        )
    for span in prof.top_spans(top_k):
        rows.append(["module", span.name, "forward", str(span.calls), fmt(span.seconds, 4), "", ""])

    summary = {
        "model": key,
        "dataset": dataset_name,
        "scope": settings.scope,
        "history": history,
        "horizon": horizon,
        "parameters": int(model.num_parameters()),
    }
    summary.update(prof.summary())

    json_path = None
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        json_path = out_path / f"profile_{key}.json"
        json_path.write_text(json.dumps(summary, indent=2) + "\n")

    notes = [
        f"{prof.total_calls} traced op calls, {prof.total_op_seconds:.4f}s in ops "
        f"of {prof.wall_seconds:.4f}s wall, {prof.total_flops / 1e6:.1f} MFLOP est., "
        f"peak array {prof.peak_bytes / 1e6:.2f} MB",
        "module spans measure inclusive forward time (parents contain children)",
    ]
    if json_path is not None:
        notes.append(f"full breakdown written to {json_path}")
    return TableResult(
        experiment_id=f"profile_{key}",
        title=f"Op/module profile of {key} on {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=notes,
        extras={"summary": summary},
    )
