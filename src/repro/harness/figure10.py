"""Figure 10: training runtime (s/epoch) vs history length H (PEMS04).

The paper measures s/epoch at H in {12, 36, 120}: every baseline grows
steeply (quadratic attention / long unrolled recurrences) while ST-WA grows
slowly thanks to the linear window attention.  We measure real wall time of
our implementations on identical batch workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis import ascii_line
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

FIGURE10_MODELS = ("STFGNN", "EnhanceNet", "AGCRN", "ST-WA")
FIGURE10_HISTORIES = (12, 36, 120)


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    models: Sequence[str] = FIGURE10_MODELS,
    histories: Sequence[int] = FIGURE10_HISTORIES,
    horizon: int = 12,
) -> TableResult:
    """Measure s/epoch for each model at each H (few epochs suffice)."""
    settings = settings or RunSettings.smoke()
    # runtime measurement needs few epochs regardless of scope
    timing_settings = settings.with_overrides(epochs=min(settings.epochs, 3), patience=99)
    dataset = get_dataset(dataset_name, settings.profile)
    seconds = {model: [] for model in models}
    for history in histories:
        for model in models:
            result = train_and_score(model, dataset, history, horizon, timing_settings)
            seconds[model].append(result["seconds_per_epoch_warm"])
    headers = ["Model", *[f"H={h}" for h in histories], "growth x (H12->H120)"]
    rows = []
    for model in models:
        base = seconds[model][0] or 1e-9
        rows.append(
            [model, *[fmt(s, 3) for s in seconds[model]], fmt(seconds[model][-1] / base, 1)]
        )
    chart = ascii_line({m: seconds[m] for m in models}, x_values=list(histories), width=48, height=12)
    return TableResult(
        experiment_id="figure10",
        title=f"Training runtime vs H, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "Paper: baselines grow steeply with H; ST-WA grows roughly linearly.",
            "s/epoch vs H:\n" + chart,
        ],
        extras={"seconds": seconds, "histories": list(histories)},
    )
