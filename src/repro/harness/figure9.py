"""Figure 9: visualizing the learned stochastic variables with t-SNE.

Reproduces the two qualitative claims of Section V-C:

* **Fig. 9(a)** — the generated projection matrices φ_t^(i) for one sensor
  at different time windows spread over the 2-D t-SNE space (distinct
  parameters for distinct temporal patterns), and embedding clusters align
  with trend regimes (up vs down).
* **Fig. 9(b/c)** — the per-sensor spatial latents z^(i) cluster by road
  corridor and direction: sensors on the same corridor/direction land in
  the same cluster.

Output: cluster-purity statistics (quantifying what the paper shows
visually), ASCII scatter plots, and CSV exports of the embeddings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis import TSNEConfig, ascii_scatter, cluster_purity, kmeans, tsne
from ..core import make_st_wa
from ..data import SlidingWindowDataset, WindowSpec
from ..tensor import Tensor, no_grad
from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score_model


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    history: int = 12,
    horizon: int = 12,
    num_anchor_windows: int = 60,
) -> TableResult:
    """Train ST-WA, embed z^(i) and φ_t^(i), measure cluster structure."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    model = make_st_wa(
        dataset.num_sensors,
        history=history,
        horizon=horizon,
        seed=settings.seed,
        model_dim=16,
        latent_dim=8,
        skip_dim=32,
        predictor_hidden=128,
    )
    train_and_score_model(model, dataset, history, horizon, settings, name="st-wa")
    model.eval()

    # ---- Fig 9(b/c): spatial latents z^(i), colored by corridor+direction
    z = model.latent.spatial.mu.numpy()  # (N, k) posterior means
    lanes = np.array(
        [2 * s.corridor + s.direction for s in dataset.network.sensors]
    )  # ground truth "road" labels
    num_lanes = len(np.unique(lanes))
    z_embedding = tsne(z, TSNEConfig(iterations=300, seed=settings.seed))
    z_labels, _, _ = kmeans(z, min(num_lanes, max(2, dataset.num_sensors // 3)), seed=settings.seed)
    z_purity = cluster_purity(z_labels, lanes)

    # ---- Fig 9(a): generated projections phi_t for one sensor across time
    windows = SlidingWindowDataset(dataset.test, WindowSpec(history, horizon), raw=dataset.test_raw)
    anchors = np.linspace(0, len(windows) - 1, num_anchor_windows).astype(int)
    sensor = 0
    phis = []
    trends = []
    with no_grad():
        for anchor in anchors:
            x, _ = windows[anchor]
            projections = model.generated_projections(Tensor(x[None]))
            flat = np.concatenate(
                [projections[0][name].numpy()[0, sensor].ravel() for name in ("K", "V")]
            )
            phis.append(flat)
            series = x[sensor, :, 0]
            trends.append(1 if series[-1] >= series[0] else 0)  # up vs down window
    phis = np.array(phis)
    trends = np.array(trends)
    phi_embedding = tsne(phis, TSNEConfig(iterations=300, seed=settings.seed))
    phi_spread = float(np.std(phi_embedding))
    phi_labels, _, _ = kmeans(phi_embedding, 2, seed=settings.seed)
    trend_purity = cluster_purity(phi_labels, trends)

    headers = ["Quantity", "Value"]
    rows = [
        ["z purity vs corridor/direction (Fig 9b/c)", fmt(z_purity, 3)],
        ["phi_t embedding spread (Fig 9a)", fmt(phi_spread, 3)],
        ["phi_t cluster purity vs up/down trend (Fig 9a)", fmt(trend_purity, 3)],
        ["num sensors embedded", str(dataset.num_sensors)],
        ["num time windows embedded", str(len(anchors))],
    ]
    scatter_z = ascii_scatter(z_embedding[:, 0], z_embedding[:, 1], labels=lanes, width=48, height=16)
    scatter_phi = ascii_scatter(
        phi_embedding[:, 0], phi_embedding[:, 1], labels=trends, width=48, height=16
    )
    return TableResult(
        experiment_id="figure9",
        title=f"t-SNE of learned latents, {dataset_name} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=[
            "Paper: z^(i) clusters align with corridors/directions; phi_t varies across time windows.",
            "z^(i) embedding (glyph = corridor/direction):\n" + scatter_z,
            "phi_t embedding (glyph = up/down trend of the window):\n" + scatter_phi,
        ],
        extras={
            "z_purity": z_purity,
            "trend_purity": trend_purity,
            "phi_spread": phi_spread,
            "z_embedding": z_embedding,
            "phi_embedding": phi_embedding,
        },
    )
