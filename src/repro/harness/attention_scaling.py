"""Complexity micro-benchmark: window attention O(H) vs canonical O(H^2).

Not a numbered figure, but the paper's central efficiency claim (Section
IV-B): per-layer attention cost is O(H^2) for canonical self-attention and
O(p * H) = O(H) for window attention.  We measure forward+backward wall time
of the two layers over growing H and report the empirical scaling exponents
(log-log slope): canonical should approach ~2, window attention ~1.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..core import WindowAttention
from ..nn import MultiHeadSelfAttention
from ..tensor import Tensor
from .reporting import TableResult, fmt
from .runner import RunSettings

DEFAULT_LENGTHS = (24, 48, 96, 192)


def _time_call(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    settings: Optional[RunSettings] = None,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    num_sensors: int = 8,
    batch: int = 4,
    model_dim: int = 16,
) -> TableResult:
    """Measure per-layer forward+backward time at each input length H."""
    settings = settings or RunSettings.smoke()
    rng = np.random.default_rng(0)
    canonical_times = []
    window_times = []
    for length in lengths:
        x = Tensor(rng.standard_normal((batch, num_sensors, length, 1)), requires_grad=True)
        canonical = MultiHeadSelfAttention(1, model_dim, num_heads=1, rng=np.random.default_rng(1))

        def run_canonical():
            out = canonical(x)
            out.sum().backward()

        canonical_times.append(_time_call(run_canonical))

        window = WindowAttention(
            num_sensors, 1, model_dim, num_windows=length // 4, window_size=4,
            num_proxies=2, rng=np.random.default_rng(1),
        )

        def run_window():
            out = window(x)
            out.sum().backward()

        window_times.append(_time_call(run_window))

    log_h = np.log(np.asarray(lengths, dtype=float))
    canonical_slope = float(np.polyfit(log_h, np.log(canonical_times), 1)[0])
    window_slope = float(np.polyfit(log_h, np.log(window_times), 1)[0])
    headers = ["H", "canonical (s)", "window (s)", "speedup"]
    rows = [
        [str(h), fmt(c, 4), fmt(w, 4), fmt(c / w, 1)]
        for h, c, w in zip(lengths, canonical_times, window_times)
    ]
    rows.append(["log-log slope", fmt(canonical_slope, 2), fmt(window_slope, 2), ""])
    return TableResult(
        experiment_id="attention_scaling",
        title="Window attention O(H) vs canonical attention O(H^2)",
        headers=headers,
        rows=rows,
        notes=[
            f"Empirical scaling exponents: canonical ~{canonical_slope:.2f} (paper: 2), "
            f"window ~{window_slope:.2f} (paper: 1).",
        ],
        extras={"canonical_slope": canonical_slope, "window_slope": window_slope},
    )
