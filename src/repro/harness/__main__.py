"""CLI: regenerate any (or every) paper table/figure.

Usage::

    python -m repro.harness table4 table8 --scope quick
    python -m repro.harness all --scope smoke --out results/

Results are printed and saved as text files under ``--out``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import EXPERIMENTS, RunSettings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce the paper's tables and figures.")
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument("--scope", default="smoke", choices=["smoke", "quick", "standard"])
    parser.add_argument("--out", default="results", help="directory for saved table text files")
    args = parser.parse_args(argv)

    requested = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    settings = {
        "smoke": RunSettings.smoke,
        "quick": RunSettings.quick,
        "standard": RunSettings.standard,
    }[args.scope]()
    out_dir = Path(args.out)
    for experiment_id in requested:
        start = time.perf_counter()
        result = EXPERIMENTS[experiment_id](settings=settings)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{experiment_id} done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
