"""CLI: regenerate any paper table/figure, profile a model, or run the bench.

Usage::

    python -m repro.harness table4 table8 --scope quick
    python -m repro.harness all --scope smoke --out results/
    python -m repro.harness profile st-wa --out results/
    python -m repro.harness bench --scope smoke --check
    python -m repro.harness chaos --fast --out results/
    python -m repro.harness serve-bench --fast --out results/
    python -m repro.harness parallel-bench --fast --out results/
    python -m repro.harness fleet-bench --fast --out results/
    python -m repro.harness shard-bench --fast --out results/
    python -m repro.harness capacity --out results/

``profile <model> [<model> ...]`` runs a short instrumented training pass
and prints the top-K op/module runtime table; the full breakdown lands in
``<out>/profile_<model>.json``.  ``bench`` runs the fixed autodiff
benchmark suite (op microbenchmarks + an instrumented ST-WA smoke epoch),
writes ``<out>/BENCH_<date>.json`` with deltas vs the previous BENCH file,
and with ``--check`` exits nonzero if the ST-WA smoke epoch regressed more
than ``--max-regression``.  ``chaos`` runs the fault-injection drills
(kill/resume, NaN gradient, sensor dropout — see :mod:`repro.resilience`),
writes ``<out>/chaos_report.json``, and exits nonzero unless every scenario
recovered; ``--fast`` shrinks it to the CI budget.  ``serve-bench`` load-
tests the online inference engine (:mod:`repro.serve`) — micro-batching,
prediction cache, fallback drill, latency SLOs — writes
``<out>/serve_bench.json``, and exits nonzero if the SLO or any drill
fails.  ``fleet-bench`` exercises the model-lifecycle plane
(:mod:`repro.fleet`) — registry drill, admission control, hot swap under
concurrent load, shadow divergence, drift-triggered retrain — writes
``<out>/fleet_bench.json``, and exits nonzero if any lifecycle gate fails.
``shard-bench`` runs the sensor-sharding gates (serial-vs-sharded
equivalence on both shard axes, serve identity, the N=10k city-scale
memory envelope — see :class:`repro.exec.ShardedExecutor`), writes
``<out>/shard_bench.json``, and exits nonzero unless every enforced gate
passes.  ``capacity`` evaluates the
:class:`repro.training.CapacityPlanner` over the registered model zoo at
metro sensor counts and writes ``<out>/capacity_report.json``.
Other results are printed and saved as text files under ``--out``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import (
    EXPERIMENTS,
    RunSettings,
    bench,
    capacity,
    chaos,
    fleet_bench,
    parallel_bench,
    profile,
    serve_bench,
    shard_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce the paper's tables and figures.")
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(sorted(EXPERIMENTS))}), 'all', or "
            "'profile <model> [...]' for an op/module runtime profile"
        ),
    )
    parser.add_argument("--scope", default="smoke", choices=["smoke", "quick", "standard"])
    parser.add_argument("--out", default="results", help="directory for saved table text files")
    parser.add_argument("--top-k", type=int, default=12, help="rows per section in profile tables")
    parser.add_argument(
        "--check",
        action="store_true",
        help="bench only: exit nonzero if the ST-WA smoke epoch regressed vs the previous BENCH file",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="bench only: allowed relative slowdown of the ST-WA smoke epoch (default 0.25)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help=(
            "chaos/serve-bench/parallel-bench/fleet-bench: shrink the run "
            "to the CI budget (fewer epochs/requests/workers)"
        ),
    )
    parser.add_argument(
        "--model",
        default="st-wa",
        help=(
            "chaos/serve-bench/parallel-bench/fleet-bench: model to run "
            "against (default st-wa)"
        ),
    )
    parser.add_argument(
        "--slo-p95-ms",
        type=float,
        default=500.0,
        help="serve-bench only: p95 latency objective in ms (default 500)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "parallel-bench/shard-bench: required wall-clock speedup "
            "(enforced only on multi-core hosts; default 1.3 for "
            "parallel-bench, 1.1 for shard-bench)"
        ),
    )
    args = parser.parse_args(argv)

    settings = RunSettings.from_scope(args.scope)
    out_dir = Path(args.out)

    if args.experiments[0] == "bench":
        if len(args.experiments) > 1:
            parser.error("bench takes no experiment arguments")
        start = time.perf_counter()
        result = bench.run(
            settings=settings,
            out_dir=out_dir,
            check=args.check,
            max_regression=args.max_regression,
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[bench done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 1 if result.extras.get("regressed") else 0

    if args.experiments[0] == "chaos":
        if len(args.experiments) > 1:
            parser.error("chaos takes no experiment arguments")
        start = time.perf_counter()
        result, report = chaos.run(
            settings=settings, out_dir=out_dir, fast=args.fast, model_name=args.model
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[chaos done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0 if report["all_recovered"] else 1

    if args.experiments[0] == "serve-bench":
        if len(args.experiments) > 1:
            parser.error("serve-bench takes no experiment arguments")
        start = time.perf_counter()
        result, report = serve_bench.run(
            settings=settings,
            out_dir=out_dir,
            fast=args.fast,
            model_name=args.model,
            slo_p95_ms=args.slo_p95_ms,
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[serve-bench done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0 if report["ok"] else 1

    if args.experiments[0] == "fleet-bench":
        if len(args.experiments) > 1:
            parser.error("fleet-bench takes no experiment arguments")
        start = time.perf_counter()
        result, report = fleet_bench.run(
            settings=settings,
            out_dir=out_dir,
            fast=args.fast,
            model_name=args.model,
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[fleet-bench done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0 if report["ok"] else 1

    if args.experiments[0] == "shard-bench":
        if len(args.experiments) > 1:
            parser.error("shard-bench takes no experiment arguments")
        start = time.perf_counter()
        result, report = shard_bench.run(
            settings=settings,
            out_dir=out_dir,
            fast=args.fast,
            min_speedup=1.1 if args.min_speedup is None else args.min_speedup,
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[shard-bench done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0 if report["all_passed"] else 1

    if args.experiments[0] == "capacity":
        if len(args.experiments) > 1:
            parser.error("capacity takes no experiment arguments")
        start = time.perf_counter()
        result, report = capacity.run(settings=settings, out_dir=out_dir)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[capacity done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0

    if args.experiments[0] == "parallel-bench":
        if len(args.experiments) > 1:
            parser.error("parallel-bench takes no experiment arguments")
        start = time.perf_counter()
        result, report = parallel_bench.run(
            settings=settings,
            out_dir=out_dir,
            fast=args.fast,
            model_name=args.model,
            min_speedup=1.3 if args.min_speedup is None else args.min_speedup,
        )
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[parallel-bench done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
        return 0 if report["all_passed"] else 1

    if args.experiments[0] == "profile":
        models = args.experiments[1:]
        if not models:
            parser.error("profile requires at least one model name, e.g. 'profile st-wa'")
        for model_name in models:
            start = time.perf_counter()
            result = profile.run(
                model_name=model_name, settings=settings, top_k=args.top_k, out_dir=out_dir
            )
            elapsed = time.perf_counter() - start
            print(result.to_text())
            print(f"[profile {model_name} done in {elapsed:.1f}s]\n", flush=True)
            result.save(out_dir)
        return 0

    requested = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for experiment_id in requested:
        start = time.perf_counter()
        result = EXPERIMENTS[experiment_id](settings=settings)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{experiment_id} done in {elapsed:.1f}s]\n", flush=True)
        result.save(out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
