"""Table V: impact of the historical window H on PEMS04.

The paper increases H from 12 to 36 to 120 (U fixed at 12) for the top-3
baselines and ST-WA; ST-WA keeps improving with longer H while baselines
plateau or lose accuracy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .reporting import TableResult, fmt
from .runner import RunSettings, get_dataset, train_and_score

TABLE5_MODELS = ("STFGNN", "EnhanceNet", "AGCRN", "ST-WA")
TABLE5_HISTORIES = (12, 36, 120)


def run(
    settings: Optional[RunSettings] = None,
    dataset_name: str = "PEMS04",
    models: Sequence[str] = TABLE5_MODELS,
    histories: Sequence[int] = TABLE5_HISTORIES,
    horizon: int = 12,
) -> TableResult:
    """Sweep the history length; columns grouped per H as in the paper."""
    settings = settings or RunSettings.smoke()
    dataset = get_dataset(dataset_name, settings.profile)
    headers = ["Metric"] + [f"{model} (H={h})" for h in histories for model in models]
    results = {}
    for history in histories:
        for model in models:
            results[(history, model)] = train_and_score(model, dataset, history, horizon, settings)
    rows = []
    for metric in ("mae", "mape", "rmse"):
        row = [metric.upper()]
        for history in histories:
            for model in models:
                row.append(fmt(results[(history, model)][metric]))
        rows.append(row)
    return TableResult(
        experiment_id="table5",
        title=f"Impact of H on {dataset_name}, U={horizon} (scope={settings.scope})",
        headers=headers,
        rows=rows,
        notes=["Paper: ST-WA improves with longer H while baselines stagnate or degrade."],
        extras={"results": {f"{h}/{m}": results[(h, m)]["mae"] for h, m in results}},
    )
