"""Divergence detection and rollback policy for the training loop.

The stochastic latents of ST-WA (Eq. 14-20) make KL-driven loss spikes a
realistic failure mode; a :class:`RecoveryPolicy` tells the
:class:`repro.training.Trainer` how to respond instead of dying:

1. **Detect** — a batch counts as divergence when (a) its loss is
   non-finite, (b) its loss exceeds ``explosion_factor`` times the trailing
   median of recent batch losses (:class:`LossExplosionError`), or (c) the
   anomaly screen / gradient-norm guard raises
   :class:`repro.tensor.NumericalAnomalyError`.
2. **Roll back** — the Trainer restores the last good epoch-boundary state
   (weights, optimizer moments, RNG streams, early stopping) from its
   in-memory snapshot or the latest on-disk checkpoint.
3. **Back off** — the learning rate is multiplied by ``lr_factor`` (floored
   at ``min_lr``) before retrying, so each successive attempt takes smaller
   steps — exponential backoff in step size rather than wall time.
4. **Bound** — after ``max_retries`` consecutive failed attempts at the
   same epoch the original error is re-raised; a clean epoch resets the
   attempt counter.

Every recovery is emitted as a ``{"event": "recovery", ...}`` record through
the Trainer's :class:`repro.obs.MetricsSink` (see DESIGN.md "Resilience").
"""

from __future__ import annotations

from dataclasses import dataclass


class LossExplosionError(FloatingPointError):
    """Batch loss exceeded ``explosion_factor`` x the trailing median.

    Subclasses :class:`FloatingPointError` so one ``except`` clause covers
    NaN losses, numerical anomalies, and explosions alike.
    """

    def __init__(self, loss: float, median: float, factor: float):
        self.loss = loss
        self.median = median
        self.factor = factor
        super().__init__(
            f"training diverged: batch loss {loss:.6g} exceeds "
            f"{factor:g}x the trailing median {median:.6g}"
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the rollback-and-retry loop (see module docstring).

    ``window`` and ``min_history`` control the trailing-median explosion
    detector: the median is taken over the last ``window`` batch losses and
    only consulted once ``min_history`` of them exist (early losses are
    legitimately large and noisy).
    """

    max_retries: int = 3
    lr_factor: float = 0.5
    min_lr: float = 1e-6
    explosion_factor: float = 10.0
    window: int = 25
    min_history: int = 5

    def __post_init__(self):
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.lr_factor < 1.0:
            raise ValueError("lr_factor must be in (0, 1)")
        if self.explosion_factor <= 1.0:
            raise ValueError("explosion_factor must be > 1")
        if self.window < 1 or self.min_history < 1:
            raise ValueError("window and min_history must be >= 1")

    def backed_off_lr(self, lr: float) -> float:
        """The learning rate to retry with after one more failure."""
        return max(self.min_lr, lr * self.lr_factor)
