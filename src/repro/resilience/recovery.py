"""Divergence detection and rollback policy for the training loop.

The stochastic latents of ST-WA (Eq. 14-20) make KL-driven loss spikes a
realistic failure mode; a :class:`RecoveryPolicy` tells the
:class:`repro.training.Trainer` how to respond instead of dying:

1. **Detect** — a batch counts as divergence when (a) its loss is
   non-finite, (b) its loss exceeds ``explosion_factor`` times the trailing
   median of recent batch losses (:class:`LossExplosionError`), or (c) the
   anomaly screen / gradient-norm guard raises
   :class:`repro.tensor.NumericalAnomalyError`.
2. **Roll back** — the Trainer restores the last good epoch-boundary state
   (weights, optimizer moments, RNG streams, early stopping) from its
   in-memory snapshot or the latest on-disk checkpoint.
3. **Back off** — the learning rate is multiplied by ``lr_factor`` (floored
   at ``min_lr``) before retrying, so each successive attempt takes smaller
   steps — exponential backoff in step size rather than wall time.
4. **Bound** — after ``max_retries`` consecutive failed attempts at the
   same epoch the original error is re-raised; a clean epoch resets the
   attempt counter.

Every recovery is emitted as a ``{"event": "recovery", ...}`` record through
the Trainer's :class:`repro.obs.MetricsSink` (see DESIGN.md "Resilience").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional


class LossExplosionError(FloatingPointError):
    """Batch loss exceeded ``explosion_factor`` x the trailing median.

    Subclasses :class:`FloatingPointError` so one ``except`` clause covers
    NaN losses, numerical anomalies, and explosions alike.
    """

    def __init__(self, loss: float, median: float, factor: float):
        self.loss = loss
        self.median = median
        self.factor = factor
        super().__init__(
            f"training diverged: batch loss {loss:.6g} exceeds "
            f"{factor:g}x the trailing median {median:.6g}"
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the rollback-and-retry loop (see module docstring).

    ``window`` and ``min_history`` control the trailing-median explosion
    detector: the median is taken over the last ``window`` batch losses and
    only consulted once ``min_history`` of them exist (early losses are
    legitimately large and noisy).
    """

    max_retries: int = 3
    lr_factor: float = 0.5
    min_lr: float = 1e-6
    explosion_factor: float = 10.0
    window: int = 25
    min_history: int = 5

    def __post_init__(self):
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.lr_factor < 1.0:
            raise ValueError("lr_factor must be in (0, 1)")
        if self.explosion_factor <= 1.0:
            raise ValueError("explosion_factor must be > 1")
        if self.window < 1 or self.min_history < 1:
            raise ValueError("window and min_history must be >= 1")

    def backed_off_lr(self, lr: float) -> float:
        """The learning rate to retry with after one more failure."""
        return max(self.min_lr, lr * self.lr_factor)


class CircuitBreaker:
    """Consecutive-failure circuit for degraded-mode serving.

    The online engine (:mod:`repro.serve`) routes every model forward
    through one of these: after ``failure_threshold`` consecutive failures
    the circuit *opens* and requests are served by the classical fallback
    without touching the model at all — a crashed or pathological model
    must not take per-request exception overhead (or latency) with it.
    After ``cooldown_s`` the next request is let through as a probe
    (half-open); its outcome closes or re-opens the circuit.

    Every state transition (closed → open → half-open → …) is reported
    through the optional ``on_transition(from_state, to_state)`` callback —
    the serving engine forwards them as ``circuit_transition`` events on
    its :class:`repro.obs.MetricsSink`, so fleet dashboards can watch
    per-tenant breaker flaps.  The callback runs outside the breaker's
    lock; exceptions it raises are swallowed (observability must never
    alter circuit behaviour).

    Thread-safe; the clock is injectable for tests.
    """

    #: the three classical breaker states, as they appear in transitions
    STATES = ("closed", "open", "half_open")

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock if clock is not None else time.monotonic
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._state = "closed"
        self.opens = 0  # total open transitions, for observability

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    @property
    def state(self) -> str:
        """Current breaker state: ``closed`` / ``open`` / ``half_open``."""
        with self._lock:
            return self._state

    def _transition(self, to_state: str) -> Optional[tuple]:
        """Move to ``to_state`` (caller holds the lock); returns the edge."""
        if self._state == to_state:
            return None
        edge = (self._state, to_state)
        self._state = to_state
        return edge

    def _notify(self, edge: Optional[tuple]) -> None:
        """Fire the transition callback outside the lock; never raise."""
        if edge is None or self._on_transition is None:
            return
        try:
            self._on_transition(*edge)
        except Exception:
            pass  # observability must never alter circuit behaviour

    def allow(self) -> bool:
        """Whether the next request may try the model.

        True while closed; while open, True only once the cooldown elapsed
        (the half-open probe — its ``record_*`` outcome decides the rest).
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at >= self.cooldown_s:
                edge = self._transition("half_open")
                allowed = True
            else:
                edge, allowed = None, False
        self._notify(edge)
        return allowed

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            edge = self._transition("closed")
        self._notify(edge)

    def record_failure(self) -> None:
        edge = None
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                if self._opened_at is None:
                    self.opens += 1
                self._opened_at = self._clock()  # (re)start the cooldown
                edge = self._transition("open")
        self._notify(edge)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "open": self._opened_at is not None,
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "opens": self.opens,
            }
