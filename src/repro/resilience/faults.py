"""Fault injection for chaos drills: break training on purpose, verify recovery.

Three failure modes, mirroring what real multi-day traffic-model training
runs actually hit:

* :class:`NaNGradientFault` — poison one parameter gradient with NaN right
  after the backward pass, as a hardware glitch or numerical blow-up would.
  Exercises the gradient guards and the Trainer's rollback path.
* :class:`ProcessKillFault` — raise :class:`SimulatedCrash` after a chosen
  batch, standing in for OOM-kills and preemptions.  Exercises
  checkpoint/resume (``Trainer.fit(resume_from=...)``).
* :func:`inject_sensor_dropout` — silence a fraction of sensors from a
  random onset onwards (NaN in the raw series), standing in for dead
  detectors.  Exercises imputation + masked loss/metrics.

A :class:`FaultInjector` carrying the first two plugs into
``TrainerConfig.batch_hook``; sensor dropout instead rewrites the dataset
before training.  The ``python -m repro.harness chaos`` subcommand drives
all three and writes ``results/chaos_report.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from typing import Iterable, List, Optional

import numpy as np

from ..data.datasets import TrafficDataset
from ..data.imputation import impute_series
from ..data.scalers import StandardScaler


class SimulatedCrash(RuntimeError):
    """Deliberate process-death stand-in raised by :class:`ProcessKillFault`.

    Intentionally *not* a :class:`FloatingPointError`: the Trainer's
    divergence recovery must never swallow a kill — it has to escape so the
    caller restarts from the checkpoint, exactly like a real SIGKILL.
    """


@dataclass(frozen=True)
class NaNGradientFault:
    """Overwrite one gradient entry with NaN after backward at (epoch, batch)."""

    epoch: int
    batch: int
    parameter_index: int = 0


@dataclass(frozen=True)
class ProcessKillFault:
    """Raise :class:`SimulatedCrash` after the step at (epoch, batch)."""

    epoch: int
    batch: int


class FaultInjector:
    """Batch hook that fires each configured fault exactly once.

    Implements the ``TrainerConfig.batch_hook`` protocol:
    ``after_backward(trainer, epoch, batch)`` runs between ``backward()``
    and gradient clipping (where :class:`NaNGradientFault` strikes);
    ``after_batch(trainer, epoch, batch)`` runs after ``optimizer.step()``
    (where :class:`ProcessKillFault` strikes).  ``log`` records what fired,
    for assertions and the chaos report.
    """

    def __init__(self, faults: Iterable[object]):
        self.faults = list(faults)
        self._fired = set()
        self.log: List[dict] = []

    def _take(self, kind: type, epoch: int, batch: int):
        for fault in self.faults:
            if (
                isinstance(fault, kind)
                and fault.epoch == epoch
                and fault.batch == batch
                and id(fault) not in self._fired
            ):
                self._fired.add(id(fault))
                self.log.append(
                    {"fault": kind.__name__, "epoch": epoch, "batch": batch}
                )
                return fault
        return None

    def after_backward(self, trainer, epoch: int, batch: int) -> None:
        fault = self._take(NaNGradientFault, epoch, batch)
        if fault is None:
            return
        parameters = trainer.optimizer.parameters
        param = parameters[fault.parameter_index % len(parameters)]
        if param.grad is None:
            param.grad = np.zeros_like(param.data)
        param.grad.flat[0] = np.nan

    def after_batch(self, trainer, epoch: int, batch: int) -> None:
        fault = self._take(ProcessKillFault, epoch, batch)
        if fault is not None:
            raise SimulatedCrash(
                f"simulated process kill at epoch {epoch}, batch {batch}"
            )


def inject_sensor_dropout(
    dataset: TrafficDataset,
    rate: float = 0.2,
    seed: int = 0,
    impute_method: Optional[str] = "last",
) -> TrafficDataset:
    """Return a copy of ``dataset`` with a fraction of sensors gone dark.

    ``rate`` of the sensors are chosen once; in every split each dead sensor
    stops reporting at an independent random onset (somewhere in the first
    half of the split) and stays NaN to the end — the typical failure shape
    of a real detector.  The raw splits keep their NaNs so metrics and the
    masked loss can ignore the missing ground truth.

    With an ``impute_method`` (see :data:`repro.data.IMPUTE_METHODS`) the
    *scaled* model inputs are rebuilt from imputed series, with a fresh
    scaler fit on the imputed train split (NaNs would poison the statistics).
    With ``impute_method=None`` the NaNs flow straight into the scaled
    inputs via the original scaler — the negative control that demonstrates
    why the masked pipeline exists.
    """
    if not 0.0 < rate < 1.0:
        raise ValueError("rate must be in (0, 1)")
    rng = np.random.default_rng(seed)
    num_sensors = dataset.num_sensors
    num_dead = max(1, int(round(rate * num_sensors)))
    dead = rng.choice(num_sensors, size=num_dead, replace=False)

    def poison(raw: np.ndarray) -> np.ndarray:
        out = np.asarray(raw, dtype=np.float64).copy()
        horizon = out.shape[1]
        for sensor in dead:
            onset = int(rng.integers(0, max(1, horizon // 2)))
            out[sensor, onset:, :] = np.nan
        return out

    train_raw = poison(dataset.train_raw)
    val_raw = poison(dataset.val_raw)
    test_raw = poison(dataset.test_raw)

    if impute_method is None:
        scaler = dataset.scaler
        train, val, test = (
            scaler.transform(train_raw),
            scaler.transform(val_raw),
            scaler.transform(test_raw),
        )
    else:
        train_filled, _ = impute_series(train_raw, method=impute_method)
        val_filled, _ = impute_series(val_raw, method=impute_method)
        test_filled, _ = impute_series(test_raw, method=impute_method)
        scaler = StandardScaler().fit(train_filled)
        train, val, test = (
            scaler.transform(train_filled),
            scaler.transform(val_filled),
            scaler.transform(test_filled),
        )

    return dataclasses_replace(
        dataset,
        train=train,
        val=val,
        test=test,
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
    )
