"""Fault tolerance for long training runs: detect, persist, recover, drill.

Production traffic-forecasting training jobs run for hours to days; this
package makes the repro survive the failures such runs actually see:

* **Numerical anomalies** — :func:`repro.tensor.detect_anomaly` screens
  every op's forward output and incoming backward gradient for NaN/Inf and
  raises :class:`~repro.tensor.NumericalAnomalyError` naming the op and its
  creation site (re-exported here for convenience).
* **Divergence recovery** — :class:`RecoveryPolicy` tells the
  :class:`repro.training.Trainer` to roll back to the last good state,
  halve the learning rate and retry (bounded) instead of dying.
* **Checkpoint/resume** — full training state (weights, optimizer moments,
  RNG streams, early stopping, epoch counter) persists atomically via
  :mod:`repro.training.checkpoint`; ``Trainer.fit(resume_from=...)``
  continues bit-exactly.
* **Fault drills** — :mod:`repro.resilience.faults` injects NaN gradients,
  simulated process kills and sensor dropout; ``python -m repro.harness
  chaos`` runs the full drill suite and writes ``results/chaos_report.json``.

See DESIGN.md section "Resilience" for the architecture.
"""

from ..tensor import NumericalAnomalyError, detect_anomaly
from .faults import (
    FaultInjector,
    NaNGradientFault,
    ProcessKillFault,
    SimulatedCrash,
    inject_sensor_dropout,
)
from .recovery import CircuitBreaker, LossExplosionError, RecoveryPolicy

__all__ = [
    "NumericalAnomalyError",
    "detect_anomaly",
    "LossExplosionError",
    "RecoveryPolicy",
    "CircuitBreaker",
    "SimulatedCrash",
    "NaNGradientFault",
    "ProcessKillFault",
    "FaultInjector",
    "inject_sensor_dropout",
]
