"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate of the reproduction: the paper's
artifact is built on PyTorch, which is unavailable offline, so we implement
the subset of autograd needed to train every model in the paper from scratch.

The design mirrors the classic tape-based approach:

* A :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional gradient.
* Every differentiable operation records its parents and a closure that
  propagates the incoming gradient to them.
* :meth:`Tensor.backward` topologically sorts the recorded graph and runs the
  closures in reverse order.

Only float64 is used.  Training at the scale of this reproduction is
CPU-bound either way, and float64 makes the numerical gradient checks in
:mod:`repro.tensor.gradcheck` precise enough to validate every op tightly.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


class _GradState(threading.local):
    """Per-thread autodiff mode flags (``__init__`` runs once per thread).

    Thread-local on purpose: the process serves and trains concurrently
    (a :class:`repro.serve.MicroBatcher` worker runs forwards under
    :class:`inference_mode` while :class:`repro.fleet.FleetManager`
    fine-tunes on another thread), and a shared flag with save/restore
    semantics is not reentrant across threads — interleaved exits can
    leave graph recording stuck off for everyone.
    """

    def __init__(self):
        self.grad_enabled = True
        self.inference_mode = False


_state = _GradState()


class no_grad:
    """Context manager that disables graph recording (like ``torch.no_grad``).

    Scoped to the entering thread, as in torch: other threads keep
    recording.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _state.grad_enabled
        _state.grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _state.grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether this thread records operations on the autograd tape."""
    return _state.grad_enabled


class inference_mode(no_grad):
    """The serving fast path: ``no_grad`` plus zero per-op bookkeeping.

    Beyond disabling graph recording, ops executed inside this context skip
    the trace/anomaly wrapper entirely (:func:`repro.tensor.ops.set_op_trace`
    hooks and :func:`detect_anomaly` screens see nothing), so a forward pass
    costs exactly its NumPy arithmetic.  Online inference
    (:mod:`repro.serve`) runs every model forward under this context; its
    own request-level metrics replace op-level tracing there.  Like
    :class:`no_grad`, the mode is per-thread.
    """

    def __enter__(self) -> "inference_mode":
        super().__enter__()
        self._prev_inference = _state.inference_mode
        _state.inference_mode = True
        return self

    def __exit__(self, *exc) -> None:
        super().__exit__(*exc)
        _state.inference_mode = self._prev_inference


def is_inference_mode_enabled() -> bool:
    """Return whether the serving fast path is active on this thread."""
    return _state.inference_mode


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...], out: Optional[np.ndarray] = None) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting replicates values along new or size-1 axes during the
    forward pass; the adjoint of replication is summation, so the backward
    pass must reduce the gradient back to the original operand shape.

    All broadcast axes (leading axes added by broadcasting plus interior
    size-1 axes) are reduced in a single ``np.add.reduce`` call; the final
    reshape restores the kept-as-1 dimensions.  When ``out`` is given (an
    array of exactly ``shape``) the reduced gradient is accumulated into it
    in place and ``out`` is returned.
    """
    if grad.shape == shape:
        if out is not None:
            out += grad
            return out
        return grad
    extra = grad.ndim - len(shape)
    axes = tuple(range(extra)) + tuple(
        i + extra for i, n in enumerate(shape) if n == 1 and grad.shape[i + extra] != 1
    )
    reduced = np.add.reduce(grad, axis=axes) if axes else grad
    if out is not None:
        out += reduced.reshape(shape)
        return out
    return np.ascontiguousarray(reduced).reshape(shape)


#: hook(nbytes) called whenever the engine allocates a fresh gradient buffer
#: (a defensive copy or a zero-fill); installed by ``repro.obs.profile`` to
#: count the allocations that in-place accumulation is meant to avoid.
_grad_alloc_hook: Optional[Callable[[int], None]] = None


def set_grad_alloc_hook(hook: Optional[Callable[[int], None]]) -> Optional[Callable[[int], None]]:
    """Install (or clear, with ``None``) the gradient-allocation hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _grad_alloc_hook
    previous = _grad_alloc_hook
    _grad_alloc_hook = hook
    return previous


class Tensor:
    """A NumPy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``numpy.ndarray``.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(_as_array(data), dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({self.data!r}{grad_flag}{label})"

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction / backward
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node from an op's output (internal helper for ops)."""
        if not _state.grad_enabled:
            # no_grad / inference_mode: no parents scan, no closure retained
            return Tensor(data)
        parents = tuple(parents)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Accumulate ``grad`` into :attr:`grad` in place.

        ``own=True`` asserts that ``grad`` is a freshly allocated, writable
        float64 array that the calling backward closure will never touch
        again (e.g. the result of ``grad * b.data``) — it is then adopted
        directly as the gradient buffer instead of being copied.  Arrays
        that alias anything persistent (the upstream gradient itself, views
        of it, ``np.broadcast_to`` results) must pass ``own=False``.
        """
        shape = self.data.shape
        if not isinstance(grad, np.ndarray) or grad.dtype != np.float64:
            grad = np.asarray(grad, dtype=np.float64)
            own = False
        buf = self.grad
        if buf is not None:
            unbroadcast(grad, shape, out=buf)
            return
        if grad.shape != shape:
            self.grad = unbroadcast(grad, shape)
            return
        if own:
            self.grad = grad
            return
        self.grad = grad.copy()
        if _grad_alloc_hook is not None:
            _grad_alloc_hook(self.grad.nbytes)

    def _grad_buffer(self) -> np.ndarray:
        """Return :attr:`grad`, zero-filling it first if unset.

        Scatter-style backward closures (``getitem``, ``gather``) write
        directly into this buffer with ``+=`` / ``np.add.at`` instead of
        materializing a full-size temporary per call.
        """
        buf = self.grad
        if buf is None:
            buf = self.grad = np.zeros(self.data.shape)
            if _grad_alloc_hook is not None:
                _grad_alloc_hook(buf.nbytes)
        return buf

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Gradients are accumulated into :attr:`grad` of every tensor that
        requires grad.  Gradients of intermediate (non-leaf) nodes are freed
        as soon as they have been propagated, keeping peak memory low.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            1 for scalar tensors; required for non-scalars.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        order = self._topological_order()  # children-first, self at index 0
        self._accumulate(grad)
        # Children-first order guarantees every node's gradient is complete
        # (all children processed) before its own closure runs.
        for node in order:
            if node._backward_fn is None:
                continue
            if node.grad is None:
                continue
            node._backward_fn(node.grad)
            node.grad = None  # free intermediate gradient memory

    def _topological_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # operator overloads — implemented in repro.tensor.ops
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from . import ops

        return ops.getitem(self, index)

    # convenience methods mirroring the functional API ------------------- #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes) -> "Tensor":
        from . import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes or None)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        from . import ops

        return ops.swapaxes(self, axis1, axis2)

    def exp(self) -> "Tensor":
        from . import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from . import ops

        return ops.log(self)

    def tanh(self) -> "Tensor":
        from . import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from . import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        from . import ops

        return ops.relu(self)

    def sqrt(self) -> "Tensor":
        from . import ops

        return ops.sqrt(self)

    def abs(self) -> "Tensor":
        from . import ops

        return ops.abs(self)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor of ``shape``."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """Return a one-filled tensor of ``shape``."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
