"""Numerical anomaly detection for the autodiff substrate.

Opt-in NaN/Inf screening of every traced op, modeled on
``torch.autograd.set_detect_anomaly``: inside a :func:`detect_anomaly`
context each primitive in :mod:`repro.tensor.ops` checks its forward output
and, on the backward pass, the upstream gradient entering its closure.  The
first non-finite value raises :class:`NumericalAnomalyError` carrying the op
name, the pass it surfaced in, and — for backward anomalies — the Python
stack captured when the offending op ran *forward* (its creation trace), so
a NaN discovered deep in backprop points at the forward line that built the
node.

The checks ride the same per-op wrapper the :mod:`repro.obs` profiler uses
(``repro.tensor.ops._traced``); with no context active the cost is one
global ``None`` check per op call.  With a context active every op pays an
``np.isfinite().all()`` scan plus (by default) a stack capture, so this is
a debugging/fault-tolerance tool, not a production default — the
:class:`repro.training.Trainer` enables it via
``TrainerConfig.detect_anomaly`` and the recovery policy treats the raised
error as a divergence signal.
"""

from __future__ import annotations

import traceback
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np


class NumericalAnomalyError(FloatingPointError):
    """A traced op produced or received non-finite values.

    Subclasses :class:`FloatingPointError` so existing divergence handling
    (the Trainer's NaN-loss guard, :class:`repro.resilience.RecoveryPolicy`)
    catches both through one ``except FloatingPointError``.
    """

    def __init__(
        self,
        op_name: str,
        phase: str,
        kind: str,
        creation_trace: Optional[str] = None,
    ):
        self.op_name = op_name
        self.phase = phase
        self.kind = kind
        self.creation_trace = creation_trace
        message = f"non-finite values ({kind}) in {phase} of op '{op_name}'"
        if creation_trace:
            message += f"\n--- forward creation trace of '{op_name}' ---\n{creation_trace}"
        super().__init__(message)


def _kind(data: np.ndarray) -> str:
    if np.isnan(data).any():
        return "nan"
    return "inf"


class AnomalyDetector:
    """The per-context state :func:`detect_anomaly` installs into the ops layer.

    ``record_traces`` controls whether a (costly) stack snapshot is taken at
    every forward op so backward anomalies can name their origin; turn it
    off to keep detection cheap when only the op name matters.
    """

    def __init__(
        self,
        check_forward: bool = True,
        check_backward: bool = True,
        record_traces: bool = True,
        stack_limit: int = 10,
    ):
        self.check_forward = check_forward
        self.check_backward = check_backward
        self.record_traces = record_traces
        self.stack_limit = stack_limit

    def _capture(self) -> str:
        # drop the two innermost frames (this method and the ops wrapper)
        frames = traceback.extract_stack(limit=self.stack_limit + 2)[:-2]
        return "".join(traceback.format_list(frames))

    def after_forward(self, name: str, data: np.ndarray) -> Optional[str]:
        """Check a forward output; returns the creation trace to attach."""
        if self.check_forward and not np.isfinite(data).all():
            trace = self._capture() if self.record_traces else None
            raise NumericalAnomalyError(name, "forward", _kind(data), trace)
        if self.check_backward and self.record_traces:
            return self._capture()
        return None

    def check_grad(self, name: str, grad: np.ndarray, creation_trace: Optional[str]) -> None:
        """Check the upstream gradient entering an op's backward closure."""
        if self.check_backward and not np.isfinite(grad).all():
            raise NumericalAnomalyError(name, "backward", _kind(grad), creation_trace)


def is_anomaly_detection_enabled() -> bool:
    """True while a :func:`detect_anomaly` context is active."""
    from . import ops

    return ops.anomaly_check_active() is not None


@contextmanager
def detect_anomaly(
    check_forward: bool = True,
    check_backward: bool = True,
    record_traces: bool = True,
) -> Iterator[AnomalyDetector]:
    """Screen every traced op for NaN/Inf while the context is active.

    Nested contexts stack; the innermost detector wins while it is active
    (mirroring :func:`repro.obs.profile`).
    """
    from . import ops

    detector = AnomalyDetector(
        check_forward=check_forward,
        check_backward=check_backward,
        record_traces=record_traces,
    )
    previous = ops.set_anomaly_check(detector)
    try:
        yield detector
    finally:
        ops.set_anomaly_check(previous)
