"""Numerical gradient checking for the autodiff engine.

Every differentiable op and composite layer in the repository is validated
against central finite differences.  float64 everywhere makes a tolerance of
~1e-6 attainable for smooth ops.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    ``func`` must be deterministic.  Raises ``AssertionError`` with a
    diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )


def check_fastpath_suite(seed: int = 0) -> int:
    """Gradient-check every optimized backward fast path in one sweep.

    Covers the fused ``linear`` (with and without bias), ``gather`` (unique
    and duplicated lanes), and every ``getitem`` scatter regime: basic
    slices, negative steps, ellipsis, identity slices, and duplicated
    advanced index arrays.  Returns the number of cases checked; raises
    ``AssertionError`` on the first mismatch.  Used by the op test suite and
    ``python -m repro.harness bench`` as a cheap correctness gate before
    timing the kernels.
    """
    from . import ops

    rng = np.random.default_rng(seed)

    def t(shape):
        return Tensor(rng.standard_normal(shape), requires_grad=True)

    cases = [
        ("linear", lambda: check_gradients(ops.linear, [t((3, 4)), t((4, 5))])),
        ("linear-bias", lambda: check_gradients(ops.linear, [t((2, 3, 4)), t((4, 5)), t((5,))])),
        ("linear-1d-x", lambda: check_gradients(ops.linear, [t((4,)), t((4, 5)), t((5,))])),
        (
            "gather-unique",
            lambda: check_gradients(
                lambda x: ops.gather(x, 1, np.array([[0], [2], [1]])), [t((3, 4))]
            ),
        ),
        (
            "gather-duplicates",
            lambda: check_gradients(
                lambda x: ops.gather(x, 1, np.array([[0, 0, 3], [2, 2, 2], [1, 0, 1]])), [t((3, 4))]
            ),
        ),
        (
            "gather-axis0",
            lambda: check_gradients(
                lambda x: ops.gather(x, 0, np.array([[1, 0, 2, 1]])), [t((3, 4))]
            ),
        ),
        ("getitem-int", lambda: check_gradients(lambda x: ops.getitem(x, 1), [t((3, 4))])),
        ("getitem-slice", lambda: check_gradients(lambda x: ops.getitem(x, slice(0, 2)), [t((4, 3))])),
        (
            "getitem-negative-step",
            lambda: check_gradients(lambda x: ops.getitem(x, slice(None, None, -2)), [t((5, 3))]),
        ),
        (
            "getitem-ellipsis",
            lambda: check_gradients(lambda x: ops.getitem(x, (Ellipsis, slice(1, 3))), [t((2, 3, 4))]),
        ),
        ("getitem-identity", lambda: check_gradients(lambda x: ops.getitem(x, slice(None)), [t((3, 4))])),
        (
            "getitem-duplicate-fancy",
            lambda: check_gradients(lambda x: ops.getitem(x, np.array([0, 2, 2, 0])), [t((4, 3))]),
        ),
        (
            "getitem-mixed-tuple",
            lambda: check_gradients(
                lambda x: ops.getitem(x, (slice(None), 1, slice(None, None, -1))), [t((2, 3, 4))]
            ),
        ),
    ]
    for name, case in cases:
        try:
            case()
        except AssertionError as error:
            raise AssertionError(f"fast-path gradcheck {name!r} failed: {error}") from error
    return len(cases)
