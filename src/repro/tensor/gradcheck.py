"""Numerical gradient checking for the autodiff engine.

Every differentiable op and composite layer in the repository is validated
against central finite differences.  float64 everywhere makes a tolerance of
~1e-6 attainable for smooth ops.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    ``func`` must be deterministic.  Raises ``AssertionError`` with a
    diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
