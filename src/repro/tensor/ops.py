"""Differentiable primitive operations for :class:`repro.tensor.Tensor`.

Every function takes tensors (or array-likes) and returns a new tensor whose
backward closure routes gradients to the inputs.  Broadcasting follows NumPy
semantics; the adjoint of broadcasting (summation back to the operand shape)
is handled centrally by ``Tensor._accumulate`` via ``unbroadcast``.

Backward closures follow two hot-path conventions (see
``Tensor._accumulate``):

* a closure that allocates a fresh gradient array (``grad * b.data``,
  ``grad @ W.T``, …) passes ``own=True`` so the engine adopts the array as
  the gradient buffer instead of copying it;
* a closure that merely forwards the upstream gradient or a view of it
  (``add``, ``reshape``, ``transpose``, slices) passes ``own=False`` —
  the engine copies on first accumulation and ``+=``-s afterwards.

Scatter-style backward (``getitem``, ``gather``) writes straight into the
parent's preallocated buffer (``Tensor._grad_buffer``) with slice-``+=`` or
``np.add.at``, never materializing a full-size temporary.

Every primitive here is wrapped with an optional trace hook (installed via
:func:`set_op_trace`, normally by ``repro.obs.profile``) that reports per-op
wall time, FLOP estimates and output bytes for forward and backward passes.
With no hook installed the wrapper is a single global ``None`` check.
"""

from __future__ import annotations

import builtins
import time as _time
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from . import tensor as tensor_module
from .tensor import ArrayLike, Tensor, as_tensor

Axis = Union[None, int, Tuple[int, ...]]


# --------------------------------------------------------------------- #
# elementwise arithmetic
# --------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a + b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad)
        if b.requires_grad:
            b._accumulate(grad)

    return Tensor._make(out_data, (a, b), backward)


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a - b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad)
        if b.requires_grad:
            b._accumulate(np.negative(grad), own=True)

    return Tensor._make(out_data, (a, b), backward)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a * b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * b.data, own=True)
        if b.requires_grad:
            b._accumulate(grad * a.data, own=True)

    return Tensor._make(out_data, (a, b), backward)


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise ``a / b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / b.data, own=True)
        if b.requires_grad:
            b._accumulate(-grad * a.data / (b.data * b.data), own=True)

    return Tensor._make(out_data, (a, b), backward)


def neg(a: ArrayLike) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.negative(grad), own=True)

    return Tensor._make(-a.data, (a,), backward)


def power(a: ArrayLike, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a scalar exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * exponent * a.data ** (exponent - 1.0), own=True)

    return Tensor._make(out_data, (a,), backward)


def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data, own=True)

    return Tensor._make(out_data, (a,), backward)


def log(a: ArrayLike) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / a.data, own=True)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a: ArrayLike) -> Tensor:
    """Elementwise square root."""
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * 0.5 / out_data, own=True)

    return Tensor._make(out_data, (a,), backward)


def abs(a: ArrayLike) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient 0 at 0)."""
    a = as_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * np.sign(a.data), own=True)

    return Tensor._make(out_data, (a,), backward)


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first operand."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * a_wins, own=True)
        if b.requires_grad:
            b._accumulate(grad * ~a_wins, own=True)

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; ties route the gradient to the first operand."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.minimum(a.data, b.data)
    a_wins = a.data <= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * a_wins, own=True)
        if b.requires_grad:
            b._accumulate(grad * ~a_wins, own=True)

    return Tensor._make(out_data, (a, b), backward)


def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is 1 inside, 0 outside."""
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    inside = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * inside, own=True)

    return Tensor._make(out_data, (a,), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is data)."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * cond, own=True)
        if b.requires_grad:
            b._accumulate(grad * ~cond, own=True)

    return Tensor._make(out_data, (a, b), backward)


def huber(a: ArrayLike, delta: float = 1.0) -> Tensor:
    """Elementwise Huber penalty of a residual: quadratic inside ``delta``.

    ``0.5 * a**2`` where ``|a| <= delta``, ``delta * (|a| - 0.5 * delta)``
    outside.  The region mask is internal to the op (recomputed from the
    input in backward), which keeps the loss a pure function of its tensor
    arguments — unlike the old ``where(abs(a).data <= delta, ...)``
    composite whose Python-level condition array was opaque to both the
    trace hook and the compile capture.
    """
    a = as_tensor(a)
    delta = float(delta)
    abs_data = np.abs(a.data)
    inside = abs_data <= delta
    out_data = np.where(inside, (0.5 * a.data) * a.data, delta * (abs_data - 0.5 * delta))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(inside, grad * a.data, (grad * delta) * np.sign(a.data)), own=True)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------- #
def tanh(a: ArrayLike) -> Tensor:
    """Hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out_data * out_data), own=True)

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid."""
    a = as_tensor(a)
    x = a.data
    out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data), own=True)

    return Tensor._make(out_data, (a,), backward)


def relu(a: ArrayLike) -> Tensor:
    """Rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask, own=True)

    return Tensor._make(out_data, (a,), backward)


def leaky_relu(a: ArrayLike, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    a = as_tensor(a)
    positive = a.data > 0
    scale = np.where(positive, 1.0, negative_slope)
    out_data = a.data * scale

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * scale, own=True)

    return Tensor._make(out_data, (a,), backward)


def softplus(a: ArrayLike) -> Tensor:
    """Numerically stable ``log(1 + exp(a))``."""
    a = as_tensor(a)
    x = a.data
    out_data = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
    sig = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * sig, own=True)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# linear algebra
# --------------------------------------------------------------------- #
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product with NumPy batching semantics (``a @ b``).

    The backward pass multiplies against ``swapaxes`` *views* (never
    materialized transposes) and, for the ubiquitous ``(..., m, n) @ (n, k)``
    shared-weight case, collapses the batch into a single
    ``(M, n)^T @ (M, k)`` GEMM instead of a batched product followed by a
    broadcast reduction.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if b.data.ndim == 1:
                # (..., n) @ (n,) -> (...,): d/da = grad ⊗ b
                a._accumulate(grad[..., None] * b.data, own=True)
            else:
                a._accumulate(grad @ np.swapaxes(b.data, -1, -2), own=True)
        if b.requires_grad:
            if a.data.ndim == 1:
                # (n,) @ (..., n, k) -> (..., k): d/db = a ⊗ grad
                b._accumulate(a.data[:, None] * grad[..., None, :], own=True)
            elif b.data.ndim == 1:
                # (..., m, n) @ (n,) -> (..., m): d/db = sum over batch of aᵀ grad
                b._accumulate(a.data * grad[..., None], own=True)
            elif b.data.ndim == 2 and grad.ndim > 2:
                # shared weight: one flat GEMM replaces batched matmul + sum
                flat_a = a.data.reshape(-1, a.data.shape[-1])
                flat_g = grad.reshape(-1, grad.shape[-1])
                b._accumulate(flat_a.T @ flat_g, own=True)
            else:
                b._accumulate(np.swapaxes(a.data, -1, -2) @ grad, own=True)

    return Tensor._make(out_data, (a, b), backward)


def linear(x: ArrayLike, weight: ArrayLike, bias: Optional[ArrayLike] = None) -> Tensor:
    """Fused affine map ``x @ W + b`` for a shared 2-D weight.

    One forward GEMM (the bias is added in place into the product buffer)
    and one backward pass producing all three gradients:

    * ``dx = grad @ W^T`` (``swapaxes`` view, no transpose copy),
    * ``dW = x_flat^T @ grad_flat`` — a single GEMM over the collapsed
      batch, never the batched outer-product + reduction ``matmul`` takes,
    * ``db = grad_flat.sum(axis=0)`` via one ``np.add.reduce``.

    Per-sample generated weights (``W.ndim != 2``) are not fused — use
    ``matmul``/``add`` (or :func:`repro.tensor.functional.linear`, which
    dispatches) for those.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if weight.data.ndim != 2:
        raise ValueError(f"linear expects a 2-D weight, got shape {weight.data.shape}")
    bias_t = as_tensor(bias) if bias is not None else None
    out_data = x.data @ weight.data
    if bias_t is not None:
        out_data += bias_t.data
    in_features, out_features = weight.data.shape

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ weight.data.T, own=True)
        if weight.requires_grad:
            flat_x = x.data.reshape(-1, in_features)
            flat_g = grad.reshape(-1, out_features)
            weight._accumulate(flat_x.T @ flat_g, own=True)
        if bias_t is not None and bias_t.requires_grad:
            if bias_t.data.shape == (out_features,):
                flat_g = grad.reshape(-1, out_features)
                bias_t._accumulate(np.add.reduce(flat_g, axis=0), own=True)
            else:
                bias_t._accumulate(grad)  # unusual bias shape: generic unbroadcast

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)
    return Tensor._make(out_data, parents, backward)


def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    """Permute axes (reverse order when ``axes`` is None)."""
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.transpose(grad, inverse))

    return Tensor._make(out_data, (a,), backward)


def swapaxes(a: ArrayLike, axis1: int, axis2: int) -> Tensor:
    """Interchange two axes."""
    a = as_tensor(a)
    out_data = np.swapaxes(a.data, axis1, axis2)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.swapaxes(grad, axis1, axis2))

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# shape manipulation
# --------------------------------------------------------------------- #
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Reshape without copying semantics (gradient reshapes back)."""
    a = as_tensor(a)
    out_data = a.data.reshape(shape)
    original = a.data.shape

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(original))

    return Tensor._make(out_data, (a,), backward)


#: index components that keep NumPy in *basic* (view, duplicate-free) mode
_BASIC_INDEX_TYPES = (int, np.integer, slice, type(Ellipsis), type(None))


def _is_basic_index(index) -> bool:
    """True when ``index`` triggers basic (non-fancy) NumPy indexing.

    Basic indices select each source element at most once, so the gradient
    scatter can be a direct ``buffer[index] += grad`` instead of the much
    slower duplicate-safe ``np.add.at``.
    """
    if isinstance(index, tuple):
        return all(isinstance(part, _BASIC_INDEX_TYPES) for part in index)
    return isinstance(index, _BASIC_INDEX_TYPES)


def _is_identity_index(index) -> bool:
    """True when ``index`` selects the whole array unchanged (``x[:]``, ``x[...]``)."""
    full = slice(None)
    if index is Ellipsis or (isinstance(index, slice) and index == full):
        return True
    if isinstance(index, tuple):
        return all(part is Ellipsis or (isinstance(part, slice) and part == full) for part in index)
    return False


def getitem(a: ArrayLike, index) -> Tensor:
    """Index ``a``; the gradient scatters back into the parent's buffer.

    Basic indices (ints/slices/ellipsis — never duplicated) use direct
    slice-``+=`` into the preallocated gradient buffer; genuinely advanced
    (possibly duplicated) index arrays fall back to ``np.add.at``.  Identity
    indices pass the gradient through, and an all-zero upstream gradient
    skips the scatter entirely.
    """
    a = as_tensor(a)
    out_data = a.data[index]
    basic = _is_basic_index(index)
    identity = basic and _is_identity_index(index)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        if identity:
            a._accumulate(grad)
            return
        buf = a._grad_buffer()
        if not grad.any():
            return  # scattering zeros is a no-op (buffer already exists)
        if basic:
            buf[index] += grad
        else:
            np.add.at(buf, index, grad)

    return Tensor._make(out_data, (a,), backward)


def gather(a: ArrayLike, axis: int, index: np.ndarray) -> Tensor:
    """Select along ``axis`` with ``np.take_along_axis`` semantics.

    ``index`` must be an integer array with ``index.ndim == a.ndim`` (sizes
    match ``a`` except along ``axis``).  The backward scatter uses
    ``np.put_along_axis`` (read-add-write) whenever no lane of ``index``
    repeats a source position — decided once at forward time — and falls
    back to duplicate-safe ``np.add.at`` otherwise.  This is the op behind
    per-node parameter selection in the decoders.
    """
    a = as_tensor(a)
    idx = np.asarray(index)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"gather index must be integer, got dtype {idx.dtype}")
    if idx.ndim != a.data.ndim:
        raise ValueError(f"gather index ndim {idx.ndim} != input ndim {a.data.ndim}")
    axis = axis % a.data.ndim if a.data.ndim else 0
    out_data = np.take_along_axis(a.data, idx, axis=axis)
    if idx.shape[axis] <= 1:
        lanes_unique = True
    else:
        ordered = np.sort(idx, axis=axis)
        keep = [slice(None)] * idx.ndim
        drop = list(keep)
        keep[axis], drop[axis] = slice(1, None), slice(None, -1)
        lanes_unique = not bool((ordered[tuple(keep)] == ordered[tuple(drop)]).any())

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        buf = a._grad_buffer()
        if lanes_unique:
            np.put_along_axis(buf, idx, np.take_along_axis(buf, idx, axis=axis) + grad, axis=axis)
        else:
            grids = list(np.ogrid[tuple(slice(n) for n in idx.shape)])
            grids[axis] = idx
            np.add.at(buf, tuple(grids), grad)

    return Tensor._make(out_data, (a,), backward)


def concat(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    axis = axis % out_data.ndim
    # precompute one slice tuple per input; the backward just applies them
    lead = (slice(None),) * axis
    offsets = np.cumsum([0] + [t.data.shape[axis] for t in tensors])
    slices = [lead + (slice(int(start), int(stop)),) for start, stop in zip(offsets[:-1], offsets[1:])]

    def backward(grad: np.ndarray) -> None:
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(grad[piece])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    return Tensor._make(out_data, tensors, backward)


def pad(a: ArrayLike, pad_width: Sequence[Tuple[int, int]]) -> Tensor:
    """Zero-pad; the gradient slices the padding away."""
    a = as_tensor(a)
    out_data = np.pad(a.data, pad_width)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            index = tuple(slice(before, grad.shape[i] - after) for i, (before, after) in enumerate(pad_width))
            a._accumulate(grad[index])

    return Tensor._make(out_data, (a,), backward)


def broadcast_to(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Broadcast to ``shape``; the gradient sums back (via unbroadcast)."""
    a = as_tensor(a)
    out_data = np.broadcast_to(a.data, shape).copy()

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad)  # unbroadcast happens in _accumulate

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------- #
def _expand_reduced(grad: np.ndarray, shape: Tuple[int, ...], axis: Axis, keepdims: bool) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(grad, shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(ax % len(shape) for ax in axes)
    if not keepdims:
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


def sum(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over ``axis``."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.data.shape, axis, keepdims))

    return Tensor._make(out_data, (a,), backward)


def mean(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis``."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size / builtins.max(out_data.size, 1)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.data.shape, axis, keepdims) / count, own=True)

    return Tensor._make(out_data, (a,), backward)


def var(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased variance over ``axis`` (composite, fully differentiable)."""
    a = as_tensor(a)
    centered = sub(a, mean(a, axis=axis, keepdims=True))
    return mean(mul(centered, centered), axis=axis, keepdims=keepdims)


def max(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over ``axis``; gradient splits evenly across ties."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded_max = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == expanded_max).astype(np.float64)
    mask /= mask.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.data.shape, axis, keepdims) * mask, own=True)

    return Tensor._make(out_data, (a,), backward)


def min(a: ArrayLike, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Minimum over ``axis``; gradient splits evenly across ties."""
    return neg(max(neg(a), axis=axis, keepdims=keepdims))


# --------------------------------------------------------------------- #
# softmax / normalization primitives
# --------------------------------------------------------------------- #
def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            # dL/dx = s * (g - sum(g * s))
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (grad - inner), own=True)

    return Tensor._make(out_data, (a,), backward)


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True), own=True)

    return Tensor._make(out_data, (a,), backward)


def dropout_mask(a: ArrayLike, mask: np.ndarray) -> Tensor:
    """Apply a fixed (already scaled) dropout mask; gradient uses same mask."""
    a = as_tensor(a)
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask, own=True)

    return Tensor._make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# op tracing (the repro.obs hook point)
# --------------------------------------------------------------------- #
#: hook(name, phase, seconds, flops, nbytes) or None when tracing is off
TraceHook = Callable[[str, str, float, float, int], None]

_trace_hook: Optional[TraceHook] = None

#: an AnomalyDetector (see repro.tensor.anomaly) or None when screening is off
_anomaly_check = None


def set_op_trace(hook: Optional[TraceHook]) -> Optional[TraceHook]:
    """Install (or clear, with ``None``) the global op trace hook.

    Returns the previously installed hook so callers can restore it —
    ``repro.obs.profile`` uses this to support nested profiling contexts.
    """
    global _trace_hook
    previous = _trace_hook
    _trace_hook = hook
    return previous


def op_trace_active() -> bool:
    """Whether an op trace hook (``repro.obs.profile``) is installed."""
    return _trace_hook is not None


def set_anomaly_check(detector):
    """Install (or clear, with ``None``) the global NaN/Inf screen.

    ``detector`` is a :class:`repro.tensor.anomaly.AnomalyDetector`; returns
    the previously installed one so :func:`repro.tensor.detect_anomaly` can
    nest contexts.
    """
    global _anomaly_check
    previous = _anomaly_check
    _anomaly_check = detector
    return previous


def anomaly_check_active():
    """The detector of the innermost active ``detect_anomaly`` context, if any."""
    return _anomaly_check


#: a CaptureRecorder (see repro.compile.capture) or None when capture is off.
#: Installed by CompiledExecutor around a single trace step; every traced
#: primitive reports (name, args, kwargs, out) so the recorder can rebuild
#: the op stream as a replayable linear program.
_op_capture = None


def set_op_capture(recorder):
    """Install (or clear, with ``None``) the global op-capture recorder.

    Returns the previously installed recorder so callers can restore it.
    Capture composes with the trace hook and the anomaly screen, but it
    does *not* see ops executed under ``inference_mode`` (the wrapper is
    bypassed entirely there) — compiled predict traces run under
    ``no_grad`` instead.
    """
    global _op_capture
    previous = _op_capture
    _op_capture = recorder
    return previous


def op_capture_active() -> bool:
    """Whether a compile-capture recorder is installed."""
    return _op_capture is not None


def notify_host_input(value: np.ndarray, regen=None) -> np.ndarray:
    """Declare ``value`` a per-step host-generated input (RNG draw, mask).

    Modules that feed freshly generated NumPy arrays into traced ops each
    step (latent noise, dropout masks) call this right after drawing.  With
    no capture active it is a no-op returning ``value``.  Under capture the
    recorder registers the array so the plan treats it as a per-step input
    rather than a frozen constant; ``regen``, when given, is a closure that
    re-draws the value from the same generator so replay reproduces the
    serial RNG stream bit-exactly.
    """
    if _op_capture is not None:
        _op_capture.record_host_input(value, regen)
    return value


def notify_compile_unsupported(reason: str) -> None:
    """Declare that the current step has Python-level state the compiler
    cannot replay (running-stat updates, data-dependent masks).

    No-op unless a capture is active; under capture the recorder marks the
    trace dead so the executor permanently falls back to the interpreted
    path for this signature.
    """
    if _op_capture is not None:
        _op_capture.mark_unsupported(reason)


#: FLOPs per *output* element for elementwise ops (rough analytic costs;
#: transcendentals are charged a few flops, data movement is free)
_ELEMENTWISE_FLOPS = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,
    "div": 1.0,
    "neg": 1.0,
    "power": 2.0,
    "exp": 4.0,
    "log": 4.0,
    "sqrt": 2.0,
    "abs": 1.0,
    "maximum": 1.0,
    "minimum": 1.0,
    "clip": 2.0,
    "where": 1.0,
    "huber": 4.0,
    "tanh": 6.0,
    "sigmoid": 6.0,
    "relu": 1.0,
    "leaky_relu": 2.0,
    "softplus": 8.0,
    "softmax": 8.0,
    "log_softmax": 8.0,
    "dropout_mask": 1.0,
    # data movement: no arithmetic
    "transpose": 0.0,
    "swapaxes": 0.0,
    "reshape": 0.0,
    "getitem": 0.0,
    "gather": 0.0,
    "concat": 0.0,
    "stack": 0.0,
    "pad": 0.0,
    "broadcast_to": 0.0,
}

#: reductions are charged one flop per *input* element
_REDUCTION_OPS = frozenset({"sum", "mean", "max"})


def _operand_size(value: ArrayLike) -> int:
    if isinstance(value, Tensor):
        return value.data.size
    return int(np.size(value))


def _estimate_flops(name: str, out_data: np.ndarray, args: tuple) -> float:
    """Analytic forward-FLOP estimate for one traced op call."""
    if name in ("matmul", "linear"):
        a = args[0]
        inner = (a.data if isinstance(a, Tensor) else np.asarray(a)).shape[-1]
        return 2.0 * float(out_data.size) * float(inner)
    if name in _REDUCTION_OPS and args:
        return float(_operand_size(args[0]))
    return float(out_data.size) * _ELEMENTWISE_FLOPS.get(name, 1.0)


def _traced(name: str, fn):
    """Wrap a primitive so an active trace hook (and/or the anomaly screen)
    sees forward and backward."""

    def wrapper(*args, **kwargs):
        hook = _trace_hook
        anomaly = _anomaly_check
        capture = _op_capture
        if (hook is None and anomaly is None and capture is None) or tensor_module._state.inference_mode:
            return fn(*args, **kwargs)
        if hook is None and anomaly is None:
            # capture-only fast path: record the call, skip timing/screening
            out = fn(*args, **kwargs)
            capture.record_op(name, args, kwargs, out)
            return out
        start = _time.perf_counter()
        out = fn(*args, **kwargs)
        if hook is not None:
            elapsed = _time.perf_counter() - start
            nbytes = int(out.data.nbytes)
            flops = _estimate_flops(name, out.data, args)
            hook(name, "forward", elapsed, flops, nbytes)
        else:
            nbytes = 0
            flops = 0.0
        # may raise NumericalAnomalyError; returns the creation trace that a
        # later backward anomaly of this node will report
        trace = anomaly.after_forward(name, out.data) if anomaly is not None else None
        inner = out._backward_fn
        if inner is not None:
            # Backward FLOPs are charged at the conventional 2x forward; the
            # gradient array has the output's shape, hence the same bytes.
            def traced_backward(grad: np.ndarray, _inner=inner, _trace=trace) -> None:
                backward_anomaly = _anomaly_check
                if backward_anomaly is not None:
                    backward_anomaly.check_grad(name, grad, _trace)
                backward_hook = _trace_hook
                if backward_hook is None:
                    _inner(grad)
                    return
                t0 = _time.perf_counter()
                _inner(grad)
                backward_hook(name, "backward", _time.perf_counter() - t0, 2.0 * flops, nbytes)

            out._backward_fn = traced_backward
        if capture is not None:
            capture.record_op(name, args, kwargs, out)
        return out

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


#: the primitive ops exposed to tracing; ``var`` and ``min`` are composites
#: whose constituent primitives are traced instead
TRACED_OPS = (
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt", "abs",
    "maximum", "minimum", "clip", "where", "huber", "tanh", "sigmoid", "relu",
    "leaky_relu", "softplus", "matmul", "linear", "transpose", "swapaxes",
    "reshape", "getitem", "gather", "concat", "stack", "pad", "broadcast_to",
    "sum", "mean", "max", "softmax", "log_softmax", "dropout_mask",
)


def _install_tracing() -> None:
    namespace = globals()
    for op_name in TRACED_OPS:
        namespace[op_name] = _traced(op_name, namespace[op_name])


_install_tracing()
