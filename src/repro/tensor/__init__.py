"""From-scratch reverse-mode autodiff substrate (PyTorch substitute).

Public surface:

* :class:`Tensor`, :func:`as_tensor`, :func:`zeros`, :func:`ones`,
  :class:`no_grad` — core array-with-gradient type.
* :mod:`repro.tensor.ops` — differentiable primitives.
* :mod:`repro.tensor.functional` — losses (Huber, Eq. 21), Gaussian KL,
  reparameterization, attention helpers.
* :mod:`repro.tensor.gradcheck` — finite-difference validation used by the
  test suite.
"""

from . import functional, gradcheck, ops, rng
from .anomaly import (
    AnomalyDetector,
    NumericalAnomalyError,
    detect_anomaly,
    is_anomaly_detection_enabled,
)
from .functional import (
    gaussian_kl,
    huber_loss,
    mae_loss,
    masked_huber_loss,
    mse_loss,
    reparameterize,
    scaled_dot_product_attention,
)
from .rng import reseed_module_generators, spawn_streams, worker_seed_sequence
from .tensor import (
    Tensor,
    as_tensor,
    inference_mode,
    is_grad_enabled,
    is_inference_mode_enabled,
    no_grad,
    ones,
    set_grad_alloc_hook,
    unbroadcast,
    zeros,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "zeros",
    "ones",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode_enabled",
    "unbroadcast",
    "set_grad_alloc_hook",
    "ops",
    "functional",
    "gradcheck",
    "rng",
    "spawn_streams",
    "worker_seed_sequence",
    "reseed_module_generators",
    "huber_loss",
    "masked_huber_loss",
    "mse_loss",
    "mae_loss",
    "detect_anomaly",
    "AnomalyDetector",
    "NumericalAnomalyError",
    "is_anomaly_detection_enabled",
    "gaussian_kl",
    "reparameterize",
    "scaled_dot_product_attention",
]
