"""Composite differentiable functions: losses and variational utilities.

These implement the exact objective of the paper (Section IV-E):

* :func:`huber_loss` — Eq. 21, the robust regression term.
* :func:`gaussian_kl` — the analytic KL divergence ``D_KL[N(mu, sigma^2) ||
  N(0, I)]`` used as the regularizer in Eq. 20 (diagonal covariance, as the
  paper enforces).
* :func:`reparameterize` — the reparameterization trick (Kingma & Welling)
  used to sample the stochastic latent variables z and z_t while keeping the
  training end-to-end differentiable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import ops
from .tensor import ArrayLike, Tensor, as_tensor


def mse_loss(prediction: ArrayLike, target: ArrayLike) -> Tensor:
    """Mean squared error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = prediction - target
    return ops.mean(diff * diff)


def mae_loss(prediction: ArrayLike, target: ArrayLike) -> Tensor:
    """Mean absolute error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    return ops.mean(ops.abs(prediction - target))


def huber_loss(prediction: ArrayLike, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Huber loss (paper Eq. 21), reduced by mean.

    Quadratic for residuals with ``|r| <= delta``, linear beyond — less
    sensitive to outliers in the traffic data than squared error.
    """
    prediction, target = as_tensor(prediction), as_tensor(target)
    return ops.mean(ops.huber(prediction - target, delta))


def masked_huber_loss(
    prediction: ArrayLike,
    target: ArrayLike,
    delta: float = 1.0,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Huber loss over the valid entries of a partially observed target.

    Dead sensors show up as NaN in the ground truth; an unmasked loss would
    turn the whole batch gradient into NaN.  Here invalid entries (NaN/Inf
    targets, or ``mask == 0`` when an explicit mask is given) contribute
    zero loss *and* zero gradient, and the reduction divides by the number
    of valid entries so the scale matches :func:`huber_loss` on clean data.

    Returns a zero scalar (with zero gradients) when nothing is valid.
    """
    prediction, target = as_tensor(prediction), as_tensor(target)
    # The NaN pattern (hence the mask, the valid count, and safe_target) is
    # data the compiler cannot see through the op stream — it changes batch
    # to batch at the Python level, so a captured plan would silently freeze
    # one batch's mask.  Declare the step unreplayable.
    ops.notify_compile_unsupported("masked_huber_loss: per-batch NaN/validity mask")
    finite = np.isfinite(target.data)
    if mask is None:
        mask_array = finite.astype(np.float64)
    else:
        mask_array = np.asarray(mask, dtype=np.float64) * finite
    valid = float(mask_array.sum())
    if valid == 0.0:
        return ops.sum(prediction * 0.0)
    safe_target = np.where(finite, target.data, 0.0)
    element = ops.huber(prediction - Tensor(safe_target), delta)
    return ops.sum(element * Tensor(mask_array)) / valid


def gaussian_kl(mu: ArrayLike, log_var: ArrayLike) -> Tensor:
    """Analytic ``D_KL[N(mu, diag(exp(log_var))) || N(0, I)]``, mean over batch.

    The paper parameterizes diagonal covariances; we carry ``log_var`` for
    numerical stability.  Per element the divergence is
    ``0.5 * (exp(log_var) + mu^2 - 1 - log_var)``; we sum over the latent
    dimension (last axis) and average the rest.
    """
    mu, log_var = as_tensor(mu), as_tensor(log_var)
    element = 0.5 * (ops.exp(log_var) + mu * mu - 1.0 - log_var)
    per_sample = ops.sum(element, axis=-1)
    return ops.mean(per_sample)


def reparameterize(mu: ArrayLike, log_var: ArrayLike, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Sample ``z = mu + sigma * eps`` with ``eps ~ N(0, I)``.

    The noise ``eps`` is treated as a constant, so gradients flow to ``mu``
    and ``log_var`` — the reparameterization trick the paper relies on for
    end-to-end training of the stochastic parameter generator.
    """
    mu, log_var = as_tensor(mu), as_tensor(log_var)
    # Under compile capture the noise is a per-step host input; a caller-held
    # generator can be replayed (regen re-draws from the same stream), but
    # anonymous default_rng noise cannot — regen=None makes the lowering pass
    # reject the plan instead of silently freezing one step's sample.
    if rng is not None:
        eps = ops.notify_host_input(
            rng.standard_normal(mu.shape), lambda: rng.standard_normal(mu.shape)
        )
    else:
        eps = ops.notify_host_input(np.random.default_rng().standard_normal(mu.shape))
    sigma = ops.exp(0.5 * log_var)
    return mu + sigma * Tensor(eps)


def linear(x: ArrayLike, weight: ArrayLike, bias: Optional[ArrayLike] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` (weight stored input-major).

    Shared 2-D weights dispatch to the fused :func:`repro.tensor.ops.linear`
    kernel (one forward GEMM, single-GEMM weight gradient); per-sample
    generated weights keep the batched ``matmul``/``add`` composite.
    """
    weight = as_tensor(weight)
    if weight.data.ndim == 2:
        return ops.linear(x, weight, bias)
    out = ops.matmul(x, weight)
    if bias is not None:
        out = out + as_tensor(bias)
    return out


def attention_scores(query: Tensor, key: Tensor, scale: Optional[float] = None) -> Tensor:
    """Scaled dot-product scores ``softmax(Q K^T / sqrt(d))`` (paper Eq. 2)."""
    d = query.shape[-1]
    scale = scale if scale is not None else 1.0 / float(np.sqrt(d))
    logits = ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale
    return ops.softmax(logits, axis=-1)


def scaled_dot_product_attention(query: Tensor, key: Tensor, value: Tensor) -> Tensor:
    """Full attention output ``softmax(Q K^T / sqrt(d)) V`` (paper Eq. 2)."""
    return ops.matmul(attention_scores(query, key), value)
