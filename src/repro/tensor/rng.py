"""Deterministic RNG stream splitting for multi-process training.

Data-parallel workers (:mod:`repro.parallel`) each hold a private copy of
the model, and every stochastic module (dropout masks, latent sampling)
holds its own :class:`numpy.random.Generator`.  If the worker copies kept
the parent's generators they would all draw *identical* noise — worker 0's
dropout mask would equal worker 1's — which silently correlates the shards.

This module derives statistically independent, reproducible streams with
:class:`numpy.random.SeedSequence`:

* :func:`spawn_streams` — ``n`` child generators from one base seed.  The
  same ``(seed, n)`` always yields the same streams, and child ``i`` is the
  same generator regardless of how many siblings were spawned *after* it.
* :func:`worker_seed_sequence` / :func:`reseed_module_generators` — re-seed
  every generator a model copy holds from a key derived from the base seed,
  the worker id and the *qualified attribute name* of the generator.  Two
  workers never share a stream; the same worker id always reproduces the
  same stream, whatever the total worker count.

Determinism contract (documented in DESIGN.md "Parallel training"): for
models that draw no randomness in their training forward pass the parallel
loss trajectory is independent of worker count and matches serial training
to float64 reduction accuracy.  For stochastic models a run is reproducible
for a fixed ``(seed, n_workers)``; changing the worker count changes which
stream draws each shard's noise, exactly like changing the batch order.
"""

from __future__ import annotations

from typing import Dict, List
from zlib import crc32

import numpy as np

__all__ = ["spawn_streams", "worker_seed_sequence", "reseed_module_generators"]


def spawn_streams(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent, reproducible generators derived from ``seed``.

    Uses ``SeedSequence(seed).spawn(n)``: streams are statistically
    independent of each other *and* of ``default_rng(seed)`` itself, and
    stream ``i`` does not depend on ``n``.
    """
    if n < 1:
        raise ValueError(f"need at least one stream, got n={n}")
    return [np.random.default_rng(child) for child in np.random.SeedSequence(seed).spawn(n)]


def worker_seed_sequence(seed: int, worker_id: int, key: str = "") -> np.random.SeedSequence:
    """The seed sequence owning stream ``key`` of worker ``worker_id``.

    ``key`` is hashed (crc32 — stable across processes and Python runs,
    unlike :func:`hash`) into the spawn key so distinct module attributes
    get distinct streams without coordinating a global counter.
    """
    if worker_id < 0:
        raise ValueError(f"worker_id must be non-negative, got {worker_id}")
    entropy = [int(seed) & 0xFFFFFFFF, worker_id]
    if key:
        entropy.append(crc32(key.encode("utf-8")))
    return np.random.SeedSequence(entropy)


def reseed_module_generators(model, seed: int, worker_id: int) -> Dict[str, np.random.Generator]:
    """Replace every generator attribute of ``model`` with a worker stream.

    Walks ``model.named_modules()`` exactly like the Trainer's checkpoint
    RNG discovery and swaps each :class:`numpy.random.Generator` attribute
    for a fresh stream keyed on ``(seed, worker_id, qualified name)``.
    Returns the new generators by qualified name.
    """
    replaced: Dict[str, np.random.Generator] = {}
    for name, module in model.named_modules():
        for attr, value in vars(module).items():
            if isinstance(value, np.random.Generator):
                qualified = f"{name}.{attr}" if name else attr
                stream = np.random.default_rng(worker_seed_sequence(seed, worker_id, qualified))
                setattr(module, attr, stream)
                replaced[qualified] = stream
    return replaced
