"""Zero-downtime model lifecycle above the serving plane.

``repro.fleet`` turns the single-artifact :class:`repro.serve.ServingEngine`
into an operated fleet of per-city models:

* :class:`ModelRegistry` — on-disk versioned artifact store with atomic
  manifest updates (tmp + ``os.replace``), per-tenant version history,
  ``promote``/``rollback``, and corruption-diagnosing loads
  (:class:`RegistryError`).
* :class:`FleetRouter` — N live engines routed by ``model_id`` with
  per-tenant admission control (overload sheds with ``source="shed"``),
  atomic hot swaps that drain the old engine, primary/shadow mirroring
  with divergence metrics, and deterministic weighted A/B serving.
* :class:`DriftDetector` / :class:`DriftPolicy` — rolling one-step-ahead
  residual error vs. a promotion-time baseline, fed by the router from
  the live stream.
* :class:`FleetManager` / :class:`RetrainPolicy` — the lifecycle loop:
  deploy from the registry, and on drift fine-tune the live weights via
  the ordinary :class:`repro.training.Trainer`, validate on held-back
  windows, publish, promote, and hot-swap.

``python -m repro.harness fleet-bench`` drills the whole lifecycle —
multi-tenant load with shedding, a hot swap under concurrent traffic with
zero dropped requests, a shadow deployment producing divergence metrics,
and the synthetic-drift retrain→validate→swap loop — and gates it in
``results/fleet_bench.json``; see DESIGN.md "Fleet lifecycle".
"""

from .drift import DriftDetector, DriftPolicy
from .lifecycle import FleetManager, RetrainPolicy, holdout_mae
from .registry import MANIFEST_SCHEMA, ModelRegistry, RegistryError
from .router import (
    FleetConfig,
    FleetResult,
    FleetRouter,
    UnknownModelError,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "ModelRegistry",
    "RegistryError",
    "DriftDetector",
    "DriftPolicy",
    "FleetConfig",
    "FleetResult",
    "FleetRouter",
    "UnknownModelError",
    "FleetManager",
    "RetrainPolicy",
    "holdout_mae",
]
