"""Multi-tenant routing over live serving engines: swap, shadow, A/B, shed.

A :class:`FleetRouter` owns one :class:`repro.serve.ServingEngine` per live
deployment and routes requests by ``model_id`` (the per-city tenant key).
On top of plain routing it provides the fleet's zero-downtime moves:

* **Admission control** — each tenant admits at most
  ``max_inflight`` concurrent requests; excess load is shed immediately
  with a cheap persistence forecast and ``source="shed"`` instead of
  queueing behind the model, so one tenant's overload cannot blow every
  tenant's p99.
* **Atomic hot swap** — :meth:`FleetRouter.swap` installs a new artifact
  under the tenant lock, lets the old engine *drain* its in-flight
  requests, then closes it.  Requests admitted before the swap complete on
  the old engine; requests admitted after run on the new one; none are
  dropped.
* **Primary/shadow** — :meth:`FleetRouter.start_shadow` mirrors every
  served window to a shadow artifact *off the hot path* (a bounded queue
  and one worker thread); per-pair divergence (MAE and percent
  disagreement) streams through the :class:`repro.obs.MetricsSink` as
  ``shadow_divergence`` events.
* **Weighted A/B** — :meth:`FleetRouter.set_ab` serves a deterministic
  fraction of requests (error-diffusion weighting, no RNG flakiness) from
  a candidate engine; every response is stamped with the arm and registry
  version that produced it.
* **Drift watch** — each ingest compares the new observations against the
  first horizon step the live model predicted for that tick and feeds the
  residual to the tenant's :class:`repro.fleet.DriftDetector`; the trip
  edge is emitted as a ``drift`` event for the lifecycle layer to act on.

All engines of one tenant share a single
:class:`repro.serve.StreamStateStore`, so shadow and A/B arms see exactly
the state the primary serves from and a swap needs no stream warmup.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..obs import MetricsSink, NullSink, SafeSink
from ..serve import ForecasterArtifact, ServeConfig, ServingEngine, StreamStateStore
from .drift import DriftDetector, DriftPolicy


class UnknownModelError(KeyError):
    """A request named a tenant the router does not serve."""


@dataclass
class FleetConfig:
    """Knobs of the fleet routing plane."""

    max_inflight: int = 8  # per-tenant admission bound; excess -> shed
    shadow_queue: int = 64  # bounded shadow-compare backlog; full -> skip
    disagree_tol: float = 0.05  # relative threshold for percent disagreement
    drain_timeout_s: float = 30.0  # swap waits this long for the old engine
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    serve: Optional[ServeConfig] = None  # template for per-tenant engines
    sink: Optional[MetricsSink] = None  # fleet events (swap/shed/shadow/drift)


@dataclass
class FleetResult:
    """One routed forecast plus full fleet provenance."""

    model_id: str  # tenant key
    forecast: np.ndarray  # (N, U, F), raw units
    source: str  # "model" | "cache" | "fallback" | "shed"
    arm: str  # "primary" | "candidate" | "shed"
    version: Optional[int]  # registry version of the serving artifact
    latency_s: float
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.source in ("model", "cache")


class _TenantSink(SafeSink):
    """Stamp tenant identity on engine events; never closes the shared sink."""

    def __init__(self, sink: MetricsSink, model_id: str, version: Optional[int]):
        super().__init__(sink)
        self._stamp = {"tenant": model_id, "artifact_version": version}

    def emit(self, event: Mapping[str, object]) -> None:
        super().emit({**event, **self._stamp})

    def close(self) -> None:
        pass  # the router owns the underlying sink's lifetime


class _Handle:
    """One live engine plus its in-flight accounting (for draining)."""

    def __init__(self, engine: ServingEngine, version: Optional[int], arm: str):
        self.engine = engine
        self.version = version
        self.arm = arm
        self.requests = 0
        self._inflight = 0
        self._cond = threading.Condition()

    def acquire(self) -> None:
        with self._cond:
            self._inflight += 1
            self.requests += 1

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def drain(self, timeout: float) -> bool:
        """Wait for in-flight requests to finish; True when fully drained."""
        with self._cond:
            return self._cond.wait_for(lambda: self._inflight == 0, timeout=timeout)


class _Tenant:
    """Per-tenant routing state: store, handles, drift, admission counters."""

    def __init__(
        self,
        model_id: str,
        store: StreamStateStore,
        primary: _Handle,
        drift: DriftDetector,
    ):
        self.model_id = model_id
        self.store = store
        self.primary = primary
        self.candidate: Optional[_Handle] = None
        self.ab_weight = 0.0
        self._ab_acc = 0.0
        self.shadow_artifact: Optional[ForecasterArtifact] = None
        self.shadow_version: Optional[int] = None
        self.shadow_stats = {"compared": 0, "skipped": 0, "mae_sum": 0.0, "disagree_sum": 0.0}
        self.drift = drift
        self.lock = threading.Lock()
        self.inflight = 0
        self.sheds = 0
        self.requests = 0
        self.swaps = 0
        #: (data_version, first-step forecast) awaiting its observed tick
        self.pending: Optional[tuple] = None

    def handles(self) -> List[_Handle]:
        with self.lock:
            return [h for h in (self.primary, self.candidate) if h is not None]

    def pick(self) -> _Handle:
        """Weighted A/B arm selection by error diffusion (deterministic)."""
        if self.candidate is None or self.ab_weight <= 0.0:
            return self.primary
        self._ab_acc += self.ab_weight
        if self._ab_acc >= 1.0:
            self._ab_acc -= 1.0
            return self.candidate
        return self.primary

    @property
    def horizon(self) -> int:
        return self.primary.engine.artifact.horizon


class FleetRouter:
    """Route forecasts across N tenants' live engines (see module docstring)."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()
        self.sink: MetricsSink = (
            NullSink() if self.config.sink is None else SafeSink(self.config.sink)
        )
        self._tenants: Dict[str, _Tenant] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._shadow_queue: "queue.Queue" = queue.Queue(maxsize=self.config.shadow_queue)
        self._shadow_worker = threading.Thread(
            target=self._shadow_loop, name="repro-fleet-shadow", daemon=True
        )
        self._shadow_worker.start()

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #
    def _build_engine(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        store: StreamStateStore,
        version: Optional[int],
    ) -> ServingEngine:
        template = self.config.serve or ServeConfig()
        config = replace(
            template, sink=_TenantSink(self.sink, model_id, version)
        )
        return ServingEngine(
            artifact,
            num_sensors=store.num_sensors,
            num_features=store.num_features,
            config=config,
            store=store,
        )

    @staticmethod
    def _registry_version(artifact: ForecasterArtifact, version: Optional[int]) -> Optional[int]:
        if version is not None:
            return int(version)
        return artifact.registry_version

    def add_model(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        num_sensors: int,
        *,
        num_features: int = 1,
        version: Optional[int] = None,
    ) -> None:
        """Deploy ``artifact`` as tenant ``model_id``'s primary engine."""
        version = self._registry_version(artifact, version)
        store = StreamStateStore(
            num_sensors,
            window=artifact.history,
            num_features=num_features,
            impute_method=(self.config.serve or ServeConfig()).impute_method,
        )
        engine = self._build_engine(model_id, artifact, store, version)
        tenant = _Tenant(
            model_id,
            store,
            _Handle(engine, version, "primary"),
            DriftDetector(self.config.drift),
        )
        with self._lock:
            if self._closed:
                engine.close()
                raise RuntimeError("FleetRouter is closed")
            if model_id in self._tenants:
                engine.close()
                raise ValueError(
                    f"tenant {model_id!r} is already deployed; use swap() to replace it"
                )
            self._tenants[model_id] = tenant
        self._emit(
            {"event": "fleet_deploy", "tenant": model_id, "version": version}
        )

    def remove_model(self, model_id: str, drain_timeout_s: Optional[float] = None) -> None:
        """Undeploy a tenant: drain every arm, then close its engines."""
        with self._lock:
            tenant = self._tenants.pop(model_id, None)
        if tenant is None:
            raise UnknownModelError(model_id)
        timeout = self.config.drain_timeout_s if drain_timeout_s is None else drain_timeout_s
        for handle in tenant.handles():
            handle.drain(timeout)
            handle.engine.close()

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def _tenant(self, model_id: str) -> _Tenant:
        with self._lock:
            tenant = self._tenants.get(model_id)
        if tenant is None:
            raise UnknownModelError(
                f"no tenant {model_id!r} deployed (have: {self.models()})"
            )
        return tenant

    def live_artifact(self, model_id: str) -> ForecasterArtifact:
        return self._tenant(model_id).primary.engine.artifact

    def live_version(self, model_id: str) -> Optional[int]:
        return self._tenant(model_id).primary.version

    def drift_status(self, model_id: str) -> Dict[str, object]:
        tenant = self._tenant(model_id)
        with tenant.lock:
            return tenant.drift.check()

    # ------------------------------------------------------------------ #
    # ingest path
    # ------------------------------------------------------------------ #
    def ingest(self, model_id: str, values: np.ndarray, sensor_ids=None) -> int:
        """Advance a tenant's stream one tick; feeds caches and drift watch.

        The shared store ticks exactly once; every live arm's prediction
        cache is invalidated against the new data version.  For full-network
        ticks the newly observed values are compared against the first
        horizon step the live model forecast for this tick (when one
        exists), and the residual drives the tenant's drift detector.
        """
        tenant = self._tenant(model_id)
        with tenant.lock:
            pending = tenant.pending
            tenant.pending = None
            pre_version = tenant.store.version
        version = tenant.store.ingest(values, sensor_ids=sensor_ids)
        for handle in tenant.handles():
            handle.engine.invalidate_stale(version)
        if pending is not None and pending[0] == pre_version and sensor_ids is None:
            observed = np.asarray(values, dtype=np.float64).reshape(pending[1].shape)
            residual = float(np.nanmean(np.abs(observed - pending[1])))
            if np.isfinite(residual):
                with tenant.lock:
                    tripped = tenant.drift.record(residual)
                    verdict = tenant.drift.check() if tripped else None
                if verdict is not None:
                    self._emit({"event": "drift", "tenant": model_id, **verdict})
        return version

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def forecast(self, model_id: str, window: Optional[np.ndarray] = None) -> FleetResult:
        """Serve one forecast for a tenant, under admission control.

        Never raises for capacity or model problems: over-admission sheds
        (``source="shed"``), and everything past admission inherits the
        engine's own degradation ladder (cache/model/fallback).
        """
        start = time.perf_counter()
        tenant = self._tenant(model_id)
        if window is None:
            window, _mask = tenant.store.window()
        else:
            window = np.asarray(window, dtype=np.float64)
        data_version = tenant.store.version

        with tenant.lock:
            tenant.requests += 1
            if tenant.inflight >= self.config.max_inflight:
                tenant.sheds += 1
                handle = None
                live_version = tenant.primary.version
            else:
                handle = tenant.pick()
                handle.acquire()
                tenant.inflight += 1
        if handle is None:
            forecast = np.repeat(window[:, -1:, :], tenant.horizon, axis=1)
            latency = time.perf_counter() - start
            self._emit(
                {
                    "event": "fleet_shed",
                    "tenant": model_id,
                    "version": live_version,
                    "latency_ms": 1e3 * latency,
                }
            )
            return FleetResult(
                model_id=model_id,
                forecast=forecast,
                source="shed",
                arm="shed",
                version=live_version,
                latency_s=latency,
                reason="admission_overload",
            )

        try:
            result = handle.engine.forecast(window)
        finally:
            handle.release()
            with tenant.lock:
                tenant.inflight -= 1

        if result.source in ("model", "cache"):
            with tenant.lock:
                tenant.pending = (data_version, result.forecast[:, 0, :].copy())
            self._submit_shadow(tenant, window, result.forecast, handle.version)
        return FleetResult(
            model_id=model_id,
            forecast=result.forecast,
            source=result.source,
            arm=handle.arm,
            version=handle.version,
            latency_s=time.perf_counter() - start,
            reason=result.reason,
        )

    # ------------------------------------------------------------------ #
    # hot swap
    # ------------------------------------------------------------------ #
    def swap(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        *,
        version: Optional[int] = None,
        drain_timeout_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Atomically replace a tenant's primary engine; old traffic drains.

        The new engine shares the tenant's stream store, is warmed before
        installation, and takes over for every request admitted after the
        pointer flip; requests already in flight complete on the old engine,
        which is closed only once fully drained.  The drift detector is
        rearmed to recalibrate against the new model.
        """
        tenant = self._tenant(model_id)
        version = self._registry_version(artifact, version)
        engine = self._build_engine(model_id, artifact, tenant.store, version)
        window, _mask = tenant.store.window()
        artifact.predict(window)  # warm the forward path off the request path
        new_handle = _Handle(engine, version, "primary")
        with tenant.lock:
            old = tenant.primary
            tenant.primary = new_handle
            tenant.swaps += 1
            tenant.pending = None
            tenant.drift.reset()
        timeout = self.config.drain_timeout_s if drain_timeout_s is None else drain_timeout_s
        drained = old.drain(timeout)
        old.engine.close()
        report = {
            "event": "fleet_swap",
            "tenant": model_id,
            "from_version": old.version,
            "to_version": version,
            "drained": drained,
            "old_requests": old.requests,
        }
        self._emit(report)
        return dict(report)

    # ------------------------------------------------------------------ #
    # shadow deployment
    # ------------------------------------------------------------------ #
    def start_shadow(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        *,
        version: Optional[int] = None,
    ) -> None:
        """Mirror served windows to ``artifact`` off the hot path."""
        tenant = self._tenant(model_id)
        version = self._registry_version(artifact, version)
        with tenant.lock:
            tenant.shadow_artifact = artifact
            tenant.shadow_version = version
            tenant.shadow_stats = {
                "compared": 0, "skipped": 0, "mae_sum": 0.0, "disagree_sum": 0.0
            }
        self._emit(
            {"event": "fleet_shadow_start", "tenant": model_id, "version": version}
        )

    def stop_shadow(self, model_id: str) -> Dict[str, object]:
        """Detach the shadow; returns the accumulated divergence summary."""
        tenant = self._tenant(model_id)
        with tenant.lock:
            stats = dict(tenant.shadow_stats)
            version = tenant.shadow_version
            tenant.shadow_artifact = None
            tenant.shadow_version = None
            tenant.shadow_stats = {
                "compared": 0, "skipped": 0, "mae_sum": 0.0, "disagree_sum": 0.0
            }
        compared = stats["compared"]
        return {
            "version": version,
            "compared": compared,
            "skipped": stats["skipped"],
            "mean_mae": stats["mae_sum"] / compared if compared else float("nan"),
            "mean_disagree_pct": (
                100.0 * stats["disagree_sum"] / compared if compared else float("nan")
            ),
        }

    def promote_shadow(self, model_id: str) -> Dict[str, object]:
        """Swap the current shadow artifact in as primary."""
        tenant = self._tenant(model_id)
        with tenant.lock:
            artifact, version = tenant.shadow_artifact, tenant.shadow_version
        if artifact is None:
            raise ValueError(f"tenant {model_id!r} has no shadow deployment")
        summary = self.stop_shadow(model_id)
        report = self.swap(model_id, artifact, version=version)
        report["shadow"] = summary
        return report

    def _submit_shadow(self, tenant, window, primary_forecast, primary_version) -> None:
        if tenant.shadow_artifact is None:
            return
        try:
            self._shadow_queue.put_nowait(
                (tenant, window, primary_forecast, primary_version)
            )
        except queue.Full:
            with tenant.lock:
                tenant.shadow_stats["skipped"] += 1

    def _shadow_loop(self) -> None:
        while True:
            item = self._shadow_queue.get()
            try:
                if item is None:
                    return
                self._shadow_compare(*item)
            finally:
                self._shadow_queue.task_done()

    def _shadow_compare(self, tenant, window, primary_forecast, primary_version) -> None:
        with tenant.lock:
            artifact, version = tenant.shadow_artifact, tenant.shadow_version
        if artifact is None:
            return
        try:
            shadow_forecast = artifact.predict(window)
        except Exception as error:  # a broken shadow must not kill the loop
            self._emit(
                {
                    "event": "shadow_error",
                    "tenant": tenant.model_id,
                    "version": version,
                    "reason": f"{type(error).__name__}: {error}",
                }
            )
            return
        diff = np.abs(primary_forecast - shadow_forecast)
        mae = float(np.mean(diff))
        scale = np.maximum(np.abs(primary_forecast), 1.0)
        disagree = float(np.mean(diff > self.config.disagree_tol * scale))
        with tenant.lock:
            if tenant.shadow_artifact is artifact:
                tenant.shadow_stats["compared"] += 1
                tenant.shadow_stats["mae_sum"] += mae
                tenant.shadow_stats["disagree_sum"] += disagree
        self._emit(
            {
                "event": "shadow_divergence",
                "tenant": tenant.model_id,
                "primary_version": primary_version,
                "shadow_version": version,
                "mae": mae,
                "disagree_pct": 100.0 * disagree,
            }
        )

    def drain_shadow(self, timeout_s: float = 10.0) -> bool:
        """Block until the shadow queue is empty (tests and benches)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._shadow_queue.unfinished_tasks == 0:
                return True
            time.sleep(0.005)
        return self._shadow_queue.unfinished_tasks == 0

    # ------------------------------------------------------------------ #
    # weighted A/B
    # ------------------------------------------------------------------ #
    def set_ab(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        weight: float,
        *,
        version: Optional[int] = None,
    ) -> None:
        """Serve ``weight`` of the tenant's traffic from a candidate engine."""
        if not 0.0 < weight < 1.0:
            raise ValueError(f"A/B weight must be in (0, 1), got {weight}")
        tenant = self._tenant(model_id)
        if tenant.candidate is not None:
            raise ValueError(
                f"tenant {model_id!r} already has an A/B candidate; conclude it first"
            )
        version = self._registry_version(artifact, version)
        engine = self._build_engine(model_id, artifact, tenant.store, version)
        window, _mask = tenant.store.window()
        artifact.predict(window)  # warm off the request path
        with tenant.lock:
            tenant.candidate = _Handle(engine, version, "candidate")
            tenant.ab_weight = float(weight)
            tenant._ab_acc = 0.0
        self._emit(
            {
                "event": "fleet_ab_start",
                "tenant": model_id,
                "version": version,
                "weight": float(weight),
            }
        )

    def conclude_ab(self, model_id: str, promote: bool) -> Dict[str, object]:
        """End the A/B test; optionally promote the candidate to primary.

        Either way the losing engine drains before closing; returns per-arm
        request counts and latency summaries for the comparison record.
        """
        tenant = self._tenant(model_id)
        with tenant.lock:
            candidate = tenant.candidate
            if candidate is None:
                raise ValueError(f"tenant {model_id!r} has no A/B candidate")
            tenant.candidate = None
            tenant.ab_weight = 0.0
            primary = tenant.primary
            if promote:
                tenant.primary = candidate
                candidate.arm = "primary"
                tenant.swaps += 1
                tenant.pending = None
                tenant.drift.reset()
        loser = primary if promote else candidate
        arms = {
            "primary": {
                "version": primary.version,
                "requests": primary.requests,
                "latency": primary.engine.stats.latency.summary(),
            },
            "candidate": {
                "version": candidate.version,
                "requests": candidate.requests,
                "latency": candidate.engine.stats.latency.summary(),
            },
        }
        drained = loser.drain(self.config.drain_timeout_s)
        loser.engine.close()
        report = {
            "event": "fleet_ab_conclude",
            "tenant": model_id,
            "promoted": bool(promote),
            "live_version": (candidate if promote else primary).version,
            "drained": drained,
            "arms": arms,
        }
        self._emit(report)
        return dict(report)

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def _emit(self, event: Dict[str, object]) -> None:
        self.sink.emit({**event, "time": time.time()})

    def snapshot(self) -> Dict[str, object]:
        """Per-tenant gauge block: versions, admission, drift, shadow, SLOs."""
        tenants = {}
        with self._lock:
            items = list(self._tenants.items())
        for model_id, tenant in items:
            with tenant.lock:
                block = {
                    "live_version": tenant.primary.version,
                    "requests": tenant.requests,
                    "sheds": tenant.sheds,
                    "swaps": tenant.swaps,
                    "inflight": tenant.inflight,
                    "ab_weight": tenant.ab_weight,
                    "candidate_version": (
                        tenant.candidate.version if tenant.candidate else None
                    ),
                    "shadow_version": tenant.shadow_version,
                    "drift": tenant.drift.check(),
                }
            block["engine"] = tenant.primary.engine.snapshot()
            tenants[model_id] = block
        return {"tenants": tenants, "models": sorted(t for t, _ in items)}

    def close(self) -> None:
        """Drain the shadow worker and close every tenant's engines."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            tenants = list(self._tenants.values())
            self._tenants.clear()
        self._shadow_queue.put(None)
        self._shadow_worker.join(timeout=5.0)
        for tenant in tenants:
            for handle in tenant.handles():
                handle.drain(self.config.drain_timeout_s)
                handle.engine.close()
        self.sink.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
