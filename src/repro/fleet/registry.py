"""On-disk versioned artifact store with atomic promotion.

A :class:`ModelRegistry` is the fleet's source of truth for *which* weights
serve *which* tenant.  Layout on disk::

    <root>/
      <model_id>/                 # one directory per tenant (per-city model)
        MANIFEST.json             # versions + live pointer + promotion log
        v0001.npz                 # immutable serving artifacts
        v0002.npz                 #   (repro.serve.save_artifact archives)

Every manifest update is atomic (``tmp`` + :func:`os.replace`, the same
discipline as the schema-v2 training checkpoints), so a crash mid-publish
or mid-promote can never leave a tenant pointing at a half-written archive.
Artifacts themselves are immutable once published: promotion and rollback
only move the ``live`` pointer and append to the promotion log.

Corrupt state diagnoses itself: a truncated or foreign ``MANIFEST.json``,
a schema-skewed manifest, an unknown version, or a manifest entry whose
``.npz`` vanished all raise :class:`RegistryError` naming the path and the
found vs. expected state — mirroring the
:class:`repro.training.CheckpointError` hardening, never a bare
``KeyError`` three layers down.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..serve.artifact import ForecasterArtifact, load_artifact

PathLike = Union[str, Path]

#: bump when the manifest layout changes
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "MANIFEST.json"

_MODEL_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RegistryError(ValueError):
    """The registry is corrupt, foreign, or asked about unknown state.

    Raised with the offending path and the found vs. expected condition
    instead of the raw ``json``/``KeyError``/``FileNotFoundError`` a broken
    store would otherwise surface.  Subclasses :class:`ValueError` so
    generic ``except ValueError`` handling keeps working.
    """


def _now() -> float:
    return time.time()


class ModelRegistry:
    """Versioned on-disk artifact store: publish, promote, rollback, load.

    Thread-safe per instance; the manifest is re-read from disk on every
    operation so independent processes sharing ``root`` observe each
    other's atomically-replaced state (single-writer-per-tenant is the
    intended discipline, as with checkpoint directories).
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # manifest plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_model_id(model_id: str) -> str:
        if not _MODEL_ID_RE.match(model_id or ""):
            raise RegistryError(
                f"model_id {model_id!r} is not a valid registry key "
                "(letters, digits, '.', '_', '-'; must not start with a separator)"
            )
        return model_id

    def _tenant_dir(self, model_id: str) -> Path:
        return self.root / self._check_model_id(model_id)

    def _manifest_path(self, model_id: str) -> Path:
        return self._tenant_dir(model_id) / MANIFEST_NAME

    def _read_manifest(self, model_id: str) -> Dict:
        path = self._manifest_path(model_id)
        if not path.exists():
            raise RegistryError(
                f"registry has no model {model_id!r} (no manifest at {path}); "
                f"known models: {self.models()}"
            )
        try:
            raw = path.read_text()
        except OSError as error:
            raise RegistryError(f"manifest {path} is unreadable ({error})") from error
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as error:
            raise RegistryError(
                f"manifest {path} is corrupt or truncated (not JSON: {error})"
            ) from error
        if not isinstance(manifest, dict) or "schema" not in manifest:
            raise RegistryError(
                f"manifest {path} is not a fleet registry manifest "
                "(missing 'schema' discriminator)"
            )
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise RegistryError(
                f"manifest {path} has schema version {manifest.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA}"
            )
        for key in ("model_id", "versions", "next_version"):
            if key not in manifest:
                raise RegistryError(f"manifest {path} is missing required field {key!r}")
        return manifest

    def _write_manifest(self, model_id: str, manifest: Dict) -> None:
        """Atomically replace the manifest (tmp + ``os.replace``)."""
        path = self._manifest_path(model_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _fresh_manifest(self, model_id: str) -> Dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "model_id": model_id,
            "live": None,
            "next_version": 1,
            "versions": {},
            "events": [],
        }

    def _entry(self, manifest: Dict, version: int) -> Dict:
        entry = manifest["versions"].get(str(int(version)))
        if entry is None:
            known = sorted(int(v) for v in manifest["versions"])
            raise RegistryError(
                f"model {manifest['model_id']!r} has no version {version} "
                f"(known versions: {known})"
            )
        return entry

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def models(self) -> List[str]:
        """Tenant ids with a manifest under the registry root, sorted."""
        return sorted(
            p.parent.name for p in self.root.glob(f"*/{MANIFEST_NAME}")
        )

    def manifest(self, model_id: str) -> Dict:
        """The raw (validated) manifest — a defensive copy."""
        with self._lock:
            return json.loads(json.dumps(self._read_manifest(model_id)))

    def versions(self, model_id: str) -> List[Dict]:
        """Version entries for ``model_id``, oldest first."""
        manifest = self.manifest(model_id)
        return [manifest["versions"][k] for k in sorted(manifest["versions"], key=int)]

    def live_version(self, model_id: str) -> Optional[int]:
        """The promoted version serving traffic, or None before first promote."""
        live = self.manifest(model_id)["live"]
        return None if live is None else int(live)

    def history(self, model_id: str) -> List[Dict]:
        """The append-only publish/promote/rollback event log."""
        return self.manifest(model_id)["events"]

    def artifact_path(self, model_id: str, version: int) -> Path:
        """Absolute path of a version's archive; must exist on disk."""
        with self._lock:
            manifest = self._read_manifest(model_id)
            entry = self._entry(manifest, version)
        path = self._tenant_dir(model_id) / entry["file"]
        if not path.exists():
            raise RegistryError(
                f"model {model_id!r} version {version} names artifact "
                f"{entry['file']!r} but {path} does not exist "
                "(archive deleted out from under the manifest?)"
            )
        return path

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def publish(
        self,
        model_id: str,
        artifact: ForecasterArtifact,
        *,
        metrics: Optional[Dict] = None,
        labels: Optional[Dict] = None,
        dataset_name: Optional[str] = None,
        dataset_profile: Optional[str] = None,
        promote: bool = False,
    ) -> int:
        """Write ``artifact`` as the next version of ``model_id``.

        ``metrics`` (e.g. the validation MAE the candidate earned) and
        ``labels`` land in the manifest entry for later promotion decisions.
        ``promote=True`` atomically makes the new version live as well.
        Returns the assigned version number.
        """
        with self._lock:
            try:
                manifest = self._read_manifest(model_id)
            except RegistryError:
                if self._manifest_path(model_id).exists():
                    raise  # corrupt, not merely absent — do not clobber it
                manifest = self._fresh_manifest(model_id)
            version = int(manifest["next_version"])
            filename = f"v{version:04d}.npz"
            artifact.save(
                self._tenant_dir(model_id) / filename,
                dataset_name=dataset_name,
                dataset_profile=dataset_profile,
            )
            manifest["versions"][str(version)] = {
                "version": version,
                "file": filename,
                "digest": artifact.model_id,
                "model_name": artifact.model_name,
                "created_at": _now(),
                "metrics": dict(metrics or {}),
                "labels": dict(labels or {}),
            }
            manifest["next_version"] = version + 1
            manifest["events"].append(
                {"action": "publish", "version": version, "time": _now()}
            )
            if promote:
                manifest["live"] = version
                manifest["events"].append(
                    {"action": "promote", "version": version, "time": _now()}
                )
            self._write_manifest(model_id, manifest)
            return version

    def promote(self, model_id: str, version: int) -> Dict:
        """Atomically point ``live`` at ``version``; returns its entry."""
        with self._lock:
            manifest = self._read_manifest(model_id)
            entry = self._entry(manifest, version)
            manifest["live"] = int(version)
            manifest["events"].append(
                {"action": "promote", "version": int(version), "time": _now()}
            )
            self._write_manifest(model_id, manifest)
            return entry

    def rollback(self, model_id: str) -> int:
        """Re-promote the previously live version; returns it.

        Walks the promotion log backwards for the last promoted version
        distinct from the current live one — the "undo" of a bad promote.
        """
        with self._lock:
            manifest = self._read_manifest(model_id)
            live = manifest["live"]
            if live is None:
                raise RegistryError(
                    f"model {model_id!r} has no live version to roll back from"
                )
            previous = None
            for event in reversed(manifest["events"]):
                if event["action"] in ("promote", "rollback") and event["version"] != live:
                    previous = int(event["version"])
                    break
            if previous is None:
                raise RegistryError(
                    f"model {model_id!r} has no earlier promoted version to "
                    f"roll back to (live is {live}, promotion log has no other entry)"
                )
            self._entry(manifest, previous)  # diagnose a pruned target early
            manifest["live"] = previous
            manifest["events"].append(
                {"action": "rollback", "version": previous, "time": _now()}
            )
            self._write_manifest(model_id, manifest)
            return previous

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load(
        self,
        model_id: str,
        version: Optional[int] = None,
        *,
        model=None,
        dataset=None,
    ) -> ForecasterArtifact:
        """Load a version (default: the live one) as a serving artifact.

        The loaded artifact is stamped with its registry identity
        (``metadata["registry"] = {"model_id", "version"}``), which the
        serving engine surfaces as ``artifact_version`` on SLO reports so
        fleet A/B comparisons stay attributable.  ``model``/``dataset``
        pass through to :func:`repro.serve.load_artifact`.
        """
        if version is None:
            version = self.live_version(model_id)
            if version is None:
                raise RegistryError(
                    f"model {model_id!r} has no live version "
                    "(publish(..., promote=True) or promote() one first)"
                )
        path = self.artifact_path(model_id, int(version))
        artifact = load_artifact(path, model=model, dataset=dataset)
        expected = self._entry(self._read_manifest(model_id), int(version))["digest"]
        if artifact.model_id != expected:
            raise RegistryError(
                f"model {model_id!r} version {version}: archive {path} has "
                f"weight digest {artifact.model_id!r} but the manifest "
                f"recorded {expected!r} (archive replaced or corrupted?)"
            )
        artifact.metadata["registry"] = {
            "model_id": model_id,
            "version": int(version),
        }
        return artifact
