"""Fleet lifecycle: registry-backed deploys and drift-triggered retraining.

:class:`FleetManager` closes the loop between the three planes the fleet is
built from — the :class:`repro.fleet.ModelRegistry` (what exists), the
:class:`repro.fleet.FleetRouter` (what serves), and the existing
:class:`repro.training.Trainer` (how new weights are made):

* :meth:`FleetManager.deploy` — load a registry version (default: live)
  and install it on the router, as a fresh tenant or as a hot swap.
* :meth:`FleetManager.retrain` — the drift response: fine-tune a copy of
  the live weights on recent data through the ordinary Trainer/executor
  seam, **validate** the candidate against the live model on held-back
  windows the fine-tune never saw, and only if the candidate wins publish
  it to the registry, promote it, and hot-swap it onto the router — the
  drained old engine closes with zero dropped requests.  A losing
  candidate is recorded (and published unpromoted for the audit trail)
  but never serves.

Retraining is synchronous from the caller's point of view; run it on a
background thread (as ``fleet-bench`` does) to keep serving undisturbed —
the router is thread-safe and the swap at the end is atomic either way.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data import WindowSpec
from ..obs import MetricsSink, NullSink, SafeSink
from ..serve import ForecasterArtifact
from ..training import Trainer, TrainerConfig
from .registry import ModelRegistry, RegistryError
from .router import FleetRouter


@dataclass(frozen=True)
class RetrainPolicy:
    """Knobs of the drift-response fine-tune + validation gate."""

    epochs: int = 2
    lr: float = 1e-3
    batch_size: int = 16
    max_batches: Optional[int] = 10
    eval_batches: Optional[int] = 4
    holdout_windows: int = 8  # held-back validation windows per model
    holdout_stride: int = 3  # decorrelate consecutive holdout windows
    accept_margin: float = 1.0  # candidate_mae <= margin * live_mae to win
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.holdout_windows < 1 or self.holdout_stride < 1:
            raise ValueError("holdout_windows and holdout_stride must be >= 1")
        if self.accept_margin <= 0:
            raise ValueError("accept_margin must be > 0")


def holdout_mae(artifact: ForecasterArtifact, dataset, policy: RetrainPolicy) -> float:
    """Mean absolute error over held-back validation windows (raw units).

    Slides ``holdout_windows`` windows (``holdout_stride`` ticks apart)
    over the dataset's validation split — data the fine-tune loop never
    touches — and scores the artifact's raw-unit forecasts against the
    observed continuation.  NaN targets are masked, mirroring the training
    metrics.
    """
    raw = dataset.val_raw
    history, horizon = artifact.history, artifact.horizon
    total = raw.shape[1]
    errors = []
    for k in range(policy.holdout_windows):
        start = k * policy.holdout_stride
        if start + history + horizon > total:
            break
        window = raw[:, start : start + history, :]
        target = raw[:, start + history : start + history + horizon, :]
        forecast = artifact.predict(window)
        mask = np.isfinite(target)
        if mask.any():
            errors.append(float(np.mean(np.abs(forecast[mask] - target[mask]))))
    if not errors:
        raise ValueError(
            "validation split too short for even one holdout window "
            f"(T={total}, need {history + horizon})"
        )
    return float(np.mean(errors))


class FleetManager:
    """Registry-backed deployment and drift-triggered retraining."""

    def __init__(
        self,
        registry: ModelRegistry,
        router: FleetRouter,
        *,
        sink: Optional[MetricsSink] = None,
    ):
        self.registry = registry
        self.router = router
        self.sink: MetricsSink = NullSink() if sink is None else SafeSink(sink)

    # ------------------------------------------------------------------ #
    def deploy(
        self,
        model_id: str,
        *,
        version: Optional[int] = None,
        num_sensors: Optional[int] = None,
        num_features: int = 1,
        model=None,
        dataset=None,
    ) -> ForecasterArtifact:
        """Install a registry version (default live) on the router.

        A tenant not yet routed needs ``num_sensors`` (its city's network
        size) and becomes a fresh deployment; an already-routed tenant is
        hot-swapped in place.
        """
        artifact = self.registry.load(model_id, version, model=model, dataset=dataset)
        if model_id in self.router.models():
            self.router.swap(model_id, artifact)
        else:
            if num_sensors is None:
                raise ValueError(
                    f"first deploy of {model_id!r} needs num_sensors for its stream store"
                )
            self.router.add_model(
                model_id, artifact, num_sensors, num_features=num_features
            )
        return artifact

    def rollback(self, model_id: str, *, model=None, dataset=None) -> int:
        """Registry rollback + hot swap of the re-promoted version.

        ``model``/``dataset`` pass through to the registry load, for
        artifacts whose architecture the model registry cannot rebuild
        from the archive's dataset identity alone.
        """
        version = self.registry.rollback(model_id)
        self.deploy(model_id, model=model, dataset=dataset)
        return version

    # ------------------------------------------------------------------ #
    def retrain(
        self,
        model_id: str,
        dataset,
        *,
        policy: Optional[RetrainPolicy] = None,
        force: bool = False,
    ) -> Dict[str, object]:
        """Drift response: fine-tune -> validate on holdout -> promote + swap.

        ``dataset`` is the recent-regime data to fine-tune on (its val
        split is the held-back validation set).  Unless ``force``, the
        tenant's drift detector must have tripped.  Returns a report with
        the candidate/live holdout MAEs and what was done; the swap only
        happens when the candidate wins the validation gate.
        """
        policy = policy or RetrainPolicy()
        started = time.perf_counter()
        verdict = self.router.drift_status(model_id)
        if not (force or verdict["drifted"]):
            return {
                "model_id": model_id,
                "action": "skipped",
                "reason": "no drift detected",
                "drift": verdict,
            }

        live = self.router.live_artifact(model_id)
        candidate_model = copy.deepcopy(live.model)
        for parameter in candidate_model.parameters():
            parameter.requires_grad = True

        trainer = Trainer(
            candidate_model,
            dataset,
            WindowSpec(live.history, live.horizon),
            TrainerConfig(
                lr=policy.lr,
                epochs=policy.epochs,
                batch_size=policy.batch_size,
                max_batches_per_epoch=policy.max_batches,
                eval_batches=policy.eval_batches,
                seed=policy.seed,
            ),
        )
        history = trainer.fit()
        candidate = ForecasterArtifact(
            candidate_model,
            scaler=dataset.scaler,
            model_name=live.model_name,
            history=live.history,
            horizon=live.horizon,
            metadata={"fine_tuned_from": live.model_id},
        )

        candidate_mae = holdout_mae(candidate, dataset, policy)
        live_mae = holdout_mae(live, dataset, policy)
        accepted = candidate_mae <= policy.accept_margin * live_mae
        version = self.registry.publish(
            model_id,
            candidate,
            metrics={
                "holdout_mae": candidate_mae,
                "live_holdout_mae": live_mae,
                "fine_tune_epochs": history.epochs_run,
            },
            labels={"trigger": "forced" if force else "drift"},
            dataset_name=getattr(dataset, "name", None),
            dataset_profile=getattr(dataset, "profile", None),
            promote=accepted,
        )
        report: Dict[str, object] = {
            "model_id": model_id,
            "action": "swapped" if accepted else "rejected",
            "candidate_version": version,
            "candidate_mae": candidate_mae,
            "live_mae": live_mae,
            "accept_margin": policy.accept_margin,
            "fine_tune_epochs": history.epochs_run,
            "drift": verdict,
            "seconds": time.perf_counter() - started,
        }
        if accepted:
            candidate.metadata["registry"] = {"model_id": model_id, "version": version}
            swap = self.router.swap(model_id, candidate, version=version)
            report["swap"] = swap
        self.sink.emit({"event": "fleet_retrain", "time": time.time(), **report})
        return report

    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, object]:
        """Registry + router joint view, per routed tenant."""
        block: Dict[str, object] = {}
        routed = self.router.snapshot()["tenants"]
        for model_id, tenant in routed.items():
            try:
                registry_live = self.registry.live_version(model_id)
                versions = len(self.registry.versions(model_id))
            except RegistryError:
                registry_live, versions = None, 0
            block[model_id] = {
                **tenant,
                "registry_live": registry_live,
                "registry_versions": versions,
            }
        return block
