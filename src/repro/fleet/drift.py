"""Residual drift detection over the live stream.

Traffic dynamics move under a deployed model (Cirstea et al.'s own premise:
distinct, *time-varying* per-location dynamics), so the fleet watches the
one-step-ahead residual of every tenant: each stream tick, the router
compares the newly observed values against the first horizon step the live
model forecast for that tick and feeds the mean absolute residual to a
:class:`DriftDetector`.

The detector establishes its **promotion-time baseline** from the first
``calibration`` residuals after (re)deployment — the error level the model
earned when it was validated and promoted — then keeps a rolling window of
recent residuals.  When the rolling mean exceeds ``factor`` times the
baseline (with at least ``min_samples`` in the window), the detector trips
exactly once per deployment; :meth:`DriftDetector.reset` rearms it after a
swap installs retrained weights.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class DriftPolicy:
    """Knobs of the rolling-residual drift trigger."""

    window: int = 20  # rolling residual window length
    calibration: int = 20  # post-promotion samples forming the baseline
    factor: float = 1.5  # rolling MAE > factor * baseline -> drift
    min_samples: int = 5  # window occupancy before the trigger is armed
    min_baseline: float = 1e-8  # floor so a perfect model can still drift

    def __post_init__(self):
        if self.window < 1 or self.calibration < 1:
            raise ValueError("window and calibration must be >= 1")
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must be in [1, window]")


class DriftDetector:
    """Rolling one-step-ahead residual error vs. a promotion-time baseline.

    Not thread-safe on its own; the router serializes :meth:`record` calls
    under the owning tenant's lock.
    """

    def __init__(self, policy: Optional[DriftPolicy] = None, baseline: Optional[float] = None):
        self.policy = policy or DriftPolicy()
        self._explicit_baseline = baseline
        self.reset(baseline)

    def reset(self, baseline: Optional[float] = None) -> None:
        """Rearm after a (re)deployment; ``baseline=None`` recalibrates."""
        self.baseline: Optional[float] = baseline
        self._calibration: deque = deque(maxlen=self.policy.calibration)
        self._window: deque = deque(maxlen=self.policy.window)
        self.samples = 0
        self.drifted = False

    # ------------------------------------------------------------------ #
    def record(self, residual: float) -> bool:
        """Feed one mean-absolute residual; returns True on the trip edge.

        While the baseline is still calibrating, samples accumulate there;
        once it is set, samples enter the rolling window and the trigger is
        evaluated.  After tripping, further samples keep updating the
        rolling statistics but never re-trip until :meth:`reset`.
        """
        residual = float(residual)
        self.samples += 1
        if self.baseline is None:
            self._calibration.append(residual)
            if len(self._calibration) >= self.policy.calibration:
                self.baseline = float(
                    sum(self._calibration) / len(self._calibration)
                )
            return False
        self._window.append(residual)
        if self.drifted or len(self._window) < self.policy.min_samples:
            return False
        if self.rolling_mean > self.policy.factor * self.effective_baseline:
            self.drifted = True
            return True
        return False

    # ------------------------------------------------------------------ #
    @property
    def calibrated(self) -> bool:
        return self.baseline is not None

    @property
    def effective_baseline(self) -> float:
        base = self.baseline if self.baseline is not None else float("nan")
        return max(base, self.policy.min_baseline)

    @property
    def rolling_mean(self) -> float:
        if not self._window:
            return float("nan")
        return float(sum(self._window) / len(self._window))

    def check(self) -> Dict[str, object]:
        """JSON-able verdict: baseline, rolling error, ratio, drifted flag."""
        rolling = self.rolling_mean
        baseline = self.baseline
        ratio = (
            rolling / self.effective_baseline
            if baseline is not None and rolling == rolling  # NaN-safe
            else float("nan")
        )
        return {
            "drifted": self.drifted,
            "calibrated": self.calibrated,
            "baseline": baseline,
            "rolling_mean": rolling,
            "ratio": ratio,
            "samples": self.samples,
            "window": len(self._window),
            "factor": self.policy.factor,
        }
