"""Pluggable metric sinks: structured training/profiling events as JSONL.

A :class:`MetricsSink` receives flat ``dict`` events (JSON-serializable
values only) from the :class:`repro.training.Trainer` loop and from the
harness.  The schema is deliberately minimal — every event carries an
``"event"`` discriminator plus event-specific fields; see DESIGN.md
("Observability") for the full catalogue.

Implementations:

* :class:`NullSink`   — discards everything (the disabled default).
* :class:`ListSink`   — in-memory accumulation (tests, notebooks).
* :class:`JsonlSink`  — one JSON object per line on disk; the format the
  harness writes under ``results/`` and that :func:`read_jsonl` loads back.
* :class:`TeeSink`    — fan one event stream out to several sinks.
* :class:`SafeSink`   — isolate the producer from a failing sink: the first
  emit error is warned about once and the stream degrades to dropping
  events (a full disk must never kill a training run).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Union

PathLike = Union[str, Path]

Event = Dict[str, object]


class MetricsSink:
    """Base class for event consumers; subclasses override :meth:`emit`."""

    def emit(self, event: Mapping[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (no-op by default)."""

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(MetricsSink):
    """Sink that drops every event (zero-cost observability off-switch)."""

    def emit(self, event: Mapping[str, object]) -> None:
        pass


class ListSink(MetricsSink):
    """Sink that keeps events in memory, in arrival order."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Mapping[str, object]) -> None:
        self.events.append(dict(event))

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, kind: str) -> List[Event]:
        """Events whose ``"event"`` field equals ``kind``."""
        return [e for e in self.events if e.get("event") == kind]


class JsonlSink(MetricsSink):
    """Sink that appends one compact JSON object per line to ``path``.

    The file handle is opened lazily on the first event so constructing a
    sink never touches the filesystem; :meth:`close` (or use as a context
    manager) flushes it.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    def emit(self, event: Mapping[str, object]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(dict(event), sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TeeSink(MetricsSink):
    """Sink that forwards each event to every child sink."""

    def __init__(self, *sinks: MetricsSink) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Mapping[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class SafeSink(MetricsSink):
    """Forward events to ``sink`` until it fails, then drop them.

    Observability must never take down the thing it observes: the first
    exception out of ``sink.emit`` (full disk, closed handle, buggy custom
    sink) emits a single :class:`RuntimeWarning` and flips the wrapper into
    null mode.  The :class:`repro.training.Trainer` wraps every configured
    sink in one of these.
    """

    def __init__(self, sink: MetricsSink) -> None:
        self.sink = sink
        self.failed = False

    def emit(self, event: Mapping[str, object]) -> None:
        if self.failed:
            return
        try:
            self.sink.emit(event)
        except Exception as error:
            self.failed = True
            warnings.warn(
                f"metrics sink {type(self.sink).__name__} failed ({error!r}); "
                "degrading to NullSink — further events are discarded",
                RuntimeWarning,
                stacklevel=2,
            )

    def close(self) -> None:
        try:
            self.sink.close()
        except Exception:
            pass


def read_jsonl(path: PathLike) -> Iterator[Event]:
    """Yield the events of a JSONL file written by :class:`JsonlSink`."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
