"""Op-level profiler for the autodiff substrate.

Usage::

    from repro import obs

    with obs.profile(model=model) as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.to_table(top_k=10))
    prof.summary()  # JSON-ready dict

While the context is active every primitive in :mod:`repro.tensor.ops`
reports, for forward *and* backward separately: call count, wall seconds,
an analytic FLOP estimate, and output-array bytes.  When a model is passed,
forward hooks attribute wall time to named submodules as *spans* (e.g.
``st_wa.window_attention.0``) — see :mod:`repro.obs.spans`.

When no profiler is active the instrumentation cost is a single global
``None`` check per op call; nothing is recorded and no closure is wrapped.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class OpStat:
    """Aggregate statistics for one (op, phase) pair."""

    name: str
    phase: str  # "forward" | "backward"
    calls: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    bytes: int = 0  # cumulative output-array bytes
    peak_bytes: int = 0  # largest single output array

    @property
    def key(self) -> Tuple[str, str]:
        return (self.name, self.phase)


@dataclass
class SpanStat:
    """Aggregate wall time attributed to one named module."""

    name: str
    calls: int = 0
    seconds: float = 0.0


@dataclass
class Profiler:
    """Mutable container the trace hooks record into.

    Not thread-safe; one profiler is active at a time (nested
    :func:`profile` contexts each record into their own profiler, the
    innermost one winning while it is active).
    """

    ops: Dict[Tuple[str, str], OpStat] = field(default_factory=dict)
    spans: Dict[str, SpanStat] = field(default_factory=dict)
    parallel: Dict[str, SpanStat] = field(default_factory=dict)  # per-worker timing
    started_at: float = field(default_factory=time.perf_counter)
    wall_seconds: float = 0.0
    grad_allocs: int = 0  # gradient buffers the engine allocated (copy/zero-fill)
    grad_alloc_bytes: int = 0

    # ------------------------------------------------------------------ #
    # recording (hot path — called once per traced op)
    # ------------------------------------------------------------------ #
    def record_grad_alloc(self, nbytes: int) -> None:
        """Count one engine-side gradient-buffer allocation.

        Installed as the :func:`repro.tensor.set_grad_alloc_hook` while the
        profiler is active; in-place accumulation exists precisely to keep
        this number low, so the bench harness tracks it per run.
        """
        self.grad_allocs += 1
        self.grad_alloc_bytes += nbytes

    def record_op(self, name: str, phase: str, seconds: float, flops: float, nbytes: int) -> None:
        stat = self.ops.get((name, phase))
        if stat is None:
            stat = self.ops[(name, phase)] = OpStat(name, phase)
        stat.calls += 1
        stat.seconds += seconds
        stat.flops += flops
        stat.bytes += nbytes
        if nbytes > stat.peak_bytes:
            stat.peak_bytes = nbytes

    def record_span(self, name: str, seconds: float) -> None:
        span = self.spans.get(name)
        if span is None:
            span = self.spans[name] = SpanStat(name)
        span.calls += 1
        span.seconds += seconds

    def record_parallel(self, name: str, seconds: float) -> None:
        """Attribute wall time to one data-parallel actor.

        ``name`` is a stable actor label (``worker0``, ``worker1``,
        ``reduce``, ``serialize`` — see
        :class:`repro.exec.ParallelExecutor.train_step`).  Worker seconds
        are measured *inside* the worker
        process, so they sum to more than the parent's wall time whenever
        the pool actually overlaps — that surplus is the parallelism.
        """
        span = self.parallel.get(name)
        if span is None:
            span = self.parallel[name] = SpanStat(name)
        span.calls += 1
        span.seconds += seconds

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    @property
    def total_op_seconds(self) -> float:
        """Seconds spent inside traced ops (forward + backward)."""
        return sum(stat.seconds for stat in self.ops.values())

    @property
    def total_flops(self) -> float:
        return sum(stat.flops for stat in self.ops.values())

    @property
    def total_calls(self) -> int:
        return sum(stat.calls for stat in self.ops.values())

    @property
    def peak_bytes(self) -> int:
        """Largest single array any traced op produced."""
        return max((stat.peak_bytes for stat in self.ops.values()), default=0)

    def top_ops(self, k: int = 10) -> List[OpStat]:
        """The ``k`` most expensive (op, phase) rows by wall seconds."""
        return sorted(self.ops.values(), key=lambda s: s.seconds, reverse=True)[:k]

    def top_spans(self, k: int = 10) -> List[SpanStat]:
        """The ``k`` most expensive module spans by wall seconds."""
        return sorted(self.spans.values(), key=lambda s: s.seconds, reverse=True)[:k]

    def summary(self) -> Dict[str, object]:
        """JSON-serializable snapshot of everything recorded."""
        return {
            "wall_seconds": self.wall_seconds,
            "total_op_seconds": self.total_op_seconds,
            "total_flops": self.total_flops,
            "total_op_calls": self.total_calls,
            "peak_bytes": self.peak_bytes,
            "grad_allocs": self.grad_allocs,
            "grad_alloc_bytes": self.grad_alloc_bytes,
            "ops": [asdict(stat) for stat in sorted(self.ops.values(), key=lambda s: s.seconds, reverse=True)],
            "spans": [asdict(span) for span in sorted(self.spans.values(), key=lambda s: s.seconds, reverse=True)],
            "parallel": [
                asdict(span) for span in sorted(self.parallel.values(), key=lambda s: s.name)
            ],
        }

    def to_table(self, top_k: int = 10) -> str:
        """Render the top-K ops and spans as an aligned monospace table."""
        lines = [
            f"profiled {self.total_calls} op calls, "
            f"{self.total_op_seconds:.4f}s in ops, "
            f"{self.total_flops / 1e6:.1f} MFLOP est., "
            f"peak array {self.peak_bytes / 1e6:.2f} MB, "
            f"{self.grad_allocs} grad allocs ({self.grad_alloc_bytes / 1e6:.2f} MB)"
        ]
        header = f"{'op':<24}{'phase':<10}{'calls':>8}{'seconds':>10}{'MFLOP':>10}{'MB out':>10}"
        lines += [header, "-" * len(header)]
        for stat in self.top_ops(top_k):
            lines.append(
                f"{stat.name:<24}{stat.phase:<10}{stat.calls:>8}"
                f"{stat.seconds:>10.4f}{stat.flops / 1e6:>10.1f}{stat.bytes / 1e6:>10.2f}"
            )
        if self.spans:
            lines.append("")
            span_header = f"{'module':<44}{'calls':>8}{'seconds':>10}"
            lines += [span_header, "-" * len(span_header)]
            for span in self.top_spans(top_k):
                lines.append(f"{span.name:<44}{span.calls:>8}{span.seconds:>10.4f}")
        if self.parallel:
            lines.append("")
            parallel_header = f"{'parallel':<44}{'calls':>8}{'seconds':>10}"
            lines += [parallel_header, "-" * len(parallel_header)]
            for span in sorted(self.parallel.values(), key=lambda s: s.name):
                lines.append(f"{span.name:<44}{span.calls:>8}{span.seconds:>10.4f}")
        return "\n".join(lines)


_active: Optional[Profiler] = None


def current_profiler() -> Optional[Profiler]:
    """The profiler of the innermost active :func:`profile` context, if any."""
    return _active


def is_profiling() -> bool:
    """True while a :func:`profile` context is active."""
    return _active is not None


@contextmanager
def profile(model=None) -> Iterator[Profiler]:
    """Record op stats (and module spans when ``model`` is given).

    Parameters
    ----------
    model:
        Optional :class:`repro.nn.Module`; when given, forward hooks are
        attached to every submodule for the duration of the context so wall
        time is attributable to qualified module names.
    """
    from ..tensor import ops as tensor_ops
    from ..tensor import tensor as tensor_core
    from .spans import module_spans

    global _active
    prof = Profiler()
    previous = _active
    _active = prof
    restore_trace = tensor_ops.set_op_trace(prof.record_op)
    restore_alloc = tensor_core.set_grad_alloc_hook(prof.record_grad_alloc)
    start = time.perf_counter()
    try:
        if model is not None:
            with module_spans(model, prof):
                yield prof
        else:
            yield prof
    finally:
        prof.wall_seconds = time.perf_counter() - start
        tensor_ops.set_op_trace(restore_trace)
        tensor_core.set_grad_alloc_hook(restore_alloc)
        _active = previous
