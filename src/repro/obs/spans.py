"""Module-scoped timing spans via ``nn.Module`` forward hooks.

Attaches a pre-hook/post-hook pair to every submodule of a model so that
wall time becomes attributable to qualified module names — e.g. an ST-WA
forecaster produces spans like ``encoder.window_attention.0`` — without the
model code knowing anything about profiling.  Spans measure *inclusive*
forward time (a parent span contains its children).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List

from .profiler import Profiler


@contextmanager
def module_spans(model, profiler: Profiler, prefix: str = "") -> Iterator[Profiler]:
    """Record per-module forward wall time into ``profiler.spans``.

    Hooks are removed on exit, so the model is left untouched.  Re-entrant
    calls (a module invoked several times per step) are handled with a
    per-module stack of start times.
    """
    handles = []
    try:
        for name, module in model.named_modules(prefix=prefix):
            label = name or type(model).__name__
            starts: List[float] = []

            def pre_hook(mod, inputs, _starts=starts):
                _starts.append(time.perf_counter())

            def post_hook(mod, inputs, output, _starts=starts, _label=label):
                if _starts:
                    profiler.record_span(_label, time.perf_counter() - _starts.pop())

            handles.append(module.register_forward_pre_hook(pre_hook))
            handles.append(module.register_forward_hook(post_hook))
        yield profiler
    finally:
        for handle in handles:
            handle.remove()
