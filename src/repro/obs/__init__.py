"""Observability layer: op-level profiling, module spans, metric sinks.

Three independent pieces, usable together or alone:

* :func:`profile` / :class:`Profiler` — record per-op call counts, wall
  time, FLOP estimates and array bytes for forward *and* backward passes of
  every :mod:`repro.tensor.ops` primitive (near-zero cost when inactive).
* :func:`module_spans` — attribute forward wall time to qualified
  ``nn.Module`` names via forward hooks (``profile(model=m)`` does this
  automatically).
* :class:`MetricsSink` and friends — structured JSONL event streams emitted
  by the :class:`repro.training.Trainer` loop and the harness.

See DESIGN.md section "Observability" for the event schema and examples.
"""

from .profiler import OpStat, Profiler, SpanStat, current_profiler, is_profiling, profile
from .sinks import Event, JsonlSink, ListSink, MetricsSink, NullSink, SafeSink, TeeSink, read_jsonl
from .spans import module_spans

__all__ = [
    "Profiler",
    "OpStat",
    "SpanStat",
    "profile",
    "current_profiler",
    "is_profiling",
    "module_spans",
    "MetricsSink",
    "NullSink",
    "ListSink",
    "JsonlSink",
    "SafeSink",
    "TeeSink",
    "Event",
    "read_jsonl",
]
