"""Gradient-descent optimizers (Adam is what the paper trains with).

Both optimizers guard against non-finite gradients: a parameter whose
gradient contains NaN/Inf is skipped for that step (its moments untouched),
and the skip is counted in ``nonfinite_skips`` so the resilience layer can
surface it.  ``state_dict`` / ``load_state_dict`` expose the full internal
state (moments, step counter, learning rate) for checkpoint/resume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.nonfinite_skips = 0  # parameter updates skipped on NaN/Inf grads

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the mutable optimizer state (for checkpointing)."""
        return {"lr": self.lr, "nonfinite_skips": self.nonfinite_skips}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        self.nonfinite_skips = int(state.get("nonfinite_skips", 0))


def _copy_slots(slots: List[Optional[np.ndarray]]) -> List[Optional[np.ndarray]]:
    return [None if slot is None else slot.copy() for slot in slots]


def _load_slots(slots: List[Optional[np.ndarray]], count: int, name: str) -> List[Optional[np.ndarray]]:
    if len(slots) != count:
        raise ValueError(f"optimizer state mismatch: {len(slots)} {name} slots for {count} parameters")
    return [None if slot is None else np.asarray(slot, dtype=np.float64).copy() for slot in slots]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if not np.isfinite(grad).all():
                self.nonfinite_skips += 1
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(parameter.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            parameter.data = parameter.data - self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = _copy_slots(self._velocity)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._velocity = _load_slots(state["velocity"], len(self.parameters), "velocity")


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) — the paper uses lr=1e-3."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if not np.isfinite(grad).all():
                # a single NaN would poison m/v forever; skip this update
                self.nonfinite_skips += 1
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(parameter.data)
                self._v[i] = np.zeros_like(parameter.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["m"] = _copy_slots(self._m)
        state["v"] = _copy_slots(self._v)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = _load_slots(state["m"], len(self.parameters), "m")
        self._v = _load_slots(state["v"], len(self.parameters), "v")


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).  When the
    norm is non-finite (a NaN/Inf gradient somewhere), no scaling is applied
    — multiplying every gradient by ``max_norm / nan`` would poison all of
    them — and the raw non-finite norm is returned so callers can detect and
    handle the anomaly.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if not np.isfinite(total):
        return total
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
