"""Optimizers, gradient clipping, all-reduce, LR schedules, early stopping."""

from .allreduce import all_reduce_gradients, tree_reduce
from .optimizers import SGD, Adam, Optimizer, clip_grad_norm
from .schedulers import ConstantLR, CosineAnnealingLR, EarlyStopping, LRScheduler, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "tree_reduce",
    "all_reduce_gradients",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "EarlyStopping",
]
