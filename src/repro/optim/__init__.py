"""Optimizers, gradient clipping, LR schedules, early stopping."""

from .optimizers import SGD, Adam, Optimizer, clip_grad_norm
from .schedulers import ConstantLR, CosineAnnealingLR, EarlyStopping, LRScheduler, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "EarlyStopping",
]
