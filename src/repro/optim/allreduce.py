"""Gradient reduction for data-parallel training (:mod:`repro.parallel`).

Each worker computes gradients on its shard of a mini-batch; before the
parent takes a single optimizer step those shard gradients must be combined
into exactly the gradient serial training would have produced.

The math: the serial loss is a *weighted* mean of the shard losses,

    L = sum_i (c_i / C) * L_i        with C = sum_i c_i,

where ``c_i`` counts the elements shard ``i``'s loss averaged over (all
target elements for the plain Huber objective, only the finite ones for the
masked variant — which is why workers report their own weights instead of
the parent assuming sample counts).  Gradients combine with the same
weights; any loss term shared by every shard (the KL regularizer) has
weights summing to 1 and passes through unchanged.

Reduction is *pairwise* (:func:`tree_reduce`): combining N shards costs
``ceil(log2 N)`` rounds instead of a serial left fold, and — more
importantly for reproducibility — the combination order is a deterministic
function of N alone, never of worker completion order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from ..nn.module import Parameter

T = TypeVar("T")

__all__ = ["tree_reduce", "all_reduce_gradients"]


def tree_reduce(values: Sequence[T], combine: Callable[[T, T], T]) -> T:
    """Reduce ``values`` pairwise: ((v0+v1) + (v2+v3)) + ...

    Deterministic for a given length — the shape of the reduction tree
    depends only on ``len(values)`` — so repeated runs combine shard
    gradients in the same floating-point order.
    """
    items: List[T] = list(values)
    if not items:
        raise ValueError("tree_reduce needs at least one value")
    while len(items) > 1:
        paired = [combine(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


def all_reduce_gradients(
    parameters: Sequence[Parameter],
    shard_grads: Sequence[Sequence[Optional[np.ndarray]]],
    shard_weights: Sequence[float],
) -> float:
    """Combine per-shard gradients into ``parameter.grad``, weighted.

    ``shard_grads[i][j]`` is worker ``i``'s gradient for ``parameters[j]``
    (or ``None`` when that parameter got no gradient on the shard);
    ``shard_weights[i]`` is the shard's loss weight ``c_i``.  Writes the
    weighted tree-reduced gradient into each parameter — replacing, not
    accumulating, exactly like a fresh ``backward()`` after ``zero_grad``.
    Returns the total weight ``C`` (callers reuse it to combine losses).
    """
    if len(shard_grads) != len(shard_weights):
        raise ValueError(
            f"got {len(shard_grads)} gradient shards but {len(shard_weights)} weights"
        )
    total = float(np.sum(shard_weights))
    if not np.isfinite(total) or total <= 0:
        raise ValueError(f"shard weights must sum to a positive finite value, got {total}")
    for j, parameter in enumerate(parameters):
        scaled = [
            (weight / total) * grads[j]
            for grads, weight in zip(shard_grads, shard_weights)
            if grads[j] is not None
        ]
        parameter.grad = tree_reduce(scaled, np.add) if scaled else None
    return total
