"""Learning-rate schedules and early stopping."""

from __future__ import annotations

import math
from typing import Optional

from .optimizers import Optimizer


class LRScheduler:
    """Base scheduler mutating ``optimizer.lr`` each epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Snapshot of the schedule position (for checkpoint/resume)."""
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.optimizer.lr = self._lr_at(self.epoch) if self.epoch else self.base_lr


class ConstantLR(LRScheduler):
    """No-op schedule (the paper trains with a fixed 1e-3)."""

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class EarlyStopping:
    """Stop training when validation loss stops improving.

    The paper uses early stopping with a patience of 15 epochs.  Tracks the
    best value and the epoch it occurred at.
    """

    def __init__(self, patience: int = 15, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.best_epoch = -1
        self._bad_epochs = 0

    def update(self, value: float, epoch: int) -> bool:
        """Record a validation value; returns True if training should stop."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.best_epoch = epoch
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience

    @property
    def improved_last_update(self) -> bool:
        return self._bad_epochs == 0

    def state_dict(self) -> dict:
        """Snapshot of the stopper's mutable state (for checkpoint/resume)."""
        return {"best": self.best, "best_epoch": self.best_epoch, "bad_epochs": self._bad_epochs}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        best = state["best"]
        self.best = None if best is None else float(best)
        self.best_epoch = int(state["best_epoch"])
        self._bad_epochs = int(state["bad_epochs"])
