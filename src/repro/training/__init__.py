"""Training harness: trainer, metrics, checkpoints, memory model."""

from . import memory
from .memory import CapacityPlan, CapacityPlanner
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    TrainingCheckpoint,
    dumps_state_dict,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_training_checkpoint,
    loads_state_dict,
    prune_checkpoints,
    save_checkpoint,
    save_state_dict,
    save_training_checkpoint,
)
from .metrics import evaluate_all, horizon_breakdown, mae, mape, rmse
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .uncertainty import IntervalForecast, interval_diagnostics, predict_interval, sample_forecasts

__all__ = [
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "mae",
    "rmse",
    "mape",
    "evaluate_all",
    "horizon_breakdown",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_dict",
    "dumps_state_dict",
    "loads_state_dict",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "TrainingCheckpoint",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "list_checkpoints",
    "latest_checkpoint",
    "prune_checkpoints",
    "memory",
    "CapacityPlan",
    "CapacityPlanner",
    "IntervalForecast",
    "predict_interval",
    "sample_forecasts",
    "interval_diagnostics",
]
