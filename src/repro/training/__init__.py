"""Training harness: trainer, metrics, checkpoints, memory model."""

from . import memory
from .checkpoint import load_checkpoint, save_checkpoint
from .metrics import evaluate_all, horizon_breakdown, mae, mape, rmse
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .uncertainty import IntervalForecast, interval_diagnostics, predict_interval, sample_forecasts

__all__ = [
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "mae",
    "rmse",
    "mape",
    "evaluate_all",
    "horizon_breakdown",
    "save_checkpoint",
    "load_checkpoint",
    "memory",
    "IntervalForecast",
    "predict_interval",
    "sample_forecasts",
    "interval_diagnostics",
]
