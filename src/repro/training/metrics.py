"""Forecast accuracy metrics: MAE, RMSE, MAPE (paper Section V-A).

Computed on *raw-unit* arrays (vehicles / 5 min).  Following the PEMS
evaluation convention used by the paper's baselines (DCRNN, GWN, STSGCN),
near-zero ground-truth values are masked out of MAPE to avoid division
blow-ups from sensor dropouts.

Degraded-input convention: non-finite ground-truth entries (NaN/Inf — dead
sensors, see :mod:`repro.data.imputation`) are masked out of *every* metric,
so a partially observed target degrades the score instead of poisoning it.
Empty inputs and all-masked targets return ``nan`` explicitly (no NumPy
mean-of-empty warning).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error over finite-target entries (``nan`` if none)."""
    prediction, target = _validate(prediction, target)
    prediction, target = _mask_finite(prediction, target)
    if target.size == 0:
        return float("nan")
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error over finite-target entries (``nan`` if none)."""
    prediction, target = _validate(prediction, target)
    prediction, target = _mask_finite(prediction, target)
    if target.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction: np.ndarray, target: np.ndarray, threshold: float = 1.0) -> float:
    """Mean absolute percentage error (%), masking targets below ``threshold``."""
    prediction, target = _validate(prediction, target)
    mask = np.isfinite(target) & (np.abs(target) >= threshold)
    if not mask.any():
        return float("nan")
    return float(np.mean(np.abs((prediction[mask] - target[mask]) / target[mask])) * 100.0)


def evaluate_all(prediction: np.ndarray, target: np.ndarray, mape_threshold: float = 1.0) -> Dict[str, float]:
    """All three headline metrics as a dict (keys: mae, rmse, mape)."""
    return {
        "mae": mae(prediction, target),
        "rmse": rmse(prediction, target),
        "mape": mape(prediction, target, threshold=mape_threshold),
    }


def horizon_breakdown(prediction: np.ndarray, target: np.ndarray, time_axis: int = -2) -> Dict[int, Dict[str, float]]:
    """Per-step metrics along the forecast horizon (step -> metrics dict).

    Useful for the 15/30/60-minute breakdowns common in the literature.
    """
    prediction, target = _validate(prediction, target)
    steps = prediction.shape[time_axis]
    out: Dict[int, Dict[str, float]] = {}
    for step in range(steps):
        p = np.take(prediction, step, axis=time_axis)
        t = np.take(target, step, axis=time_axis)
        out[step + 1] = evaluate_all(p, t)
    return out


def _mask_finite(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mask = np.isfinite(target)
    if mask.all():
        return prediction, target
    return prediction[mask], target[mask]


def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    return prediction, target
