"""Analytic GPU-memory model (substitute for the paper's V100 OOM results).

Table VI of the paper reports STFGNN and EnhanceNet running **out of memory**
on PEMS07 (N=883) at H=U=72, while ST-WA fits.  We cannot observe CUDA OOM
on a CPU/NumPy substrate, so we model the dominant per-batch activation
footprint of each architecture family analytically and compare against the
device budget (16 GB for the paper's Tesla V100).  The formulas capture the
asymptotics that cause the paper's OOMs:

* canonical self-attention stores O(B · N · H²) attention scores;
* window attention stores O(B · N · p · H) — linear in H;
* STFGNN materializes a fused spatio-temporal graph of size (4N)² per
  sliding block, giving O(B · H · N²);
* EnhanceNet generates per-location parameter adjustments each step,
  O(B · H · N · d²);
* RNN families store O(B · N · H · d) unrolled states (AGCRN multiplies by
  the embedding mixing, still linear in H).

Estimates are intentionally coarse (constants tuned to the 4-byte float
PyTorch training footprint, activations kept for backward ≈ 2x forward);
what matters for the reproduction is the *relative* blow-up ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

BYTES_PER_ELEMENT = 4  # float32 training, as in the paper's PyTorch setup
BACKWARD_FACTOR = 2.0  # stored activations for backprop
V100_BUDGET_GB = 16.0


@dataclass(frozen=True)
class ModelDims:
    """Dimensions entering the memory model."""

    batch: int = 64
    num_sensors: int = 307
    history: int = 12
    horizon: int = 12
    hidden: int = 32
    layers: int = 3
    heads: int = 8
    proxies: int = 2


def _attention_elements(dims: ModelDims) -> float:
    scores = dims.batch * dims.num_sensors * dims.heads * dims.history**2 * dims.layers
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return scores + states


def _window_attention_elements(dims: ModelDims) -> float:
    scores = dims.batch * dims.num_sensors * dims.proxies * dims.history * dims.layers
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden
    generator = dims.batch * dims.num_sensors * dims.hidden**2  # generated K/V
    return scores + states + generator


def _rnn_elements(dims: ModelDims) -> float:
    return dims.batch * dims.num_sensors * dims.history * dims.hidden * 4 * dims.layers


def _agcrn_elements(dims: ModelDims) -> float:
    rnn = _rnn_elements(dims)
    adaptive = dims.batch * dims.num_sensors**2 * dims.layers  # adaptive adjacency mixing
    pools = dims.batch * dims.num_sensors * dims.hidden**2  # node-adaptive weights
    return rnn + adaptive + pools


def _stfgnn_elements(dims: ModelDims) -> float:
    # fused spatio-temporal graph (~4N nodes) mixed at every temporal block:
    # the O(B * H * N^2) term that makes STFGNN the first to OOM as N grows.
    # Constant calibrated so the V100 boundary matches the paper's Table VI
    # (OOM at N=883 / H=72; fits at N=358 / H=72 and at H=12).
    fused = dims.batch * dims.history * dims.num_sensors**2 * 0.6
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return fused + states


def _enhancenet_elements(dims: ModelDims) -> float:
    # per-location parameter adjustments generated at every unrolled step
    adjustments = dims.batch * dims.history * dims.num_sensors * dims.hidden**2 / 2.0
    rnn = _rnn_elements(dims)
    return adjustments + rnn


def _graph_conv_elements(dims: ModelDims) -> float:
    mixing = dims.batch * dims.history * dims.num_sensors**2 / 8.0
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return mixing + states


def _per_sensor_elements(dims: ModelDims) -> float:
    # graph-free track (SimST): every term is linear in N.  Augmented window
    # (2 channels: raw + neighbor aggregate, plus the k-neighbor gather
    # buffer), a few hidden states of the shared encoder, and the horizon
    # output — no N² operator anywhere, which is the whole point.
    neighbor_gather = dims.batch * dims.num_sensors * dims.proxies * dims.history
    window = dims.batch * dims.num_sensors * dims.history * 2
    states = dims.batch * dims.num_sensors * dims.hidden * 3
    output = dims.batch * dims.num_sensors * dims.horizon
    return neighbor_gather + window + states + output


_FAMILIES: Dict[str, Callable[[ModelDims], float]] = {
    "attention": _attention_elements,  # SA / ATT / LongFormer(full-band) / ASTGNN
    "window_attention": _window_attention_elements,  # WA / S-WA / ST-WA
    "rnn": _rnn_elements,  # GRU / DCRNN / meta-LSTM
    "agcrn": _agcrn_elements,
    "stfgnn": _stfgnn_elements,
    "enhancenet": _enhancenet_elements,
    "graph_conv": _graph_conv_elements,  # STGCN / GWN / STSGCN / STG2Seq
    "per_sensor": _per_sensor_elements,  # SimST graph-free track
}


def activation_gb(family: str, dims: ModelDims) -> float:
    """Estimated peak activation memory in GB for a training step."""
    if family not in _FAMILIES:
        raise KeyError(f"unknown family {family!r}; available: {sorted(_FAMILIES)}")
    elements = _FAMILIES[family](dims)
    return elements * BYTES_PER_ELEMENT * BACKWARD_FACTOR / 1024**3


def parameter_gb(num_parameters: int) -> float:
    """Parameter + Adam-state memory in GB (weights, grads, m, v)."""
    return num_parameters * BYTES_PER_ELEMENT * 4 / 1024**3


def fits_in_budget(family: str, dims: ModelDims, budget_gb: float = V100_BUDGET_GB) -> bool:
    """Whether a training step fits the device budget (the paper's V100)."""
    return activation_gb(family, dims) <= budget_gb


def families() -> list[str]:
    """Known architecture families."""
    return sorted(_FAMILIES)


# --------------------------------------------------------------------- #
# capacity planning: which models fit at city scale, and in how many shards
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CapacityPlan:
    """One model's memory verdict at one sensor count.

    ``shards_needed`` is the smallest shard count K whose per-shard
    activation footprint (the model evaluated at ⌈N/K⌉ sensors) fits the
    budget — ``None`` if no K up to the planner's ``max_shards`` does.
    ``sensor_shardable`` says whether the execution layer can actually
    deliver that split: only per-sensor families decompose along the sensor
    axis (everything else mixes across sensors inside the forward), so a
    plan with ``shards_needed > 1`` and ``sensor_shardable=False`` means
    *does not fit, and sharding cannot save it*.
    """

    model: str
    family: str
    num_sensors: int
    activation_gb: float
    bytes_per_sensor: float
    fits: bool
    shards_needed: Optional[int]
    sensor_shardable: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "family": self.family,
            "num_sensors": self.num_sensors,
            "activation_gb": self.activation_gb,
            "bytes_per_sensor": self.bytes_per_sensor,
            "fits": self.fits,
            "shards_needed": self.shards_needed,
            "sensor_shardable": self.sensor_shardable,
        }


class CapacityPlanner:
    """Bytes/sensor model over the registered zoo → shard plans at scale.

    Extends the Table VI analytic activation model into a planning surface:
    for any registered model name and sensor count it answers *does a
    training step fit the device budget, and if not, how many contiguous
    sensor shards would make it fit* (the split
    :class:`repro.exec.ShardedExecutor` implements).

    Parameters
    ----------
    budget_gb:
        Per-process (per-shard-worker) memory budget.  Defaults to the
        paper's V100.
    dims:
        Template :class:`ModelDims`; ``num_sensors`` is replaced per query.
    bytes_per_element:
        4 for the paper's float32 PyTorch setup (default); pass 8 when
        checking the planner against this repo's float64 NumPy substrate
        (``shard-bench`` does).
    max_shards:
        Upper bound on the shard search; past this the plan reports
        ``shards_needed=None``.
    """

    def __init__(
        self,
        budget_gb: float = V100_BUDGET_GB,
        *,
        dims: Optional[ModelDims] = None,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        max_shards: int = 1024,
    ):
        if budget_gb <= 0:
            raise ValueError(f"budget_gb must be positive, got {budget_gb}")
        self.budget_gb = float(budget_gb)
        self.dims = dims if dims is not None else ModelDims()
        self.bytes_per_element = int(bytes_per_element)
        self.max_shards = int(max_shards)

    # ------------------------------------------------------------------ #
    def family_gb(self, family: str, num_sensors: int) -> float:
        """Activation GB of ``family`` at ``num_sensors`` (planner bytes)."""
        if family not in _FAMILIES:
            raise KeyError(
                f"unknown family {family!r}; available: {sorted(_FAMILIES)}"
            )
        dims = ModelDims(
            batch=self.dims.batch,
            num_sensors=int(num_sensors),
            history=self.dims.history,
            horizon=self.dims.horizon,
            hidden=self.dims.hidden,
            layers=self.dims.layers,
            heads=self.dims.heads,
            proxies=self.dims.proxies,
        )
        elements = _FAMILIES[family](dims)
        return elements * self.bytes_per_element * BACKWARD_FACTOR / 1024**3

    def plan(self, model_name: str, num_sensors: int) -> CapacityPlan:
        """Memory verdict + shard plan for one registered model at N sensors."""
        from ..baselines.registry import model_family

        if num_sensors < 1:
            raise ValueError(f"num_sensors must be >= 1, got {num_sensors}")
        family = model_family(model_name)
        total_gb = self.family_gb(family, num_sensors)
        shards: Optional[int] = None
        for k in range(1, self.max_shards + 1):
            per_shard = -(-num_sensors // k)  # ceil(N/k)
            if self.family_gb(family, per_shard) <= self.budget_gb:
                shards = k
                break
        return CapacityPlan(
            model=model_name.lower(),
            family=family,
            num_sensors=int(num_sensors),
            activation_gb=total_gb,
            bytes_per_sensor=total_gb * 1024**3 / num_sensors,
            fits=total_gb <= self.budget_gb,
            shards_needed=shards,
            sensor_shardable=family == "per_sensor",
        )

    def report(
        self,
        models: Optional[Sequence[str]] = None,
        sensor_counts: Sequence[int] = (10_000, 50_000),
    ) -> Dict[str, object]:
        """Plans for every model × sensor count, JSON-serializable."""
        from ..baselines.registry import MODEL_FAMILIES

        names = sorted(MODEL_FAMILIES) if models is None else list(models)
        return {
            "budget_gb": self.budget_gb,
            "bytes_per_element": self.bytes_per_element,
            "backward_factor": BACKWARD_FACTOR,
            "dims": {
                "batch": self.dims.batch,
                "history": self.dims.history,
                "horizon": self.dims.horizon,
                "hidden": self.dims.hidden,
                "layers": self.dims.layers,
            },
            "sensor_counts": [int(n) for n in sensor_counts],
            "models": {
                name: {
                    str(n): self.plan(name, n).to_dict() for n in sensor_counts
                }
                for name in names
            },
        }
