"""Analytic GPU-memory model (substitute for the paper's V100 OOM results).

Table VI of the paper reports STFGNN and EnhanceNet running **out of memory**
on PEMS07 (N=883) at H=U=72, while ST-WA fits.  We cannot observe CUDA OOM
on a CPU/NumPy substrate, so we model the dominant per-batch activation
footprint of each architecture family analytically and compare against the
device budget (16 GB for the paper's Tesla V100).  The formulas capture the
asymptotics that cause the paper's OOMs:

* canonical self-attention stores O(B · N · H²) attention scores;
* window attention stores O(B · N · p · H) — linear in H;
* STFGNN materializes a fused spatio-temporal graph of size (4N)² per
  sliding block, giving O(B · H · N²);
* EnhanceNet generates per-location parameter adjustments each step,
  O(B · H · N · d²);
* RNN families store O(B · N · H · d) unrolled states (AGCRN multiplies by
  the embedding mixing, still linear in H).

Estimates are intentionally coarse (constants tuned to the 4-byte float
PyTorch training footprint, activations kept for backward ≈ 2x forward);
what matters for the reproduction is the *relative* blow-up ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

BYTES_PER_ELEMENT = 4  # float32 training, as in the paper's PyTorch setup
BACKWARD_FACTOR = 2.0  # stored activations for backprop
V100_BUDGET_GB = 16.0


@dataclass(frozen=True)
class ModelDims:
    """Dimensions entering the memory model."""

    batch: int = 64
    num_sensors: int = 307
    history: int = 12
    horizon: int = 12
    hidden: int = 32
    layers: int = 3
    heads: int = 8
    proxies: int = 2


def _attention_elements(dims: ModelDims) -> float:
    scores = dims.batch * dims.num_sensors * dims.heads * dims.history**2 * dims.layers
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return scores + states


def _window_attention_elements(dims: ModelDims) -> float:
    scores = dims.batch * dims.num_sensors * dims.proxies * dims.history * dims.layers
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden
    generator = dims.batch * dims.num_sensors * dims.hidden**2  # generated K/V
    return scores + states + generator


def _rnn_elements(dims: ModelDims) -> float:
    return dims.batch * dims.num_sensors * dims.history * dims.hidden * 4 * dims.layers


def _agcrn_elements(dims: ModelDims) -> float:
    rnn = _rnn_elements(dims)
    adaptive = dims.batch * dims.num_sensors**2 * dims.layers  # adaptive adjacency mixing
    pools = dims.batch * dims.num_sensors * dims.hidden**2  # node-adaptive weights
    return rnn + adaptive + pools


def _stfgnn_elements(dims: ModelDims) -> float:
    # fused spatio-temporal graph (~4N nodes) mixed at every temporal block:
    # the O(B * H * N^2) term that makes STFGNN the first to OOM as N grows.
    # Constant calibrated so the V100 boundary matches the paper's Table VI
    # (OOM at N=883 / H=72; fits at N=358 / H=72 and at H=12).
    fused = dims.batch * dims.history * dims.num_sensors**2 * 0.6
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return fused + states


def _enhancenet_elements(dims: ModelDims) -> float:
    # per-location parameter adjustments generated at every unrolled step
    adjustments = dims.batch * dims.history * dims.num_sensors * dims.hidden**2 / 2.0
    rnn = _rnn_elements(dims)
    return adjustments + rnn


def _graph_conv_elements(dims: ModelDims) -> float:
    mixing = dims.batch * dims.history * dims.num_sensors**2 / 8.0
    states = dims.batch * dims.num_sensors * dims.history * dims.hidden * dims.layers
    return mixing + states


_FAMILIES: Dict[str, Callable[[ModelDims], float]] = {
    "attention": _attention_elements,  # SA / ATT / LongFormer(full-band) / ASTGNN
    "window_attention": _window_attention_elements,  # WA / S-WA / ST-WA
    "rnn": _rnn_elements,  # GRU / DCRNN / meta-LSTM
    "agcrn": _agcrn_elements,
    "stfgnn": _stfgnn_elements,
    "enhancenet": _enhancenet_elements,
    "graph_conv": _graph_conv_elements,  # STGCN / GWN / STSGCN / STG2Seq
}


def activation_gb(family: str, dims: ModelDims) -> float:
    """Estimated peak activation memory in GB for a training step."""
    if family not in _FAMILIES:
        raise KeyError(f"unknown family {family!r}; available: {sorted(_FAMILIES)}")
    elements = _FAMILIES[family](dims)
    return elements * BYTES_PER_ELEMENT * BACKWARD_FACTOR / 1024**3


def parameter_gb(num_parameters: int) -> float:
    """Parameter + Adam-state memory in GB (weights, grads, m, v)."""
    return num_parameters * BYTES_PER_ELEMENT * 4 / 1024**3


def fits_in_budget(family: str, dims: ModelDims, budget_gb: float = V100_BUDGET_GB) -> bool:
    """Whether a training step fits the device budget (the paper's V100)."""
    return activation_gb(family, dims) <= budget_gb


def families() -> list[str]:
    """Known architecture families."""
    return sorted(_FAMILIES)
