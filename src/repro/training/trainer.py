"""Training loop: Adam + Huber(+KL) + early stopping (paper Section V-A).

The paper trains with Adam at lr=1e-3, batch size 64, up to 200 epochs with
early stopping (patience 15).  The :class:`Trainer` reproduces that loop on
our substrate and additionally records per-epoch wall time (for the runtime
figures) and supports a ``max_batches_per_epoch`` cap so the fast CI profile
finishes in seconds.

Observability: when ``TrainerConfig.sink`` is set, the loop emits a
structured event stream (``train_begin`` / ``batch`` / ``epoch`` /
``train_end`` dicts carrying loss, grad-norm, lr and wall seconds) through
the :class:`repro.obs.MetricsSink`; DESIGN.md documents the schema.  With no
sink configured nothing is built or emitted.

Scaling convention: models operate in z-scored space; the loss compares
against scaled targets while reported metrics are computed in raw units via
the dataset's scaler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.loss import STWALoss
from ..data.datasets import TrafficDataset
from ..data.windows import BatchIterator, SlidingWindowDataset, WindowSpec
from ..nn import Module
from ..obs import MetricsSink, NullSink
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..tensor import Tensor, no_grad
from . import metrics as metrics_module


@dataclass
class TrainerConfig:
    """Knobs of the training loop (paper defaults, scaled-down epochs)."""

    lr: float = 1e-3
    epochs: int = 200
    batch_size: int = 64
    patience: int = 15
    grad_clip: float = 5.0
    huber_delta: float = 1.0
    kl_weight: float = 0.02
    min_delta: float = 0.0  # minimum val-MAE improvement to reset patience
    max_batches_per_epoch: Optional[int] = None
    eval_batches: Optional[int] = None
    seed: int = 0
    verbose: bool = False
    sink: Optional[MetricsSink] = None  # structured event stream (JSONL etc.)


@dataclass
class TrainingHistory:
    """Per-epoch record produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    val_mae: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)  # mean pre-clip norm per epoch
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def seconds_per_epoch(self) -> float:
        """Mean wall seconds over *all* epochs, including the cold first one."""
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0

    @property
    def seconds_per_epoch_warm(self) -> float:
        """Mean wall seconds skipping epoch 0.

        The first epoch pays one-off costs (dataset windows materializing,
        allocator and CPU-cache warmup) that inflate the average the runtime
        harnesses report; skip it whenever more than one epoch ran.
        """
        if len(self.epoch_seconds) > 1:
            return float(np.mean(self.epoch_seconds[1:]))
        return self.seconds_per_epoch


class Trainer:
    """Train a forecaster on a :class:`TrafficDataset`.

    The model must map scaled ``(B, N, H, F)`` tensors to scaled
    ``(B, N, U, F)`` tensors; if it exposes ``kl_divergence()`` the KL
    regularizer is added with weight ``config.kl_weight`` (Eq. 20).
    """

    def __init__(
        self,
        model: Module,
        dataset: TrafficDataset,
        spec: WindowSpec,
        config: Optional[TrainerConfig] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.spec = spec
        self.config = config or TrainerConfig()
        # explicit None check: an empty ListSink is falsy via __len__
        self.sink: MetricsSink = NullSink() if self.config.sink is None else self.config.sink
        self._observed = self.config.sink is not None  # skip event building when off
        self.loss_fn = STWALoss(delta=self.config.huber_delta, kl_weight=self.config.kl_weight)
        # non-learned baselines (persistence, fitted VAR) have no parameters
        parameters = model.parameters()
        self.optimizer = Adam(parameters, lr=self.config.lr) if parameters else None
        self._rng = np.random.default_rng(self.config.seed)
        self._windows = {
            "train": SlidingWindowDataset(dataset.train, spec, raw=dataset.train_raw),
            "val": SlidingWindowDataset(dataset.val, spec, raw=dataset.val_raw),
            "test": SlidingWindowDataset(dataset.test, spec, raw=dataset.test_raw),
        }

    # ------------------------------------------------------------------ #
    def fit(self) -> TrainingHistory:
        """Run the training loop; restores the best-validation weights."""
        cfg = self.config
        history = TrainingHistory()
        if self.optimizer is None:
            return history  # nothing to train
        stopper = EarlyStopping(patience=cfg.patience, min_delta=cfg.min_delta)
        best_state = self.model.state_dict()
        iterator = BatchIterator(
            self._windows["train"],
            batch_size=cfg.batch_size,
            shuffle=True,
            rng=self._rng,
            max_batches=cfg.max_batches_per_epoch,
        )
        if self._observed:
            self.sink.emit(
                {
                    "event": "train_begin",
                    "model": type(self.model).__name__,
                    "parameters": self.model.num_parameters(),
                    "epochs": cfg.epochs,
                    "batch_size": cfg.batch_size,
                    "lr": cfg.lr,
                    "seed": cfg.seed,
                    "time": time.time(),
                }
            )
        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            self.model.train()
            losses = []
            norms = []
            for batch_index, (x_batch, y_raw) in enumerate(iterator):
                loss, grad_norm = self._train_step(x_batch, y_raw)
                losses.append(loss)
                norms.append(grad_norm)
                if self._observed:
                    self.sink.emit(
                        {
                            "event": "batch",
                            "epoch": epoch,
                            "batch": batch_index,
                            "loss": loss,
                            "grad_norm": grad_norm,
                            "time": time.time(),
                        }
                    )
            history.train_loss.append(float(np.mean(losses)))
            history.epoch_seconds.append(time.perf_counter() - start)
            history.grad_norms.append(float(np.mean(norms)))

            val = self.evaluate("val", max_batches=cfg.eval_batches)
            history.val_mae.append(val["mae"])
            should_stop = stopper.update(val["mae"], epoch)
            if stopper.improved_last_update:
                best_state = self.model.state_dict()
            if self._observed:
                self.sink.emit(
                    {
                        "event": "epoch",
                        "epoch": epoch,
                        "train_loss": history.train_loss[-1],
                        "val_mae": float(val["mae"]),
                        "grad_norm": history.grad_norms[-1],
                        "lr": cfg.lr,
                        "seconds": history.epoch_seconds[-1],
                        "time": time.time(),
                    }
                )
            if cfg.verbose:
                print(
                    f"epoch {epoch:3d} loss={history.train_loss[-1]:.4f} "
                    f"val_mae={val['mae']:.3f} ({history.epoch_seconds[-1]:.2f}s)"
                )
            if should_stop:
                history.stopped_early = True
                break
        history.best_epoch = stopper.best_epoch
        self.model.load_state_dict(best_state)
        if self._observed:
            self.sink.emit(
                {
                    "event": "train_end",
                    "epochs_run": history.epochs_run,
                    "best_epoch": history.best_epoch,
                    "stopped_early": history.stopped_early,
                    "seconds_per_epoch": history.seconds_per_epoch,
                    "seconds_per_epoch_warm": history.seconds_per_epoch_warm,
                    "time": time.time(),
                }
            )
        return history

    def _train_step(self, x_batch: np.ndarray, y_raw: np.ndarray) -> tuple:
        """One optimizer step; returns ``(loss, pre-clip grad norm)``."""
        scaled_target = Tensor(self.dataset.scaler.transform(y_raw))
        self.optimizer.zero_grad()
        prediction = self.model(Tensor(x_batch))
        loss = self.loss_fn(prediction, scaled_target, model=_kl_capable(self.model))
        value = float(loss.item())
        if not np.isfinite(value):
            raise FloatingPointError(
                f"training diverged: loss became {value}; lower the learning "
                "rate or tighten grad_clip"
            )
        loss.backward()
        max_norm = self.config.grad_clip if self.config.grad_clip else float("inf")
        grad_norm = clip_grad_norm(self.optimizer.parameters, max_norm)
        self.optimizer.step()
        return value, grad_norm

    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test", max_batches: Optional[int] = None) -> Dict[str, float]:
        """Raw-unit MAE/RMSE/MAPE over ``split``."""
        if split not in self._windows:
            raise KeyError(f"split must be one of {sorted(self._windows)}")
        self.model.eval()
        predictions, targets = [], []
        iterator = BatchIterator(
            self._windows[split],
            batch_size=self.config.batch_size,
            shuffle=False,
            max_batches=max_batches,
        )
        with no_grad():
            for x_batch, y_raw in iterator:
                prediction = self.model(Tensor(x_batch)).numpy()
                predictions.append(self.dataset.scaler.inverse_transform(prediction))
                targets.append(y_raw)
        prediction = np.concatenate(predictions)
        target = np.concatenate(targets)
        return metrics_module.evaluate_all(prediction, target)

    def predict(self, x_batch: np.ndarray) -> np.ndarray:
        """Forecast raw-unit values for a scaled input batch."""
        self.model.eval()
        with no_grad():
            scaled = self.model(Tensor(x_batch)).numpy()
        return self.dataset.scaler.inverse_transform(scaled)


def _kl_capable(model: Module):
    return model if hasattr(model, "kl_divergence") else None
