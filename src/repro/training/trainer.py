"""Training loop: Adam + Huber(+KL) + early stopping (paper Section V-A).

The paper trains with Adam at lr=1e-3, batch size 64, up to 200 epochs with
early stopping (patience 15).  The :class:`Trainer` reproduces that loop on
our substrate and additionally records per-epoch wall time (for the runtime
figures) and supports a ``max_batches_per_epoch`` cap so the fast CI profile
finishes in seconds.

Observability: when ``TrainerConfig.sink`` is set, the loop emits a
structured event stream (``train_begin`` / ``batch`` / ``epoch`` /
``recovery`` / ``train_end`` dicts carrying loss, grad-norm, lr and wall
seconds) through the :class:`repro.obs.MetricsSink`; DESIGN.md documents the
schema.  Sinks are wrapped in :class:`repro.obs.SafeSink` so a failing sink
degrades to dropping events instead of killing the run.  With no sink
configured nothing is built or emitted.

Resilience (see DESIGN.md "Resilience"): the loop is epoch-transactional.
At every epoch boundary the full training state — weights, best-so-far
weights, optimizer moments, early-stopping state, and all RNG streams — is
snapshotted in memory and (with ``checkpoint_dir`` set) persisted atomically
to disk, so:

* ``fit(resume_from=...)`` continues an interrupted run **bit-exactly** —
  the resumed trajectory is indistinguishable from an uninterrupted one.
* With a :class:`repro.resilience.RecoveryPolicy`, any
  :class:`FloatingPointError` raised during an epoch (NaN loss, a
  :func:`repro.tensor.detect_anomaly` hit, non-finite gradient norm, or a
  trailing-median loss explosion) rolls the run back to the last good
  boundary, backs the learning rate off, and retries — bounded by
  ``max_retries`` consecutive failures.

Execution (see DESIGN.md "Executor"): the loop never runs a model forward
itself — every step goes through a :class:`repro.exec.Executor` selected
by ``TrainerConfig(executor=ExecutorSpec(...))``.  The default is the
in-process :class:`repro.exec.SerialExecutor`;
``ExecutorSpec.parallel(n_workers=N)`` shards every mini-batch across N
worker processes (:mod:`repro.parallel`) and tree-reduces the shard
gradients, so optimizer state, checkpoints, recovery, and RNG streams all
stay in-process and the features above compose with parallelism unchanged.
Batches are assembled in a background prefetch process (double-buffered
shared memory) unless ``ExecutorSpec(prefetch=False)``.  For models that
draw no randomness in the training forward pass the parallel loss
trajectory matches serial training to float64 reduction accuracy at any
worker count.  Evaluation and prediction route through a
:class:`repro.exec.InferenceExecutor` (the same graph-free fast path the
serving plane uses).  The legacy ``TrainerConfig(n_workers=N)`` spelling
still works for one release and emits a :class:`DeprecationWarning`.

Scaling convention: models operate in z-scored space; the loss compares
against scaled targets while reported metrics are computed in raw units via
the dataset's scaler.  Targets containing NaN (dead sensors) are handled by
the masked Huber loss and masked metrics automatically.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..data.datasets import TrafficDataset
from ..data.windows import BatchIterator, SlidingWindowDataset, WindowSpec
from ..exec import ExecutorSpec, InferenceExecutor, make_executor
from ..nn import Module
from ..obs import MetricsSink, NullSink, SafeSink
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..resilience.recovery import LossExplosionError, RecoveryPolicy
from ..tensor import NumericalAnomalyError
from . import checkpoint as checkpoint_module
from . import metrics as metrics_module

PathLike = Union[str, Path]


@dataclass
class TrainerConfig:
    """Knobs of the training loop (paper defaults, scaled-down epochs)."""

    lr: float = 1e-3
    epochs: int = 200
    batch_size: int = 64
    patience: int = 15
    grad_clip: float = 5.0
    huber_delta: float = 1.0
    kl_weight: float = 0.02
    min_delta: float = 0.0  # minimum val-MAE improvement to reset patience
    max_batches_per_epoch: Optional[int] = None
    eval_batches: Optional[int] = None
    seed: int = 0
    verbose: bool = False
    sink: Optional[MetricsSink] = None  # structured event stream (JSONL etc.)
    # --- resilience ---------------------------------------------------- #
    checkpoint_dir: Optional[PathLike] = None  # persist full state per epoch
    checkpoint_every: int = 1  # epochs between on-disk checkpoints
    keep_last: int = 3  # retention for per-epoch checkpoints (<=0 keeps all)
    keep_best: bool = True  # also maintain best.npz (best-val weights)
    detect_anomaly: bool = False  # per-op NaN/Inf screening (slow; debugging)
    recovery: Optional[RecoveryPolicy] = None  # rollback/retry on divergence
    batch_hook: Optional[object] = None  # fault injection (resilience.faults)
    # --- execution backend (repro.exec; see DESIGN.md "Executor") ------- #
    executor: Optional[ExecutorSpec] = None  # None -> serial in-process
    # --- deprecated spellings of executor= (one release of grace) ------- #
    n_workers: int = 0  # DEPRECATED: use executor=ExecutorSpec.parallel(...)
    parallel_start_method: Optional[str] = None  # DEPRECATED: ExecutorSpec.start_method
    prefetch: bool = True  # DEPRECATED: ExecutorSpec.prefetch


@dataclass
class TrainingHistory:
    """Per-epoch record produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    val_mae: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)  # mean pre-clip norm per epoch
    best_epoch: int = -1
    stopped_early: bool = False
    recoveries: int = 0  # rollback/retry cycles taken by the recovery policy

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def seconds_per_epoch(self) -> float:
        """Mean wall seconds over *all* epochs, including the cold first one."""
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0

    @property
    def seconds_per_epoch_warm(self) -> float:
        """Mean wall seconds skipping epoch 0.

        The first epoch pays one-off costs (dataset windows materializing,
        allocator and CPU-cache warmup) that inflate the average the runtime
        harnesses report; skip it whenever more than one epoch ran.
        """
        if len(self.epoch_seconds) > 1:
            return float(np.mean(self.epoch_seconds[1:]))
        return self.seconds_per_epoch


class Trainer:
    """Train a forecaster on a :class:`TrafficDataset`.

    The model must map scaled ``(B, N, H, F)`` tensors to scaled
    ``(B, N, U, F)`` tensors; if it exposes ``kl_divergence()`` the KL
    regularizer is added with weight ``config.kl_weight`` (Eq. 20).
    """

    def __init__(
        self,
        model: Module,
        dataset: TrafficDataset,
        spec: WindowSpec,
        config: Optional[TrainerConfig] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.spec = spec
        self.config = config or TrainerConfig()
        # explicit None check: an empty ListSink is falsy via __len__.
        # User-provided sinks are isolated behind SafeSink so an emit
        # failure (full disk, closed handle) can never kill training.
        self.sink: MetricsSink = (
            NullSink() if self.config.sink is None else SafeSink(self.config.sink)
        )
        self._observed = self.config.sink is not None  # skip event building when off
        # non-learned baselines (persistence, fitted VAR) have no parameters
        parameters = model.parameters()
        self.optimizer = Adam(parameters, lr=self.config.lr) if parameters else None
        self._rng = np.random.default_rng(self.config.seed)
        self._recent_losses: deque = deque(maxlen=25)
        self.executor_spec = self._resolve_executor_spec(self.config)
        self.executor = make_executor(
            model,
            self.executor_spec,
            huber_delta=self.config.huber_delta,
            kl_weight=self.config.kl_weight,
            seed=self.config.seed,
        )
        # evaluation/prediction share the serving plane's graph-free fast
        # path; inputs are already in scaled model space, so no scaler.
        # Resource-free, so it can stay open for the trainer's lifetime.
        self._infer = InferenceExecutor(model).open()
        self._windows = {
            "train": SlidingWindowDataset(dataset.train, spec, raw=dataset.train_raw),
            "val": SlidingWindowDataset(dataset.val, spec, raw=dataset.val_raw),
            "test": SlidingWindowDataset(dataset.test, spec, raw=dataset.test_raw),
        }

    @staticmethod
    def _resolve_executor_spec(cfg: TrainerConfig) -> ExecutorSpec:
        """Map the config onto an :class:`ExecutorSpec`, legacy knobs included."""
        spec = cfg.executor
        if spec is None:
            if cfg.n_workers >= 2:
                warnings.warn(
                    "TrainerConfig(n_workers=...) is deprecated; pass "
                    "executor=ExecutorSpec.parallel(n_workers=...) instead",
                    DeprecationWarning,
                    stacklevel=4,
                )
                return ExecutorSpec.parallel(
                    n_workers=cfg.n_workers,
                    start_method=cfg.parallel_start_method,
                    prefetch=cfg.prefetch,
                    detect_anomaly=cfg.detect_anomaly,
                )
            return ExecutorSpec.serial(detect_anomaly=cfg.detect_anomaly)
        if spec.kind == "inference":
            raise ValueError(
                "TrainerConfig(executor=...) must be a serial, parallel, "
                "sharded, or compiled spec; an inference executor cannot train"
            )
        if cfg.n_workers:
            raise ValueError(
                "pass either TrainerConfig(executor=...) or the deprecated "
                "n_workers=, not both"
            )
        if cfg.detect_anomaly and not spec.detect_anomaly:
            spec = spec.with_overrides(detect_anomaly=True)
        return spec

    # ------------------------------------------------------------------ #
    def fit(self, resume_from: Optional[PathLike] = None) -> TrainingHistory:
        """Run the training loop; restores the best-validation weights.

        ``resume_from`` names a full-state checkpoint written by a previous
        run with ``checkpoint_dir`` set (see
        :func:`repro.training.latest_checkpoint`); training continues from
        the epoch after it, bit-exactly reproducing the uninterrupted run.
        """
        cfg = self.config
        history = TrainingHistory()
        if self.optimizer is None:
            return history  # nothing to train
        stopper = EarlyStopping(patience=cfg.patience, min_delta=cfg.min_delta)
        best_state = self.model.state_dict()
        start_epoch = 0
        if resume_from is not None:
            best_state, start_epoch = self._restore_checkpoint(resume_from, history, stopper)
        self.executor.open()  # workers spawn here for the parallel backend
        iterator = self._train_iterator()
        if self._observed:
            self.sink.emit(
                {
                    "event": "train_begin",
                    "model": type(self.model).__name__,
                    "parameters": self.model.num_parameters(),
                    "epochs": cfg.epochs,
                    "batch_size": cfg.batch_size,
                    "lr": cfg.lr,
                    "seed": cfg.seed,
                    "start_epoch": start_epoch,
                    "executor": self.executor_spec.kind,
                    "n_workers": self.executor_spec.n_workers,
                    "time": time.time(),
                }
            )
        policy = cfg.recovery
        self._recent_losses = deque(maxlen=policy.window if policy else 25)
        attempts = 0
        # in-memory rollback point: the state at the last good epoch boundary
        snapshot = self._capture_state(history, stopper, best_state, start_epoch - 1)
        epoch = start_epoch
        try:
            while epoch < cfg.epochs:
                try:
                    val_mae, should_stop = self._run_epoch(epoch, iterator, history, stopper)
                except FloatingPointError as error:
                    if policy is None or attempts >= policy.max_retries:
                        raise
                    attempts += 1
                    lr_before = self.optimizer.lr
                    best_state = self._restore_state(snapshot, history, stopper)
                    self.optimizer.lr = policy.backed_off_lr(lr_before)
                    self._recent_losses.clear()
                    history.recoveries += 1
                    if self._observed:
                        self.sink.emit(
                            {
                                "event": "recovery",
                                "epoch": epoch,
                                "attempt": attempts,
                                "error": type(error).__name__,
                                "message": str(error).splitlines()[0],
                                "rollback_epoch": snapshot["epoch"],
                                "lr": self.optimizer.lr,
                                "time": time.time(),
                            }
                        )
                    if cfg.verbose:
                        print(
                            f"recovery: {type(error).__name__} at epoch {epoch}; "
                            f"rolled back to epoch {snapshot['epoch']}, lr -> "
                            f"{self.optimizer.lr:.2e} (attempt {attempts}/{policy.max_retries})"
                        )
                    continue
                attempts = 0  # a clean epoch resets the retry budget
                if stopper.improved_last_update:
                    best_state = self.model.state_dict()
                if cfg.checkpoint_dir is not None and (epoch + 1) % max(1, cfg.checkpoint_every) == 0:
                    self._save_checkpoint(epoch, history, stopper, best_state, val_mae)
                snapshot = self._capture_state(history, stopper, best_state, epoch)
                if should_stop:
                    history.stopped_early = True
                    break
                epoch += 1
        finally:
            self.executor.close()
        history.best_epoch = stopper.best_epoch
        self.model.load_state_dict(best_state)
        if self._observed:
            self.sink.emit(
                {
                    "event": "train_end",
                    "epochs_run": history.epochs_run,
                    "best_epoch": history.best_epoch,
                    "stopped_early": history.stopped_early,
                    "recoveries": history.recoveries,
                    "seconds_per_epoch": history.seconds_per_epoch,
                    "seconds_per_epoch_warm": history.seconds_per_epoch_warm,
                    "time": time.time(),
                }
            )
        return history

    def _run_epoch(
        self,
        epoch: int,
        iterator: BatchIterator,
        history: TrainingHistory,
        stopper: EarlyStopping,
    ) -> Tuple[float, bool]:
        """One full epoch + validation; returns ``(val_mae, should_stop)``."""
        cfg = self.config
        policy = cfg.recovery
        start = time.perf_counter()
        self.model.train()
        losses = []
        norms = []
        for batch_index, (x_batch, y_raw) in enumerate(iterator):
            loss, grad_norm = self._train_step(x_batch, y_raw, epoch, batch_index)
            if policy is not None:
                recent = self._recent_losses
                if len(recent) >= policy.min_history:
                    median = float(np.median(recent))
                    if loss > policy.explosion_factor * max(median, 1e-8):
                        raise LossExplosionError(loss, median, policy.explosion_factor)
                recent.append(loss)
            losses.append(loss)
            norms.append(grad_norm)
            if self._observed:
                self.sink.emit(
                    {
                        "event": "batch",
                        "epoch": epoch,
                        "batch": batch_index,
                        "loss": loss,
                        "grad_norm": grad_norm,
                        "time": time.time(),
                    }
                )
        history.train_loss.append(float(np.mean(losses)))
        history.epoch_seconds.append(time.perf_counter() - start)
        history.grad_norms.append(float(np.mean(norms)))

        val = self.evaluate("val", max_batches=cfg.eval_batches)
        history.val_mae.append(float(val["mae"]))
        should_stop = stopper.update(val["mae"], epoch)
        if self._observed:
            self.sink.emit(
                {
                    "event": "epoch",
                    "epoch": epoch,
                    "train_loss": history.train_loss[-1],
                    "val_mae": float(val["mae"]),
                    "grad_norm": history.grad_norms[-1],
                    "lr": self.optimizer.lr,
                    "seconds": history.epoch_seconds[-1],
                    "time": time.time(),
                }
            )
        if cfg.verbose:
            print(
                f"epoch {epoch:3d} loss={history.train_loss[-1]:.4f} "
                f"val_mae={val['mae']:.3f} ({history.epoch_seconds[-1]:.2f}s)"
            )
        return float(val["mae"]), should_stop

    def _train_step(self, x_batch: np.ndarray, y_raw: np.ndarray, epoch: int, batch_index: int) -> tuple:
        """One optimizer step; returns ``(loss, pre-clip grad norm)``.

        The forward/backward itself is the executor's job (serial or
        sharded — the trainer cannot tell); clipping, fault hooks, and the
        optimizer step stay here so optimizer state never leaves the
        parent process.
        """
        scaled_target = self.dataset.scaler.transform(y_raw)
        result = self.executor.train_step(None, (x_batch, scaled_target))
        return result.loss, self._apply_gradients(epoch, batch_index)

    def _apply_gradients(self, epoch: int, batch_index: int) -> float:
        """Fault hooks, clipping, non-finite guard, optimizer step."""
        cfg = self.config
        hook = cfg.batch_hook
        if hook is not None:
            after_backward = getattr(hook, "after_backward", None)
            if after_backward is not None:
                after_backward(self, epoch, batch_index)
        max_norm = cfg.grad_clip if cfg.grad_clip else float("inf")
        grad_norm = clip_grad_norm(self.optimizer.parameters, max_norm)
        if not np.isfinite(grad_norm):
            # clip_grad_norm skipped scaling and returned the raw norm;
            # stepping would poison the Adam moments — surface it instead
            raise NumericalAnomalyError(
                "clip_grad_norm", "backward", "nan" if np.isnan(grad_norm) else "inf"
            )
        self.optimizer.step()
        if hook is not None:
            after_batch = getattr(hook, "after_batch", None)
            if after_batch is not None:
                after_batch(self, epoch, batch_index)
        return grad_norm

    def _train_iterator(self):
        """The training-batch source; the executor picks plain vs prefetched."""
        cfg = self.config
        return self.executor.make_batch_iterator(
            self._windows["train"],
            batch_size=cfg.batch_size,
            shuffle=True,
            rng=self._rng,
            max_batches=cfg.max_batches_per_epoch,
        )

    # ------------------------------------------------------------------ #
    # resilience: state capture / restore / persistence
    # ------------------------------------------------------------------ #
    def _rng_generators(self) -> Dict[str, np.random.Generator]:
        """Every RNG stream training consumes, keyed by qualified name.

        Modules hold their generators as instance attributes (dropout masks,
        latent sampling); discovering them generically keeps checkpointing
        model-agnostic.
        """
        found: Dict[str, np.random.Generator] = {}
        for name, module in self.model.named_modules():
            for attr, value in vars(module).items():
                if isinstance(value, np.random.Generator):
                    found[f"{name}.{attr}" if name else attr] = value
        return found

    def _rng_states(self) -> Dict:
        return {
            "trainer": self._rng.bit_generator.state,
            "modules": {
                key: gen.bit_generator.state for key, gen in self._rng_generators().items()
            },
        }

    def _set_rng_states(self, states: Dict) -> None:
        self._rng.bit_generator.state = states["trainer"]
        generators = self._rng_generators()
        for key, state in states.get("modules", {}).items():
            if key in generators:
                generators[key].bit_generator.state = state

    @staticmethod
    def _history_state(history: TrainingHistory) -> Dict:
        return {
            "train_loss": list(history.train_loss),
            "val_mae": list(history.val_mae),
            "epoch_seconds": list(history.epoch_seconds),
            "grad_norms": list(history.grad_norms),
            "best_epoch": history.best_epoch,
            "stopped_early": history.stopped_early,
            "recoveries": history.recoveries,
        }

    @staticmethod
    def _load_history(history: TrainingHistory, state: Dict) -> None:
        history.train_loss[:] = [float(v) for v in state["train_loss"]]
        history.val_mae[:] = [float(v) for v in state["val_mae"]]
        history.epoch_seconds[:] = [float(v) for v in state["epoch_seconds"]]
        history.grad_norms[:] = [float(v) for v in state["grad_norms"]]
        history.best_epoch = int(state["best_epoch"])
        history.stopped_early = bool(state["stopped_early"])
        history.recoveries = int(state.get("recoveries", 0))

    def _capture_state(
        self,
        history: TrainingHistory,
        stopper: EarlyStopping,
        best_state: Dict[str, np.ndarray],
        epoch: int,
    ) -> Dict:
        """In-memory snapshot of the epoch boundary (rollback point)."""
        return {
            "epoch": epoch,
            "model": self.model.state_dict(),
            "best": dict(best_state),
            "optimizer": self.optimizer.state_dict(),
            "stopper": stopper.state_dict(),
            "rng": self._rng_states(),
            "history": self._history_state(history),
        }

    def _restore_state(
        self, snapshot: Dict, history: TrainingHistory, stopper: EarlyStopping
    ) -> Dict[str, np.ndarray]:
        """Roll every mutable piece of the run back to ``snapshot``."""
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optimizer"])
        stopper.load_state_dict(snapshot["stopper"])
        self._set_rng_states(snapshot["rng"])
        self._load_history(history, snapshot["history"])
        return dict(snapshot["best"])

    def _save_checkpoint(
        self,
        epoch: int,
        history: TrainingHistory,
        stopper: EarlyStopping,
        best_state: Dict[str, np.ndarray],
        val_mae: float,
    ) -> Path:
        directory = Path(self.config.checkpoint_dir)
        state = {
            "epoch": epoch,
            "stopper": stopper.state_dict(),
            "rng": self._rng_states(),
            "history": self._history_state(history),
        }
        path = checkpoint_module.save_training_checkpoint(
            directory / f"ckpt_epoch_{epoch:04d}.npz",
            model_state=self.model.state_dict(),
            best_state=best_state,
            optimizer_state=self.optimizer.state_dict(),
            state=state,
        )
        checkpoint_module.prune_checkpoints(directory, self.config.keep_last)
        if self.config.keep_best and stopper.improved_last_update:
            checkpoint_module.save_state_dict(
                best_state,
                directory / "best.npz",
                metadata={"epoch": epoch, "val_mae": float(val_mae)},
            )
        return path

    def _restore_checkpoint(
        self, path: PathLike, history: TrainingHistory, stopper: EarlyStopping
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Load a full-state checkpoint; returns ``(best_state, start_epoch)``."""
        ckpt = checkpoint_module.load_training_checkpoint(path)
        self.model.load_state_dict(ckpt.model_state)
        if ckpt.optimizer_state is not None:
            self.optimizer.load_state_dict(ckpt.optimizer_state)
        stopper.load_state_dict(ckpt.state["stopper"])
        self._set_rng_states(ckpt.state["rng"])
        self._load_history(history, ckpt.state["history"])
        return ckpt.best_state, ckpt.epoch + 1

    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test", max_batches: Optional[int] = None) -> Dict[str, float]:
        """Raw-unit MAE/RMSE/MAPE over ``split`` (NaN targets are masked)."""
        if split not in self._windows:
            raise KeyError(f"split must be one of {sorted(self._windows)}")
        predictions, targets = [], []
        iterator = BatchIterator(
            self._windows[split],
            batch_size=self.config.batch_size,
            shuffle=False,
            max_batches=max_batches,
        )
        for x_batch, y_raw in iterator:
            prediction = self._infer.predict(None, x_batch)
            predictions.append(self.dataset.scaler.inverse_transform(prediction))
            targets.append(y_raw)
        prediction = np.concatenate(predictions)
        target = np.concatenate(targets)
        return metrics_module.evaluate_all(prediction, target)

    def predict(self, x_batch: np.ndarray) -> np.ndarray:
        """Forecast raw-unit values for a scaled input batch (eval mode).

        Runs through the trainer's :class:`repro.exec.InferenceExecutor`
        (graph-free forward, dropout and latent sampling off); the model's
        previous train/eval mode is restored afterward.
        """
        scaled = self._infer.predict(None, x_batch)
        return self.dataset.scaler.inverse_transform(scaled)
