"""Training loop: Adam + Huber(+KL) + early stopping (paper Section V-A).

The paper trains with Adam at lr=1e-3, batch size 64, up to 200 epochs with
early stopping (patience 15).  The :class:`Trainer` reproduces that loop on
our substrate and additionally records per-epoch wall time (for the runtime
figures) and supports a ``max_batches_per_epoch`` cap so the fast CI profile
finishes in seconds.

Scaling convention: models operate in z-scored space; the loss compares
against scaled targets while reported metrics are computed in raw units via
the dataset's scaler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.loss import STWALoss
from ..data.datasets import TrafficDataset
from ..data.windows import BatchIterator, SlidingWindowDataset, WindowSpec
from ..nn import Module
from ..optim import Adam, EarlyStopping, clip_grad_norm
from ..tensor import Tensor, no_grad
from . import metrics as metrics_module


@dataclass
class TrainerConfig:
    """Knobs of the training loop (paper defaults, scaled-down epochs)."""

    lr: float = 1e-3
    epochs: int = 200
    batch_size: int = 64
    patience: int = 15
    grad_clip: float = 5.0
    huber_delta: float = 1.0
    kl_weight: float = 0.02
    min_delta: float = 0.0  # minimum val-MAE improvement to reset patience
    max_batches_per_epoch: Optional[int] = None
    eval_batches: Optional[int] = None
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainingHistory:
    """Per-epoch record produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    val_mae: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def seconds_per_epoch(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


class Trainer:
    """Train a forecaster on a :class:`TrafficDataset`.

    The model must map scaled ``(B, N, H, F)`` tensors to scaled
    ``(B, N, U, F)`` tensors; if it exposes ``kl_divergence()`` the KL
    regularizer is added with weight ``config.kl_weight`` (Eq. 20).
    """

    def __init__(
        self,
        model: Module,
        dataset: TrafficDataset,
        spec: WindowSpec,
        config: Optional[TrainerConfig] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.spec = spec
        self.config = config or TrainerConfig()
        self.loss_fn = STWALoss(delta=self.config.huber_delta, kl_weight=self.config.kl_weight)
        # non-learned baselines (persistence, fitted VAR) have no parameters
        parameters = model.parameters()
        self.optimizer = Adam(parameters, lr=self.config.lr) if parameters else None
        self._rng = np.random.default_rng(self.config.seed)
        self._windows = {
            "train": SlidingWindowDataset(dataset.train, spec, raw=dataset.train_raw),
            "val": SlidingWindowDataset(dataset.val, spec, raw=dataset.val_raw),
            "test": SlidingWindowDataset(dataset.test, spec, raw=dataset.test_raw),
        }

    # ------------------------------------------------------------------ #
    def fit(self) -> TrainingHistory:
        """Run the training loop; restores the best-validation weights."""
        cfg = self.config
        history = TrainingHistory()
        if self.optimizer is None:
            return history  # nothing to train
        stopper = EarlyStopping(patience=cfg.patience, min_delta=cfg.min_delta)
        best_state = self.model.state_dict()
        iterator = BatchIterator(
            self._windows["train"],
            batch_size=cfg.batch_size,
            shuffle=True,
            rng=self._rng,
            max_batches=cfg.max_batches_per_epoch,
        )
        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            self.model.train()
            losses = []
            for x_batch, y_raw in iterator:
                loss = self._train_step(x_batch, y_raw)
                losses.append(loss)
            history.train_loss.append(float(np.mean(losses)))
            history.epoch_seconds.append(time.perf_counter() - start)

            val = self.evaluate("val", max_batches=cfg.eval_batches)
            history.val_mae.append(val["mae"])
            if stopper.improved_last_update or stopper.best is None:
                pass
            should_stop = stopper.update(val["mae"], epoch)
            if stopper.improved_last_update:
                best_state = self.model.state_dict()
            if cfg.verbose:
                print(
                    f"epoch {epoch:3d} loss={history.train_loss[-1]:.4f} "
                    f"val_mae={val['mae']:.3f} ({history.epoch_seconds[-1]:.2f}s)"
                )
            if should_stop:
                history.stopped_early = True
                break
        history.best_epoch = stopper.best_epoch
        self.model.load_state_dict(best_state)
        return history

    def _train_step(self, x_batch: np.ndarray, y_raw: np.ndarray) -> float:
        scaled_target = Tensor(self.dataset.scaler.transform(y_raw))
        self.optimizer.zero_grad()
        prediction = self.model(Tensor(x_batch))
        loss = self.loss_fn(prediction, scaled_target, model=_kl_capable(self.model))
        value = float(loss.item())
        if not np.isfinite(value):
            raise FloatingPointError(
                f"training diverged: loss became {value}; lower the learning "
                "rate or tighten grad_clip"
            )
        loss.backward()
        if self.config.grad_clip:
            clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()
        return value

    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test", max_batches: Optional[int] = None) -> Dict[str, float]:
        """Raw-unit MAE/RMSE/MAPE over ``split``."""
        if split not in self._windows:
            raise KeyError(f"split must be one of {sorted(self._windows)}")
        self.model.eval()
        predictions, targets = [], []
        iterator = BatchIterator(
            self._windows[split],
            batch_size=self.config.batch_size,
            shuffle=False,
            max_batches=max_batches,
        )
        with no_grad():
            for x_batch, y_raw in iterator:
                prediction = self.model(Tensor(x_batch)).numpy()
                predictions.append(self.dataset.scaler.inverse_transform(prediction))
                targets.append(y_raw)
        prediction = np.concatenate(predictions)
        target = np.concatenate(targets)
        return metrics_module.evaluate_all(prediction, target)

    def predict(self, x_batch: np.ndarray) -> np.ndarray:
        """Forecast raw-unit values for a scaled input batch."""
        self.model.eval()
        with no_grad():
            scaled = self.model(Tensor(x_batch)).numpy()
        return self.dataset.scaler.inverse_transform(scaled)


def _kl_capable(model: Module):
    return model if hasattr(model, "kl_divergence") else None
