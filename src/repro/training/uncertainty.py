"""Probabilistic forecasts from the stochastic latent variables.

A byproduct of the paper's design the original does not exploit: because
ST-WA's parameters are *sampled* from Θ_t^(i), keeping the sampler active
at inference time turns the model into an implicit predictive distribution.
Drawing S forward passes yields an empirical forecast ensemble from which
we report point forecasts (median), prediction intervals, and coverage
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..nn import Module
from ..tensor import Tensor, no_grad


@dataclass
class IntervalForecast:
    """An ensemble forecast with symmetric quantile bands (raw units)."""

    median: np.ndarray  # (B, N, U, F)
    lower: np.ndarray
    upper: np.ndarray
    samples: np.ndarray  # (S, B, N, U, F)
    level: float

    @property
    def width(self) -> np.ndarray:
        """Interval width per forecast entry."""
        return self.upper - self.lower

    def coverage(self, target: np.ndarray) -> float:
        """Fraction of raw-unit targets inside [lower, upper]."""
        target = np.asarray(target)
        if target.shape != self.median.shape:
            raise ValueError(f"target shape {target.shape} != forecast shape {self.median.shape}")
        inside = (target >= self.lower) & (target <= self.upper)
        return float(inside.mean())


def sample_forecasts(
    model: Module,
    x_batch: np.ndarray,
    scaler,
    num_samples: int = 20,
) -> np.ndarray:
    """Draw ``num_samples`` stochastic forward passes (raw units).

    The model is put in *training* mode so the latent sampler is active,
    but gradients are disabled; deterministic models simply return
    identical samples.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    was_training = model.training
    model.train()  # activate the latent sampler
    samples = []
    try:
        with no_grad():
            for _ in range(num_samples):
                prediction = model(Tensor(x_batch)).numpy()
                samples.append(scaler.inverse_transform(prediction))
    finally:
        model.train(was_training)
    return np.stack(samples)


def predict_interval(
    model: Module,
    x_batch: np.ndarray,
    scaler,
    num_samples: int = 20,
    level: float = 0.9,
) -> IntervalForecast:
    """Ensemble prediction interval at the given coverage ``level``."""
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    samples = sample_forecasts(model, x_batch, scaler, num_samples=num_samples)
    alpha = (1.0 - level) / 2.0
    return IntervalForecast(
        median=np.quantile(samples, 0.5, axis=0),
        lower=np.quantile(samples, alpha, axis=0),
        upper=np.quantile(samples, 1.0 - alpha, axis=0),
        samples=samples,
        level=level,
    )


def interval_diagnostics(forecast: IntervalForecast, target: np.ndarray) -> Dict[str, float]:
    """Coverage and sharpness summary for a batch of targets."""
    return {
        "nominal_level": forecast.level,
        "empirical_coverage": forecast.coverage(target),
        "mean_width": float(forecast.width.mean()),
        "median_mae": float(np.mean(np.abs(forecast.median - np.asarray(target)))),
    }
