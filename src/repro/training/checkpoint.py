"""Model and full-training-state checkpointing to ``.npz`` archives.

Two layers:

* :func:`save_checkpoint` / :func:`load_checkpoint` — the original
  model-weights-plus-metadata archive (schema v1), unchanged on disk.
* :func:`save_training_checkpoint` / :func:`load_training_checkpoint` —
  schema v2: everything :class:`repro.training.Trainer` needs to resume a
  run *bit-exactly*: model weights, best-so-far weights, optimizer moments
  and step counter, learning rate, early-stopping state, the trainer's and
  the model's RNG streams, and the per-epoch history.

All writes are atomic: the archive is written to ``path.with_suffix(".tmp")``
and moved into place with :func:`os.replace`, so a crash mid-write can never
leave a truncated checkpoint where a good one (or none) should be.

Retention is handled by :func:`prune_checkpoints` (``keep_last``) together
with the Trainer's ``keep_best`` copy of the best-validation weights.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..nn import Module

PathLike = Union[str, Path]

#: bump when the full-state archive layout changes
CHECKPOINT_VERSION = 2


class CheckpointError(ValueError):
    """A checkpoint archive is unreadable, foreign, or schema-incompatible.

    Raised instead of the raw ``KeyError`` / ``zipfile.BadZipFile`` /
    ``json.JSONDecodeError`` that a truncated or foreign ``.npz`` would
    otherwise surface, so callers (``Trainer.fit(resume_from=...)``,
    :class:`repro.serve.ForecasterArtifact`) get one clear exception naming
    the path and — for schema mismatches — the found vs. expected version.
    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handling keeps working.
    """

#: filename pattern of the Trainer's per-epoch checkpoints
EPOCH_CHECKPOINT_GLOB = "ckpt_epoch_*.npz"


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def _normalize(path: PathLike) -> Path:
    """Resolve the final archive path (``np.savez`` would append ``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def encode_archive(
    arrays: Dict[str, np.ndarray], metadata: Optional[Dict] = None, compress: bool = True
) -> bytes:
    """Serialize arrays + JSON metadata to ``.npz`` bytes (the codec core).

    ``compress=False`` skips zlib — the right choice for transient wire
    transfer (:mod:`repro.parallel` ships weights to workers every step)
    where serialization latency matters more than size.
    """
    payload = dict(arrays)
    blob = json.dumps(metadata or {}, default=_json_default).encode("utf-8")
    # zero-length frombuffer is fragile across numpy versions; store an
    # explicit empty array so the round-trip is well-defined either way
    payload["__metadata__"] = (
        np.frombuffer(blob, dtype=np.uint8) if blob else np.zeros(0, dtype=np.uint8)
    )
    buffer = io.BytesIO()
    (np.savez_compressed if compress else np.savez)(buffer, **payload)
    return buffer.getvalue()


def decode_archive(data: bytes, label: str = "<bytes>") -> tuple:
    """Inverse of :func:`encode_archive`; returns ``(arrays, metadata)``.

    Raises :class:`CheckpointError` (naming ``label``) on truncated or
    foreign payloads, mirroring :func:`read_archive`.
    """
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            raw = (
                archive["__metadata__"] if "__metadata__" in archive.files else np.zeros(0, np.uint8)
            )
            metadata = json.loads(raw.tobytes().decode("utf-8")) if raw.size else {}
            arrays = {name: archive[name] for name in archive.files if name != "__metadata__"}
    except (zipfile.BadZipFile, ValueError, OSError, KeyError, EOFError) as error:
        raise CheckpointError(
            f"checkpoint {label} is corrupt or not a repro archive "
            f"({type(error).__name__}: {error})"
        ) from error
    except UnicodeDecodeError as error:
        raise CheckpointError(f"checkpoint {label} carries undecodable metadata") from error
    return arrays, metadata


def dumps_state_dict(state: Dict[str, np.ndarray], metadata: Optional[Dict] = None) -> bytes:
    """Encode a ``name -> array`` state dict to uncompressed codec bytes.

    The wire format :mod:`repro.parallel` uses for fork/spawn-safe weight
    transfer; round-trips through :func:`loads_state_dict`.
    """
    return encode_archive(state, metadata, compress=False)


def loads_state_dict(data: bytes) -> Dict[str, np.ndarray]:
    """Decode codec bytes produced by :func:`dumps_state_dict`."""
    arrays, _ = decode_archive(data, label="<state-dict bytes>")
    return arrays


def write_archive(path: PathLike, arrays: Dict[str, np.ndarray], metadata: Optional[Dict] = None) -> Path:
    """Atomically write arrays + JSON metadata to an ``.npz`` at ``path``."""
    path = _normalize(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = encode_archive(arrays, metadata, compress=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return path


def read_archive(path: PathLike) -> tuple:
    """Load ``(arrays, metadata)`` from an archive written by :func:`write_archive`.

    Raises :class:`CheckpointError` when ``path`` is missing, truncated, not
    an ``.npz`` at all, or carries undecodable metadata — never a bare
    ``zipfile``/``json`` error from three layers down.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        data = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"checkpoint {path} is unreadable ({error})") from error
    return decode_archive(data, label=str(path))


# --------------------------------------------------------------------- #
# schema v1: model weights + metadata
# --------------------------------------------------------------------- #
def save_state_dict(state: Dict[str, np.ndarray], path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Serialize a raw ``name -> array`` state dict (and metadata) to ``path``."""
    return write_archive(path, state, metadata)


def save_checkpoint(model: Module, path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Serialize a model's parameters (and JSON-able metadata) to ``path``.

    Parameter names may contain dots; they are stored as-is in the archive.
    The write is atomic (temp file + ``os.replace``).
    """
    return save_state_dict(model.state_dict(), path, metadata)


def load_checkpoint(model: Module, path: PathLike) -> Dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata."""
    arrays, metadata = read_archive(path)
    model.load_state_dict(arrays)
    return metadata


# --------------------------------------------------------------------- #
# schema v2: full training state
# --------------------------------------------------------------------- #
@dataclass
class TrainingCheckpoint:
    """Everything needed to resume a :class:`repro.training.Trainer` run.

    ``state`` is the JSON side: schema version, last completed ``epoch``,
    early-stopping state, RNG streams (trainer + per-module model
    generators), and the per-epoch history lists.
    """

    model_state: Dict[str, np.ndarray]
    best_state: Dict[str, np.ndarray]
    optimizer_state: Optional[Dict]
    state: Dict = field(default_factory=dict)

    @property
    def epoch(self) -> int:
        """Last completed epoch (resume starts at ``epoch + 1``)."""
        return int(self.state.get("epoch", -1))


def _flatten_optimizer(optimizer_state: Dict, arrays: Dict[str, np.ndarray]) -> Dict:
    """Split an optimizer state dict into npz arrays + a JSON template."""
    scalars: Dict[str, object] = {}
    slots: Dict[str, List[bool]] = {}
    for key, value in optimizer_state.items():
        if isinstance(value, list):
            slots[key] = [item is not None for item in value]
            for i, item in enumerate(value):
                if item is not None:
                    arrays[f"opt/{key}/{i}"] = item
        else:
            scalars[key] = value
    return {"scalars": scalars, "slots": slots}


def _rebuild_optimizer(template: Dict, arrays: Dict[str, np.ndarray]) -> Dict:
    state: Dict[str, object] = dict(template["scalars"])
    for key, filled in template["slots"].items():
        state[key] = [arrays[f"opt/{key}/{i}"] if present else None for i, present in enumerate(filled)]
    return state


def save_training_checkpoint(
    path: PathLike,
    *,
    model_state: Dict[str, np.ndarray],
    best_state: Dict[str, np.ndarray],
    optimizer_state: Optional[Dict],
    state: Dict,
) -> Path:
    """Atomically persist a schema-v2 full-state checkpoint."""
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model_state.items():
        arrays[f"model/{name}"] = value
    for name, value in best_state.items():
        arrays[f"best/{name}"] = value
    metadata = dict(state)
    metadata["version"] = CHECKPOINT_VERSION
    if optimizer_state is not None:
        metadata["optimizer"] = _flatten_optimizer(optimizer_state, arrays)
    return write_archive(path, arrays, metadata)


def load_training_checkpoint(path: PathLike) -> TrainingCheckpoint:
    """Load a schema-v2 checkpoint written by :func:`save_training_checkpoint`."""
    arrays, metadata = read_archive(path)
    version = metadata.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} is not a full-state training checkpoint "
            f"(schema version {version!r}, expected {CHECKPOINT_VERSION}); "
            "model-only archives load via load_checkpoint()"
        )
    model_state = {k[len("model/") :]: v for k, v in arrays.items() if k.startswith("model/")}
    best_state = {k[len("best/") :]: v for k, v in arrays.items() if k.startswith("best/")}
    optimizer_state = None
    if "optimizer" in metadata:
        optimizer_state = _rebuild_optimizer(metadata.pop("optimizer"), arrays)
    return TrainingCheckpoint(
        model_state=model_state,
        best_state=best_state,
        optimizer_state=optimizer_state,
        state=metadata,
    )


# --------------------------------------------------------------------- #
# retention
# --------------------------------------------------------------------- #
def list_checkpoints(directory: PathLike) -> List[Path]:
    """The Trainer's per-epoch checkpoints in ``directory``, oldest first."""
    return sorted(Path(directory).glob(EPOCH_CHECKPOINT_GLOB))


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """The newest per-epoch checkpoint in ``directory``, or None."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def prune_checkpoints(directory: PathLike, keep_last: int) -> List[Path]:
    """Delete all but the newest ``keep_last`` per-epoch checkpoints.

    Returns the removed paths.  ``keep_last <= 0`` keeps everything.
    """
    if keep_last <= 0:
        return []
    found = list_checkpoints(directory)
    removed = found[:-keep_last] if len(found) > keep_last else []
    for path in removed:
        path.unlink(missing_ok=True)
    return removed
