"""Model checkpointing to ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..nn import Module

PathLike = Union[str, Path]


def save_checkpoint(model: Module, path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Serialize a model's parameters (and JSON-able metadata) to ``path``.

    Parameter names may contain dots; they are stored as-is in the archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = model.state_dict()
    payload = dict(arrays)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(model: Module, path: PathLike) -> Dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata_raw = archive["__metadata__"].tobytes().decode("utf-8")
        state = {name: archive[name] for name in archive.files if name != "__metadata__"}
    model.load_state_dict(state)
    return json.loads(metadata_raw)
