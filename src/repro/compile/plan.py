"""Lowering: turn a captured op stream into a replayable linear program.

``lower_training_plan`` / ``lower_predict_plan`` walk a
:class:`repro.compile.capture.CaptureRecorder` exactly once and emit a
:class:`CompiledPlan`:

* a **node table** classifying every array in the trace as per-step input
  (``x``/``y``, rebound by name each replay), parameter (re-read through
  ``parameter.data`` so optimizer rebinds are seen), host input (per-step
  RNG draw, regenerated each replay to keep the serial RNG stream), or
  frozen constant (everything else — precomputed supports, scalars);
* a **forward program** of build-time-specialized closures writing into
  preallocated buffers (consecutive single-consumer elementwise ops are
  fused into one chain instruction);
* an **adjoint program** emitted by walking the recorded graph once in
  reverse — assign-vs-accumulate is decided per gradient buffer at build
  time, so replay does no tape, no graph, and no autograd bookkeeping.

Anything the op stream cannot faithfully replay raises
:class:`LoweringError` — ``where`` (its condition is Python-level data
that would freeze one batch's mask into the plan), host inputs without a
regeneration closure, or a training trace that never touches a parameter.
The executor treats a :class:`LoweringError` as "this signature is
interpreted-only" and falls back.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..tensor.tensor import Tensor
from .capture import CaptureRecorder, TraceRecord
from .kernels import ADJOINT, FORWARD, FUSABLE, reduce_grad

__all__ = ["CompiledPlan", "LoweringError", "lower_predict_plan", "lower_training_plan"]


class LoweringError(RuntimeError):
    """The captured step cannot be lowered to a replayable plan."""


class _LoweredOp:
    """One primitive with node-id operands and build-time static config."""

    __slots__ = ("name", "ins", "out", "static")

    def __init__(self, name: str, ins: Tuple[int, ...], out: int, static: dict) -> None:
        self.name = name
        self.ins = ins
        self.out = out
        self.static = static


class _Node:
    __slots__ = ("kind", "shape", "dtype", "requires")

    def __init__(self, kind: str, shape: Tuple[int, ...], dtype, requires: bool) -> None:
        self.kind = kind
        self.shape = shape
        self.dtype = dtype
        self.requires = requires


_REQUIRED = object()


def _arg(args: tuple, kwargs: dict, position: int, name: str, default=_REQUIRED):
    if position < len(args):
        return args[position]
    if name in kwargs:
        return kwargs[name]
    if default is _REQUIRED:
        raise LoweringError(f"captured op missing argument {name!r}")
    return default


class CompiledPlan:
    """A trace-once/replay-many program for one fixed-shape step."""

    def __init__(
        self,
        slots: list,
        input_binds: List[Tuple[int, str]],
        param_binds: List[Tuple[int, object]],
        host_binds: List[Tuple[Callable[[], np.ndarray], Optional[int]]],
        forward: List[Callable[[], None]],
        adjoint: List[Callable[[], None]],
        output: int,
        param_grads: List[Tuple[object, np.ndarray]],
        stats: dict,
    ) -> None:
        self._slots = slots
        self._input_binds = input_binds
        self._param_binds = param_binds
        self._host_binds = host_binds
        self._forward = forward
        self._adjoint = adjoint
        self._output = output
        self._param_grads = param_grads
        self.stats = stats

    def run_forward(self, bindings: Dict[str, np.ndarray]) -> np.ndarray:
        """Replay the forward program against fresh per-step ``bindings``."""
        slots = self._slots
        for nid, name in self._input_binds:
            slots[nid] = bindings[name]
        for nid, param in self._param_binds:
            slots[nid] = param.data
        for regen, nid in self._host_binds:
            # every regen runs, even for draws whose ops were pruned, so the
            # module generators stay in lockstep with the serial trajectory
            value = regen()
            if nid is not None:
                slots[nid] = value
        for instruction in self._forward:
            instruction()
        return slots[self._output]

    def run_adjoint(self) -> None:
        """Replay the precomputed adjoint program (no tape, no graph)."""
        for instruction in self._adjoint:
            instruction()

    def export_grads(self) -> None:
        """Hand the plan-owned gradient buffers to their parameters."""
        for param, buf in self._param_grads:
            param.grad = buf


class _PlanBuilder:
    """Node table + buffer arena + assign/accumulate bookkeeping.

    This is the ``ctx`` object the kernel builders in
    :mod:`repro.compile.kernels` program against.
    """

    def __init__(self, recorder: CaptureRecorder, need_grads: bool) -> None:
        self._recorder = recorder
        self._need_grads = need_grads
        self.nodes: List[_Node] = []
        self.slots: list = []
        self.grads: list = []
        self._by_tensor: Dict[int, int] = {}
        self._by_const: Dict[int, int] = {}
        self._const_keep: list = []  # pin key arrays so ids are never recycled
        self._by_host: Dict[int, int] = {}
        self._grad_seen: set = set()
        self._accum_scratch: Dict[Tuple[int, ...], np.ndarray] = {}
        self.buffer_bytes = 0
        self.input_binds: List[Tuple[int, str]] = []
        self.param_binds: List[Tuple[int, object]] = []

    # ------------------------------------------------------------------ #
    # node construction
    # ------------------------------------------------------------------ #
    def _new_node(self, kind: str, shape, dtype, requires: bool) -> int:
        nid = len(self.nodes)
        self.nodes.append(_Node(kind, tuple(shape), dtype, requires))
        self.slots.append(None)
        self.grads.append(None)
        return nid

    def add_param(self, param) -> int:
        nid = self._new_node(
            "param", param.data.shape, param.data.dtype,
            self._need_grads and bool(param.requires_grad),
        )
        self._by_tensor[id(param)] = nid
        self.param_binds.append((nid, param))
        return nid

    def add_input(self, name: str, tensor) -> int:
        nid = self._new_node("input", tensor.data.shape, tensor.data.dtype, False)
        self._by_tensor[id(tensor)] = nid
        self.input_binds.append((nid, name))
        return nid

    def _host_node(self, host_index: int, array: np.ndarray) -> int:
        nid = self._by_host.get(host_index)
        if nid is None:
            nid = self._new_node("host", array.shape, array.dtype, False)
            self._by_host[host_index] = nid
        return nid

    def _const_node(self, array: np.ndarray) -> int:
        key = id(array)
        nid = self._by_const.get(key)
        if nid is None:
            nid = self._new_node("const", array.shape, array.dtype, False)
            # frozen copy: the host may reuse or mutate the original buffer
            # (np.array, not ascontiguousarray — the latter promotes 0-d to 1-d)
            self.slots[nid] = np.array(array)
            self.buffer_bytes += self.slots[nid].nbytes
            self._by_const[key] = nid
            self._const_keep.append(array)
        return nid

    def tid(self, value) -> int:
        """Node id for one tensorish op argument."""
        if isinstance(value, Tensor):
            nid = self._by_tensor.get(id(value))
            if nid is not None:
                return nid
            host = self._recorder.host_index(value.data)
            nid = self._host_node(host, value.data) if host is not None else self._const_node(value.data)
            self._by_tensor[id(value)] = nid
            return nid
        if isinstance(value, np.ndarray):
            host = self._recorder.host_index(value)
            if host is not None:
                return self._host_node(host, value)
            return self._const_node(value)
        return self._const_node(np.asarray(value, dtype=np.float64))

    def add_op_out(self, out_tensor, ins: Tuple[int, ...]) -> int:
        requires = self._need_grads and any(self.nodes[i].requires for i in ins)
        nid = self._new_node("op", out_tensor.data.shape, out_tensor.data.dtype, requires)
        self._by_tensor[id(out_tensor)] = nid
        return nid

    # ------------------------------------------------------------------ #
    # kernel-builder (ctx) API
    # ------------------------------------------------------------------ #
    def shape(self, nid: int) -> Tuple[int, ...]:
        return self.nodes[nid].shape

    def requires(self, nid: int) -> bool:
        return self.nodes[nid].requires

    def out_buffer(self, nid: int) -> np.ndarray:
        node = self.nodes[nid]
        buf = np.empty(node.shape, dtype=node.dtype)
        self.slots[nid] = buf
        self.buffer_bytes += buf.nbytes
        return buf

    def scratch(self, shape, dtype=np.float64) -> np.ndarray:
        buf = np.empty(shape, dtype=dtype)
        self.buffer_bytes += buf.nbytes
        return buf

    def accum_scratch(self, shape) -> np.ndarray:
        """Shared staging buffer for accumulate-mode contributions.

        Adjoint instructions run strictly sequentially and each one consumes
        its staging buffer before the next starts, so one scratch per shape
        serves every accumulate site of that shape.
        """
        buf = self._accum_scratch.get(shape)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            self._accum_scratch[shape] = buf
            self.buffer_bytes += buf.nbytes
        return buf

    def grad_buffer(self, nid: int) -> np.ndarray:
        buf = self.grads[nid]
        if buf is None:
            buf = np.empty(self.nodes[nid].shape, dtype=np.float64)
            self.grads[nid] = buf
            self.buffer_bytes += buf.nbytes
        return buf

    def mark_contribution(self, nid: int) -> bool:
        """True for the first gradient contribution to ``nid`` (assign mode)."""
        first = nid not in self._grad_seen
        self._grad_seen.add(nid)
        return first

    def make_sink(self, nid: int, first: bool) -> Callable[[np.ndarray], None]:
        buf = self.grad_buffer(nid)
        shape = self.nodes[nid].shape

        if first:
            def sink(value: np.ndarray) -> None:
                if value.shape != shape:
                    value = reduce_grad(value, shape)
                np.copyto(buf, value)
        else:
            def sink(value: np.ndarray) -> None:
                if value.shape != shape:
                    value = reduce_grad(value, shape)
                np.add(buf, value, out=buf)

        return sink


# --------------------------------------------------------------------- #
# per-op argument normalization: raw (args, kwargs) -> _LoweredOp
# --------------------------------------------------------------------- #
_BINARY = frozenset({"add", "sub", "mul", "div", "maximum", "minimum", "matmul", "dropout_mask"})
_UNARY = frozenset({"neg", "exp", "log", "sqrt", "abs", "tanh", "sigmoid", "relu", "softplus"})
_REDUCTIONS = frozenset({"sum", "mean", "max"})


def _lower_record(builder: _PlanBuilder, rec: TraceRecord) -> _LoweredOp:
    name, args, kwargs = rec.name, rec.args, rec.kwargs
    if name == "where":
        raise LoweringError("op 'where' has a Python-level condition the plan cannot replay")
    out_data = rec.out.data

    if name in _BINARY:
        ins = (builder.tid(args[0]), builder.tid(args[1]))
        static: dict = {}
    elif name in _UNARY:
        ins = (builder.tid(args[0]),)
        static = {}
    elif name == "power":
        ins = (builder.tid(args[0]),)
        static = {"exponent": float(_arg(args, kwargs, 1, "exponent"))}
    elif name == "clip":
        ins = (builder.tid(args[0]),)
        static = {
            "low": float(_arg(args, kwargs, 1, "low")),
            "high": float(_arg(args, kwargs, 2, "high")),
        }
    elif name == "huber":
        ins = (builder.tid(args[0]),)
        static = {"delta": float(_arg(args, kwargs, 1, "delta", 1.0))}
    elif name == "leaky_relu":
        ins = (builder.tid(args[0]),)
        static = {"negative_slope": float(_arg(args, kwargs, 1, "negative_slope", 0.01))}
    elif name == "linear":
        bias = _arg(args, kwargs, 2, "bias", None)
        ins = (builder.tid(args[0]), builder.tid(args[1]))
        if bias is not None:
            ins = ins + (builder.tid(bias),)
        static = {}
    elif name == "transpose":
        axes = _arg(args, kwargs, 1, "axes", None)
        if axes is not None:
            axes = tuple(int(ax) for ax in axes)
        ins = (builder.tid(args[0]),)
        static = {
            "axes": axes,
            "inverse": None if axes is None else tuple(int(ax) for ax in np.argsort(axes)),
        }
    elif name == "swapaxes":
        ins = (builder.tid(args[0]),)
        static = {
            "axis1": int(_arg(args, kwargs, 1, "axis1")),
            "axis2": int(_arg(args, kwargs, 2, "axis2")),
        }
    elif name == "reshape":
        ins = (builder.tid(args[0]),)
        static = {"shape": tuple(int(n) for n in out_data.shape)}
    elif name == "getitem":
        ins = (builder.tid(args[0]),)
        static = {"index": _arg(args, kwargs, 1, "index")}
    elif name == "gather":
        a = builder.tid(args[0])
        ndim = len(builder.shape(a))
        axis = int(_arg(args, kwargs, 1, "axis"))
        static = {
            "axis": axis % ndim if ndim else 0,
            "index": np.array(_arg(args, kwargs, 2, "index")),
        }
        ins = (a,)
    elif name in ("concat", "stack"):
        sequence = _arg(args, kwargs, 0, "tensors")
        ins = tuple(builder.tid(t) for t in sequence)
        axis = int(_arg(args, kwargs, 1, "axis", 0))
        static = {"axis": axis % out_data.ndim}
    elif name == "pad":
        ins = (builder.tid(args[0]),)
        pad_width = _arg(args, kwargs, 1, "pad_width")
        static = {"pad_width": tuple((int(lo), int(hi)) for lo, hi in pad_width)}
    elif name == "broadcast_to":
        ins = (builder.tid(args[0]),)
        static = {"shape": tuple(int(n) for n in out_data.shape)}
    elif name in _REDUCTIONS:
        axis = _arg(args, kwargs, 1, "axis", None)
        if axis is not None:
            axis = int(axis) if isinstance(axis, (int, np.integer)) else tuple(int(ax) for ax in axis)
        ins = (builder.tid(args[0]),)
        static = {"axis": axis, "keepdims": bool(_arg(args, kwargs, 2, "keepdims", False))}
    elif name in ("softmax", "log_softmax"):
        ins = (builder.tid(args[0]),)
        static = {"axis": int(_arg(args, kwargs, 1, "axis", -1))}
    else:
        raise LoweringError(f"op {name!r} is outside the replayable set")
    return _LoweredOp(name, ins, builder.add_op_out(rec.out, ins), static)


def _group(fns: List[Callable[[], None]]) -> Callable[[], None]:
    if len(fns) == 1:
        return fns[0]
    chain = tuple(fns)

    def fused() -> None:
        for fn in chain:
            fn()

    return fused


def _assign_chains(kept: List[_LoweredOp], consumers: Dict[int, int]) -> List[Optional[int]]:
    """Chain id per op: maximal runs of single-consumer fusable elementwise ops."""
    chain_id: List[Optional[int]] = [None] * len(kept)
    next_id = 0
    i = 0
    while i < len(kept):
        if kept[i].name in FUSABLE:
            j = i
            while (
                j + 1 < len(kept)
                and kept[j + 1].name in FUSABLE
                and consumers.get(kept[j].out, 0) == 1
                and kept[j].out in kept[j + 1].ins
            ):
                j += 1
            if j > i:
                for k in range(i, j + 1):
                    chain_id[k] = next_id
                next_id += 1
            i = j + 1
        else:
            i += 1
    return chain_id


def _lower(recorder: CaptureRecorder, output_tensor, need_grads: bool) -> CompiledPlan:
    builder = _PlanBuilder(recorder, need_grads)
    for param in recorder.params:
        builder.add_param(param)
    for input_name, tensor in recorder.inputs.items():
        builder.add_input(input_name, tensor)
    if need_grads and not any(builder.nodes[nid].requires for nid, _ in builder.param_binds):
        raise LoweringError("training trace has no parameter requiring grad")

    ops = [_lower_record(builder, rec) for rec in recorder.records]
    output = builder._by_tensor.get(id(output_tensor))
    if output is None:
        raise LoweringError("step output was not produced by a traced op")

    # prune to the ancestors of the output (capture order is a topo order)
    needed = {output}
    keep = [False] * len(ops)
    for i in range(len(ops) - 1, -1, -1):
        if ops[i].out in needed:
            keep[i] = True
            needed.update(ops[i].ins)
    kept = [op for op, keeping in zip(ops, keep) if keeping]

    consumers: Dict[int, int] = {}
    for op in kept:
        for nid in op.ins:
            consumers[nid] = consumers.get(nid, 0) + 1
    consumers[output] = consumers.get(output, 0) + 1
    chain_id = _assign_chains(kept, consumers)

    # forward program: build every kernel, then group fused chains
    forward: List[Callable[[], None]] = []
    pending: List[Callable[[], None]] = []
    pending_chain: Optional[int] = None
    for op, cid in zip(kept, chain_id):
        builder_fn = FORWARD.get(op.name)
        if builder_fn is None:
            raise LoweringError(f"op {op.name!r} has no replay kernel")
        fn = builder_fn(builder, op)
        if cid is not None and cid == pending_chain:
            pending.append(fn)
            continue
        if pending:
            forward.append(_group(pending))
        pending, pending_chain = [fn], cid
    if pending:
        forward.append(_group(pending))

    # adjoint program: reverse walk, grouped by the same chains
    adjoint: List[Callable[[], None]] = []
    param_grads: List[Tuple[object, np.ndarray]] = []
    if need_grads:
        seed = builder.grad_buffer(output)
        seed.fill(1.0)
        builder.mark_contribution(output)
        pending, pending_chain = [], None
        for op, cid in zip(reversed(kept), reversed(chain_id)):
            if not builder.requires(op.out):
                continue
            fns = ADJOINT[op.name](builder, op)
            if not fns:
                continue
            if cid is not None and cid == pending_chain:
                pending.extend(fns)
                continue
            if pending:
                adjoint.append(_group(pending))
            pending, pending_chain = list(fns), cid
        if pending:
            adjoint.append(_group(pending))
        for nid, param in builder.param_binds:
            if builder.nodes[nid].requires and builder.grads[nid] is not None:
                param_grads.append((param, builder.grads[nid]))

    host_binds: List[Tuple[Callable[[], np.ndarray], Optional[int]]] = []
    for host_index, (_, regen) in enumerate(recorder.host_inputs):
        if regen is None:
            raise LoweringError("host input registered without a regeneration closure")
        host_binds.append((regen, builder._by_host.get(host_index)))

    fused_chains = len({cid for cid in chain_id if cid is not None})
    fused_ops = sum(1 for cid in chain_id if cid is not None)
    longest = max(Counter(cid for cid in chain_id if cid is not None).values()) if fused_chains else 0
    stats = {
        "ops_captured": len(recorder.records),
        "ops_kept": len(kept),
        "forward_instructions": len(forward),
        "adjoint_instructions": len(adjoint),
        "fused_chains": fused_chains,
        "fused_ops": fused_ops,
        "longest_chain": longest,
        "inputs": len(builder.input_binds),
        "params": len(builder.param_binds),
        "consts": len(builder._by_const),
        "host_inputs": len(host_binds),
        "buffer_bytes": builder.buffer_bytes,
    }
    return CompiledPlan(
        builder.slots,
        builder.input_binds,
        builder.param_binds,
        host_binds,
        forward,
        adjoint,
        output,
        param_grads,
        stats,
    )


def lower_training_plan(recorder: CaptureRecorder, loss_tensor) -> CompiledPlan:
    """Lower one captured train step (forward + loss) to a plan with adjoints."""
    if recorder.dead:
        raise LoweringError(recorder.dead_reason or "capture marked unsupported")
    return _lower(recorder, loss_tensor, need_grads=True)


def lower_predict_plan(recorder: CaptureRecorder, output_tensor) -> CompiledPlan:
    """Lower one captured forward pass to a replay-only plan (no adjoints)."""
    if recorder.dead:
        raise LoweringError(recorder.dead_reason or "capture marked unsupported")
    return _lower(recorder, output_tensor, need_grads=False)
