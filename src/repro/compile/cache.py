"""Signature-keyed LRU cache of compiled plans.

One :class:`CompiledExecutor` owns two of these (train and predict).  A
signature — step kind, train/eval mode, input shapes and dtypes — maps to
either a live :class:`repro.compile.plan.CompiledPlan` or a *dead* marker
recording why that signature can never be compiled (unsupported op,
validation mismatch).  Dead entries are cached too: re-tracing a step that
is known to fall back would pay the full interpreted step **plus** the
capture overhead on every call.

The cache is bounded (LRU eviction) so a caller cycling through many batch
shapes — the serving micro-batcher, a bucketed loader — cannot hold an
unbounded number of preallocated buffer arenas alive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU mapping plan signatures to live plans or dead markers."""

    LIVE, DEAD = "live", "dead"

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Tuple[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, signature: Hashable) -> Optional[Tuple[str, object]]:
        """``("live", plan)`` / ``("dead", reason)`` or ``None`` on a miss."""
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(signature)
        self.hits += 1
        return entry

    def put_live(self, signature: Hashable, plan) -> None:
        self._put(signature, (self.LIVE, plan))

    def put_dead(self, signature: Hashable, reason: str) -> None:
        self._put(signature, (self.DEAD, reason))

    def _put(self, signature: Hashable, entry: Tuple[str, object]) -> None:
        self._entries[signature] = entry
        self._entries.move_to_end(signature)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def live_plans(self) -> list:
        """The cached live plans, LRU order (oldest first); dead entries skipped."""
        return [entry for state, entry in self._entries.values() if state == self.LIVE]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: Hashable) -> bool:
        return signature in self._entries

    @property
    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
