"""CompiledExecutor: trace one interpreted step, replay it from a plan.

The first time a ``(kind, mode, shapes, dtypes)`` signature is seen, the
executor runs the ordinary interpreted step with a
:class:`repro.compile.capture.CaptureRecorder` installed, lowers the
recorded op stream to a :class:`repro.compile.plan.CompiledPlan`, then
**validates** the plan in place: module RNG generators are rewound and the
plan replayed against the very same batch, and the plan is accepted only
if it reproduces the interpreted loss and every parameter gradient to
``validate_rtol`` *and* leaves every generator in the exact state the
interpreted step did.  A plan that fails validation — or a trace that hits
``where``/BatchNorm-style unsupported state — pins the signature dead and
the executor transparently serves it through the interpreted
:class:`repro.exec.SerialExecutor` / :class:`repro.exec.InferenceExecutor`
forever.  Either way the caller sees the ordinary Executor contract.

The interpreted path is also forced (per call, without touching the plan
cache) whenever observation machinery is active — ``detect_anomaly``, an
installed op-trace profiler hook, an enclosing anomaly context — because a
replayed plan executes no traced ops and would blind those tools.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.loss import STWALoss
from ..exec.base import Batch, Executor, StepResult, Weights
from ..exec.inference import InferenceExecutor
from ..exec.serial import SerialExecutor
from ..tensor import Tensor, no_grad
from ..tensor import ops
from .capture import CaptureRecorder
from .cache import PlanCache
from .plan import CompiledPlan, LoweringError, lower_predict_plan, lower_training_plan

__all__ = ["CompiledExecutor"]

#: (generator, bit_generator_state) snapshots for every module-held RNG
_RngStates = List[Tuple[np.random.Generator, dict]]


class CompiledExecutor(Executor):
    """Trace-once/replay-many execution with guarded interpreted fallback.

    Parameters mirror :class:`repro.exec.SerialExecutor` plus the serving
    knobs of :class:`repro.exec.InferenceExecutor` (``scaler`` /
    ``history``) so one compiled executor can stand in for either.
    """

    def __init__(
        self,
        model,
        *,
        huber_delta: float = 1.0,
        kl_weight: float = 0.0,
        detect_anomaly: bool = False,
        scaler=None,
        history: Optional[int] = None,
        plan_capacity: int = 8,
        validate_rtol: float = 1e-9,
        loss_fn: Optional[STWALoss] = None,
    ):
        super().__init__(model)
        self.detect_anomaly = detect_anomaly
        self.loss_fn = loss_fn or STWALoss(delta=huber_delta, kl_weight=kl_weight)
        self.scaler = scaler
        self.history = None if history is None else int(history)
        self.validate_rtol = float(validate_rtol)
        self._kl_model = model if hasattr(model, "kl_divergence") else None
        self._serial = SerialExecutor(model, detect_anomaly=detect_anomaly, loss_fn=self.loss_fn)
        self._infer = InferenceExecutor(model, scaler=scaler, history=history)
        self.train_plans = PlanCache(plan_capacity)
        self.predict_plans = PlanCache(plan_capacity)
        self.stats: Dict[str, object] = {
            "traces": 0,
            "replays": 0,
            "fallback_steps": 0,
            "validation_failures": 0,
            "fallback_reasons": {},
        }

    # ------------------------------------------------------------------ #
    # lifecycle: the inner interpreted executors share our lifecycle
    # ------------------------------------------------------------------ #
    def _acquire(self) -> None:
        self._serial.open()
        self._infer.open()

    def _release(self) -> None:
        self._serial.close()
        self._infer.close()

    # ------------------------------------------------------------------ #
    # fallback bookkeeping
    # ------------------------------------------------------------------ #
    def _forced_interpreted(self) -> Optional[str]:
        """Reason the *observability* machinery forces the interpreted path."""
        if self.detect_anomaly:
            return "detect_anomaly"
        if ops.op_trace_active():
            return "op_trace_hook"
        if ops.anomaly_check_active() is not None:
            return "anomaly_context"
        if ops.op_capture_active():
            return "nested_capture"
        return None

    def _count_fallback(self, reason: str) -> None:
        self.stats["fallback_steps"] += 1
        reasons: Dict[str, int] = self.stats["fallback_reasons"]
        reasons[reason] = reasons.get(reason, 0) + 1

    # ------------------------------------------------------------------ #
    # module RNG snapshots: replay must keep generators in lockstep
    # ------------------------------------------------------------------ #
    def _rng_states(self) -> _RngStates:
        states: _RngStates = []
        for _, module in self.model.named_modules():
            for value in vars(module).values():
                if isinstance(value, np.random.Generator):
                    states.append((value, value.bit_generator.state))
        return states

    @staticmethod
    def _restore_rng(states: _RngStates) -> None:
        for generator, state in states:
            generator.bit_generator.state = state

    @staticmethod
    def _rng_matches(states: _RngStates, expected: _RngStates) -> bool:
        return all(s == e for (_, s), (_, e) in zip(states, expected))

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_step(self, weights: Weights, batch: Batch) -> StepResult:
        self._require_open("train_step")
        x, y = batch
        if weights is not None:
            self.model.load_state_dict(weights)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        forced = self._forced_interpreted()
        if forced is not None:
            self._count_fallback(forced)
            return self._serial.train_step(None, (x, y))
        if not np.isfinite(y).all():
            # STWALoss would take the masked (data-dependent) branch
            self._count_fallback("nonfinite_target")
            return self._serial.train_step(None, (x, y))
        signature = (
            "train", bool(self.model.training),
            x.shape, str(x.dtype), y.shape, str(y.dtype),
        )
        entry = self.train_plans.get(signature)
        if entry is not None:
            status, payload = entry
            if status == PlanCache.LIVE:
                return self._replay_train(payload, x, y)
            self._count_fallback(f"dead_plan: {payload}")
            return self._serial.train_step(None, (x, y))
        return self._trace_train(signature, x, y)

    def _replay_train(self, plan: CompiledPlan, x: np.ndarray, y: np.ndarray) -> StepResult:
        start = time.perf_counter()
        value = float(plan.run_forward({"x": x, "y": y}))
        if not np.isfinite(value):
            raise FloatingPointError(
                f"training diverged: loss became {value}; lower the learning "
                "rate or tighten grad_clip"
            )
        plan.run_adjoint()
        for parameter in self._parameters:
            parameter.grad = None
        plan.export_grads()
        self.stats["replays"] += 1
        return StepResult(
            loss=value,
            grads=[parameter.grad for parameter in self._parameters],
            stats={"seconds": time.perf_counter() - start, "executor": "compiled"},
        )

    def _trace_train(self, signature, x: np.ndarray, y: np.ndarray) -> StepResult:
        """Run one interpreted step under capture, lower, validate in place."""
        start = time.perf_counter()
        self.stats["traces"] += 1
        recorder = CaptureRecorder()
        recorder.register_params(self._parameters)
        rng_before = self._rng_states()
        previous = ops.set_op_capture(recorder)
        try:
            x_t, y_t = Tensor(x), Tensor(y)
            recorder.register_input("x", x_t)
            recorder.register_input("y", y_t)
            for parameter in self._parameters:
                parameter.zero_grad()
            prediction = self.model(x_t)
            loss = self.loss_fn(prediction, y_t, model=self._kl_model)
            value = float(loss.item())
            if not np.isfinite(value):
                raise FloatingPointError(
                    f"training diverged: loss became {value}; lower the learning "
                    "rate or tighten grad_clip"
                )
            loss.backward()
        finally:
            # a raising trace (divergence, injected faults) must not poison
            # the signature: uninstall and let the error propagate untraced
            ops.set_op_capture(previous)

        def interpreted() -> StepResult:
            return StepResult(
                loss=value,
                grads=[parameter.grad for parameter in self._parameters],
                stats={"seconds": time.perf_counter() - start, "executor": "compiled-trace"},
            )

        if recorder.dead:
            self.train_plans.put_dead(signature, recorder.dead_reason)
            self._count_fallback(f"unsupported: {recorder.dead_reason}")
            return interpreted()
        rng_after = self._rng_states()
        saved_grads = [parameter.grad for parameter in self._parameters]
        try:
            plan = lower_training_plan(recorder, loss)
        except LoweringError as err:
            self.train_plans.put_dead(signature, str(err))
            self._count_fallback(f"lowering: {err}")
            return interpreted()

        # validation replay: rewind the RNGs, replay the same batch, accept
        # only on loss/grad agreement and exact generator lockstep
        self._restore_rng(rng_before)
        replay_value = float(plan.run_forward({"x": x, "y": y}))
        plan.run_adjoint()
        for parameter in self._parameters:
            parameter.grad = None
        plan.export_grads()
        ok = self._rng_matches(self._rng_states(), rng_after) and np.isclose(
            replay_value, value, rtol=self.validate_rtol, atol=1e-12
        )
        if ok:
            for parameter, saved in zip(self._parameters, saved_grads):
                replayed = parameter.grad
                if (replayed is None) != (saved is None):
                    ok = False
                    break
                if saved is not None and not np.allclose(
                    replayed, saved, rtol=self.validate_rtol, atol=1e-12
                ):
                    ok = False
                    break
        if not ok:
            self.stats["validation_failures"] += 1
            self.train_plans.put_dead(signature, "validation_mismatch")
            self._count_fallback("validation_mismatch")
            self._restore_rng(rng_after)
            for parameter, saved in zip(self._parameters, saved_grads):
                parameter.grad = saved
            return interpreted()
        self.train_plans.put_live(signature, plan)
        self.stats["replays"] += 1
        return StepResult(
            loss=replay_value,
            grads=[parameter.grad for parameter in self._parameters],
            stats={
                "seconds": time.perf_counter() - start,
                "executor": "compiled-trace",
                "trace": True,
            },
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict(self, weights: Weights, inputs: np.ndarray) -> np.ndarray:
        self._require_open("predict")
        if weights is not None:
            self.model.load_state_dict(weights)
        forced = self._forced_interpreted()
        if forced is not None:
            self._count_fallback(forced)
            return self._infer.predict(None, inputs)
        window = np.asarray(inputs, dtype=np.float64)
        squeeze = window.ndim == 3
        if squeeze:
            window = window[None]
        if self.history is not None and (
            window.ndim != 4 or window.shape[2] != self.history
        ):
            raise ValueError(
                f"expected (B, N, {self.history}, F) window, got shape {np.asarray(inputs).shape}"
            )
        if self.scaler is not None:
            window = self.scaler.transform(window)
        signature = ("predict", window.shape, str(window.dtype))
        entry = self.predict_plans.get(signature)
        if entry is not None:
            status, payload = entry
            if status == PlanCache.LIVE:
                self.stats["replays"] += 1
                forecast = payload.run_forward({"x": window})
            else:
                self._count_fallback(f"dead_plan: {payload}")
                return self._infer.predict(None, inputs)
        else:
            forecast = self._trace_predict(signature, window)
        if self.scaler is not None:
            forecast = self.scaler.inverse_transform(forecast)
        else:
            forecast = np.array(forecast)  # detach from the plan's reused buffer
        return forecast[0] if squeeze else forecast

    def _trace_predict(self, signature, window: np.ndarray) -> np.ndarray:
        """Capture one eval-mode forward under ``no_grad``, lower, validate."""
        self.stats["traces"] += 1
        recorder = CaptureRecorder()
        recorder.register_params(self._parameters)
        rng_before = self._rng_states()
        was_training = self.model.training
        self.model.eval()
        previous = ops.set_op_capture(recorder)
        try:
            with no_grad():
                x_t = Tensor(window)
                recorder.register_input("x", x_t)
                out_t = self.model(x_t)
        finally:
            ops.set_op_capture(previous)
            self.model.train(was_training)
        captured = out_t.numpy()
        if recorder.dead:
            self.predict_plans.put_dead(signature, recorder.dead_reason)
            self._count_fallback(f"unsupported: {recorder.dead_reason}")
            return captured
        rng_after = self._rng_states()
        try:
            plan = lower_predict_plan(recorder, out_t)
        except LoweringError as err:
            self.predict_plans.put_dead(signature, str(err))
            self._count_fallback(f"lowering: {err}")
            return captured
        self._restore_rng(rng_before)
        replayed = plan.run_forward({"x": window})
        ok = self._rng_matches(self._rng_states(), rng_after) and np.allclose(
            replayed, captured, rtol=self.validate_rtol, atol=1e-12
        )
        if not ok:
            self.stats["validation_failures"] += 1
            self.predict_plans.put_dead(signature, "validation_mismatch")
            self._count_fallback("validation_mismatch")
            self._restore_rng(rng_after)
            return captured
        self.predict_plans.put_live(signature, plan)
        return replayed
