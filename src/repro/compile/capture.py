"""Capture: record one interpreted step's op stream for compilation.

A :class:`CaptureRecorder` is installed into the traced-op wrapper
(:func:`repro.tensor.ops.set_op_capture`) around exactly one forward(+loss)
pass.  Every primitive reports ``(name, args, kwargs, out)`` in execution
order; the recorder keeps *strong references* to every argument and output
tensor so Python never recycles an ``id()`` mid-capture — identity is how
the lowering pass (:mod:`repro.compile.plan`) later tells parameters,
step inputs, per-step host arrays, and frozen constants apart.

Three registration channels feed the recorder:

* ``register_input(name, tensor)`` — the executor declares the step's
  ``x``/``y`` tensors so replay can rebind fresh batches by name;
* ``register_params(parameters)`` — model parameters are re-read through
  ``parameter.data`` on every replay (optimizers rebind ``.data``);
* ``record_host_input(value, regen)`` — called by
  :func:`repro.tensor.ops.notify_host_input` at every per-step RNG draw
  site (latent noise, dropout masks).  ``regen`` re-draws from the same
  generator, which is what keeps a compiled run bit-identical to the
  serial RNG stream.

``mark_unsupported(reason)`` (via
:func:`repro.tensor.ops.notify_compile_unsupported`) declares the step
unreplayable — Python-level state the op stream cannot see, such as
BatchNorm's running-statistics update or a per-batch NaN mask.  The
executor then pins the signature to the interpreted path permanently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CaptureRecorder", "TraceRecord"]


class TraceRecord:
    """One primitive-op call: name, raw args/kwargs, and the output tensor."""

    __slots__ = ("name", "args", "kwargs", "out")

    def __init__(self, name: str, args: tuple, kwargs: dict, out) -> None:
        self.name = name
        self.args = args
        self.kwargs = kwargs
        self.out = out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord({self.name}, out_shape={self.out.data.shape})"


class CaptureRecorder:
    """Accumulates the op stream of one step plus its input/param identity."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        #: (array, regen) in draw order — replay must consume regens in this
        #: exact order to keep every module generator in lockstep with the
        #: serial trajectory, even for draws whose ops get pruned
        self.host_inputs: List[Tuple[np.ndarray, Optional[Callable[[], np.ndarray]]]] = []
        self._host_ids: Dict[int, int] = {}
        self.inputs: Dict[str, object] = {}
        self.params: List[object] = []
        self.dead_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # executor-facing registration
    # ------------------------------------------------------------------ #
    def register_input(self, name: str, tensor) -> None:
        """Declare ``tensor`` as the per-step input bound to ``name``."""
        self.inputs[name] = tensor

    def register_params(self, parameters) -> None:
        """Declare the model parameters (replay re-reads ``.data`` each step)."""
        self.params = list(parameters)

    # ------------------------------------------------------------------ #
    # hook API (called from repro.tensor.ops)
    # ------------------------------------------------------------------ #
    def record_op(self, name: str, args: tuple, kwargs: dict, out) -> None:
        self.records.append(TraceRecord(name, args, kwargs, out))

    def record_host_input(self, value: np.ndarray, regen) -> None:
        key = id(value)
        if key not in self._host_ids:
            self._host_ids[key] = len(self.host_inputs)
            self.host_inputs.append((value, regen))

    def mark_unsupported(self, reason: str) -> None:
        if self.dead_reason is None:
            self.dead_reason = reason

    # ------------------------------------------------------------------ #
    @property
    def dead(self) -> bool:
        return self.dead_reason is not None

    def host_index(self, array: np.ndarray) -> Optional[int]:
        """Index of ``array`` among the registered host inputs (by identity)."""
        return self._host_ids.get(id(array))

    def __len__(self) -> int:
        return len(self.records)
