"""Per-op replay kernels: forward instructions and tape-free adjoints.

Each builder receives the plan builder context (``ctx``, see
:class:`repro.compile.plan.PlanBuilder`) plus one lowered op and returns
closures specialized at *build* time: shapes, dtypes, broadcast decisions,
buffer bindings and assign-vs-accumulate gradient modes are all resolved
once, so replay executes straight NumPy calls into preallocated buffers
with no autograd bookkeeping.

The numeric formulas mirror :mod:`repro.tensor.ops` exactly — same
operand order, same stable-sigmoid/softplus/huber formulations, same
broadcast reduction (:func:`repro.tensor.tensor.unbroadcast`) — so a
compiled step reproduces the interpreted step to float64 rounding.

``where`` is deliberately absent from :data:`FORWARD`: its condition is a
Python-level data array the capture cannot see through (it would freeze
one batch's mask into the plan), so any trace containing it lowers to a
:class:`repro.compile.plan.LoweringError` and the executor stays on the
interpreted path.  ``FUSABLE`` lists the elementwise ops whose
single-consumer runs the plan collapses into fused chain instructions.
"""

from __future__ import annotations

import numpy as np

from ..tensor.ops import _expand_reduced, _is_basic_index, _is_identity_index

__all__ = ["FORWARD", "ADJOINT", "FUSABLE", "reduce_grad"]

#: elementwise ops eligible for forward/adjoint chain fusion
FUSABLE = frozenset({
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt", "abs",
    "maximum", "minimum", "clip", "huber", "tanh", "sigmoid", "relu",
    "leaky_relu", "softplus", "dropout_mask",
})


def reduce_grad(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` — mirrors ``tensor.unbroadcast``."""
    extra = grad.ndim - len(shape)
    axes = tuple(range(extra)) + tuple(
        i + extra for i, n in enumerate(shape) if n == 1 and grad.shape[i + extra] != 1
    )
    reduced = np.add.reduce(grad, axis=axes) if axes else grad
    return np.ascontiguousarray(reduced).reshape(shape)


# ===================================================================== #
# forward builders: op -> zero-alloc closure writing into plan buffers
# ===================================================================== #
def _unary(ufunc):
    def build(ctx, op):
        (a,) = op.ins
        s, buf = ctx.slots, ctx.out_buffer(op.out)
        return lambda: ufunc(s[a], out=buf)

    return build


def _binary(ufunc):
    def build(ctx, op):
        a, b = op.ins
        s, buf = ctx.slots, ctx.out_buffer(op.out)
        return lambda: ufunc(s[a], s[b], out=buf)

    return build


def _f_power(ctx, op):
    (a,) = op.ins
    e = op.static["exponent"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    return lambda: np.power(s[a], e, out=buf)


def _f_clip(ctx, op):
    (a,) = op.ins
    low, high = op.static["low"], op.static["high"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    return lambda: np.clip(s[a], low, high, out=buf)


def _f_huber(ctx, op):
    (a,) = op.ins
    delta = op.static["delta"]
    half_delta = 0.5 * delta
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    shape = ctx.shape(op.out)
    t1, t2 = ctx.scratch(shape), ctx.scratch(shape)
    mb = ctx.scratch(shape, dtype=bool)

    def run():
        x = s[a]
        np.abs(x, out=t1)
        np.less_equal(t1, delta, out=mb)
        # linear branch: delta * (|x| - 0.5 * delta)
        np.subtract(t1, half_delta, out=t1)
        np.multiply(t1, delta, out=t1)
        # quadratic branch: (0.5 * x) * x
        np.multiply(x, 0.5, out=t2)
        np.multiply(t2, x, out=t2)
        np.copyto(buf, t1)
        np.copyto(buf, t2, where=mb)

    return run


def _f_sigmoid(ctx, op):
    (a,) = op.ins
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    shape = ctx.shape(op.out)
    t1, t2 = ctx.scratch(shape), ctx.scratch(shape)
    mb = ctx.scratch(shape, dtype=bool)

    def run():
        x = s[a]
        np.abs(x, out=t1)
        np.negative(t1, out=t1)
        np.exp(t1, out=t1)  # e = exp(-|x|)
        np.add(t1, 1.0, out=t2)  # 1 + e
        np.divide(t1, t2, out=buf)  # e / (1 + e)   (x < 0 branch)
        np.divide(1.0, t2, out=t2)  # 1 / (1 + e)   (x >= 0 branch)
        np.greater_equal(x, 0.0, out=mb)
        np.copyto(buf, t2, where=mb)

    return run


def _f_relu(ctx, op):
    (a,) = op.ins
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    mb = ctx.scratch(ctx.shape(op.out), dtype=bool)

    def run():
        x = s[a]
        np.greater(x, 0, out=mb)
        np.multiply(x, mb, out=buf)

    return run


def _f_leaky_relu(ctx, op):
    (a,) = op.ins
    slope = op.static["negative_slope"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    shape = ctx.shape(op.out)
    t1 = ctx.scratch(shape)
    mb = ctx.scratch(shape, dtype=bool)

    def run():
        x = s[a]
        np.greater(x, 0, out=mb)
        np.copyto(t1, slope)
        np.copyto(t1, 1.0, where=mb)
        np.multiply(x, t1, out=buf)

    return run


def _f_softplus(ctx, op):
    (a,) = op.ins
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    shape = ctx.shape(op.out)
    t1, t2 = ctx.scratch(shape), ctx.scratch(shape)

    def run():
        x = s[a]
        np.abs(x, out=t1)
        np.negative(t1, out=t1)
        np.exp(t1, out=t1)
        np.log1p(t1, out=t1)
        np.maximum(x, 0.0, out=t2)
        np.add(t2, t1, out=buf)

    return run


def _f_matmul(ctx, op):
    a, b = op.ins
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    return lambda: np.matmul(s[a], s[b], out=buf)


def _f_linear(ctx, op):
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    if len(op.ins) == 3:
        x, w, bias = op.ins

        def run():
            np.matmul(s[x], s[w], out=buf)
            np.add(buf, s[bias], out=buf)

        return run
    x, w = op.ins
    return lambda: np.matmul(s[x], s[w], out=buf)


def _f_transpose(ctx, op):
    (a,) = op.ins
    axes = op.static["axes"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = np.transpose(s[a], axes)

    return run


def _f_swapaxes(ctx, op):
    (a,) = op.ins
    ax1, ax2 = op.static["axis1"], op.static["axis2"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = np.swapaxes(s[a], ax1, ax2)

    return run


def _f_reshape(ctx, op):
    (a,) = op.ins
    shape = op.static["shape"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = s[a].reshape(shape)

    return run


def _f_getitem(ctx, op):
    (a,) = op.ins
    index = op.static["index"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = s[a][index]

    return run


def _f_gather(ctx, op):
    (a,) = op.ins
    axis, idx = op.static["axis"], op.static["index"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = np.take_along_axis(s[a], idx, axis=axis)

    return run


def _f_concat(ctx, op):
    ins = tuple(op.ins)
    axis = op.static["axis"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    return lambda: np.concatenate([s[i] for i in ins], axis=axis, out=buf)


def _f_stack(ctx, op):
    ins = tuple(op.ins)
    axis = op.static["axis"]
    s, o = ctx.slots, op.out

    def run():
        s[o] = np.stack([s[i] for i in ins], axis=axis)

    return run


def _f_pad(ctx, op):
    (a,) = op.ins
    pad_width = op.static["pad_width"]
    s = ctx.slots
    buf = ctx.out_buffer(op.out)
    buf.fill(0.0)  # border is zero forever; replay only rewrites the interior
    interior = tuple(
        slice(before, ctx.shape(op.out)[i] - after)
        for i, (before, after) in enumerate(pad_width)
    )

    def run():
        buf[interior] = s[a]

    return run


def _f_broadcast_to(ctx, op):
    (a,) = op.ins
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    return lambda: np.copyto(buf, s[a])


def _reduction(np_fn):
    def build(ctx, op):
        (a,) = op.ins
        axis, keepdims = op.static["axis"], op.static["keepdims"]
        s, buf = ctx.slots, ctx.out_buffer(op.out)
        return lambda: np_fn(s[a], axis=axis, keepdims=keepdims, out=buf)

    return build


def _f_softmax(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    t1 = ctx.scratch(ctx.shape(op.out))

    def run():
        x = s[a]
        np.subtract(x, x.max(axis=axis, keepdims=True), out=t1)
        np.exp(t1, out=t1)
        np.divide(t1, t1.sum(axis=axis, keepdims=True), out=buf)

    return run


def _f_log_softmax(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    s, buf = ctx.slots, ctx.out_buffer(op.out)
    shape = ctx.shape(op.out)
    t1, t2 = ctx.scratch(shape), ctx.scratch(shape)

    def run():
        x = s[a]
        np.subtract(x, x.max(axis=axis, keepdims=True), out=t1)
        np.exp(t1, out=t2)
        np.subtract(t1, np.log(t2.sum(axis=axis, keepdims=True)), out=buf)

    return run


FORWARD = {
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _binary(np.divide),
    "maximum": _binary(np.maximum),
    "minimum": _binary(np.minimum),
    "neg": _unary(np.negative),
    "exp": _unary(np.exp),
    "log": _unary(np.log),
    "sqrt": _unary(np.sqrt),
    "abs": _unary(np.abs),
    "tanh": _unary(np.tanh),
    "power": _f_power,
    "clip": _f_clip,
    "huber": _f_huber,
    "sigmoid": _f_sigmoid,
    "relu": _f_relu,
    "leaky_relu": _f_leaky_relu,
    "softplus": _f_softplus,
    "matmul": _f_matmul,
    "linear": _f_linear,
    "transpose": _f_transpose,
    "swapaxes": _f_swapaxes,
    "reshape": _f_reshape,
    "getitem": _f_getitem,
    "gather": _f_gather,
    "concat": _f_concat,
    "stack": _f_stack,
    "pad": _f_pad,
    "broadcast_to": _f_broadcast_to,
    "sum": _reduction(np.sum),
    "mean": _reduction(np.mean),
    "max": _reduction(np.max),
    "softmax": _f_softmax,
    "log_softmax": _f_log_softmax,
    "dropout_mask": _binary(np.multiply),
}


# ===================================================================== #
# adjoint builders: op -> list of gradient-contribution closures
# ===================================================================== #
def _emit(ctx, nid, natural_shape, direct, generic, accum=None):
    """One contribution to ``grads[nid]``.

    ``direct(buf)`` computes straight into a destination buffer (the
    gradient buffer on the first contribution, a shared staging scratch on
    later ones — followed by one ``add`` into the gradient).  ``accum(buf)``
    folds the contribution into ``buf`` in a single pass, for ops whose
    adjoint is expressible as one accumulating ufunc call.  ``generic()``
    returns the raw contribution for the sink path (copy or accumulate,
    reducing broadcast axes like ``unbroadcast``) — the only path allowed
    when the contribution's natural shape differs from the target's.
    """
    first = ctx.mark_contribution(nid)
    if natural_shape == ctx.shape(nid):
        if first and direct is not None:
            buf = ctx.grad_buffer(nid)
            return lambda: direct(buf)
        if not first and accum is not None:
            buf = ctx.grad_buffer(nid)
            return lambda: accum(buf)
        if not first and direct is not None:
            buf = ctx.grad_buffer(nid)
            staging = ctx.accum_scratch(natural_shape)

            def run():
                direct(staging)
                np.add(buf, staging, out=buf)

            return run
    sink = ctx.make_sink(nid, first)
    return lambda: sink(generic())


def _a_add(ctx, op):
    out_shape = ctx.shape(op.out)
    go = ctx.grad_buffer(op.out)
    fns = []
    for nid in op.ins:
        if ctx.requires(nid):
            fns.append(
                _emit(
                    ctx, nid, out_shape,
                    lambda buf: np.copyto(buf, go),
                    lambda: go,
                    accum=lambda buf: np.add(buf, go, out=buf),
                )
            )
    return fns


def _a_sub(ctx, op):
    a, b = op.ins
    out_shape = ctx.shape(op.out)
    go = ctx.grad_buffer(op.out)
    fns = []
    if ctx.requires(a):
        fns.append(
            _emit(
                ctx, a, out_shape,
                lambda buf: np.copyto(buf, go),
                lambda: go,
                accum=lambda buf: np.add(buf, go, out=buf),
            )
        )
    if ctx.requires(b):
        fns.append(
            _emit(
                ctx, b, out_shape,
                lambda buf: np.negative(go, out=buf),
                lambda: np.negative(go),
                accum=lambda buf: np.subtract(buf, go, out=buf),
            )
        )
    return fns


def _a_mul(ctx, op):
    a, b = op.ins
    s = ctx.slots
    out_shape = ctx.shape(op.out)
    go = ctx.grad_buffer(op.out)
    fns = []
    if ctx.requires(a):
        fns.append(
            _emit(ctx, a, out_shape, lambda buf: np.multiply(go, s[b], out=buf), lambda: go * s[b])
        )
    if ctx.requires(b):
        fns.append(
            _emit(ctx, b, out_shape, lambda buf: np.multiply(go, s[a], out=buf), lambda: go * s[a])
        )
    return fns


def _a_div(ctx, op):
    a, b = op.ins
    s = ctx.slots
    out_shape = ctx.shape(op.out)
    go = ctx.grad_buffer(op.out)
    fns = []
    if ctx.requires(a):
        fns.append(
            _emit(ctx, a, out_shape, lambda buf: np.divide(go, s[b], out=buf), lambda: go / s[b])
        )
    if ctx.requires(b):
        fns.append(
            _emit(ctx, b, out_shape, None, lambda: -go * s[a] / (s[b] * s[b]))
        )
    return fns


def _a_neg(ctx, op):
    (a,) = op.ins
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(ctx, a, ctx.shape(op.out), lambda buf: np.negative(go, out=buf), lambda: np.negative(go))
    ]


def _a_power(ctx, op):
    (a,) = op.ins
    e = op.static["exponent"]
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_emit(ctx, a, ctx.shape(op.out), None, lambda: go * e * s[a] ** (e - 1.0))]


def _a_exp(ctx, op):
    (a,) = op.ins
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(ctx, a, ctx.shape(o), lambda buf: np.multiply(go, s[o], out=buf), lambda: go * s[o])
    ]


def _a_log(ctx, op):
    (a,) = op.ins
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(ctx, a, ctx.shape(op.out), lambda buf: np.divide(go, s[a], out=buf), lambda: go / s[a])
    ]


def _a_sqrt(ctx, op):
    (a,) = op.ins
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_emit(ctx, a, ctx.shape(o), None, lambda: go * 0.5 / s[o])]


def _a_abs(ctx, op):
    (a,) = op.ins
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_emit(ctx, a, ctx.shape(op.out), None, lambda: go * np.sign(s[a]))]


def _a_extremum(comparator):
    def build(ctx, op):
        a, b = op.ins
        s = ctx.slots
        out_shape = ctx.shape(op.out)
        go = ctx.grad_buffer(op.out)
        fns = []
        if ctx.requires(a):
            fns.append(_emit(ctx, a, out_shape, None, lambda: go * comparator(s[a], s[b])))
        if ctx.requires(b):
            fns.append(_emit(ctx, b, out_shape, None, lambda: go * ~comparator(s[a], s[b])))
        return fns

    return build


def _a_clip(ctx, op):
    (a,) = op.ins
    low, high = op.static["low"], op.static["high"]
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(ctx, a, ctx.shape(op.out), None, lambda: go * ((s[a] >= low) & (s[a] <= high)))
    ]


def _a_huber(ctx, op):
    (a,) = op.ins
    delta = op.static["delta"]
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []

    def value():
        x = s[a]
        inside = np.abs(x) <= delta
        return np.where(inside, go * x, (go * delta) * np.sign(x))

    return [_emit(ctx, a, ctx.shape(op.out), None, value)]


def _a_tanh(ctx, op):
    (a,) = op.ins
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []

    def direct(buf):
        out = s[o]
        np.multiply(out, out, out=buf)
        np.subtract(1.0, buf, out=buf)
        np.multiply(go, buf, out=buf)

    return [_emit(ctx, a, ctx.shape(o), direct, lambda: go * (1.0 - s[o] * s[o]))]


def _a_sigmoid(ctx, op):
    (a,) = op.ins
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    t = ctx.scratch(ctx.shape(o))

    def direct(buf):
        out = s[o]
        np.subtract(1.0, out, out=t)
        np.multiply(go, out, out=buf)
        np.multiply(buf, t, out=buf)

    return [_emit(ctx, a, ctx.shape(o), direct, lambda: go * s[o] * (1.0 - s[o]))]


def _a_relu(ctx, op):
    (a,) = op.ins
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    mb = ctx.scratch(ctx.shape(op.out), dtype=bool)

    def direct(buf):
        np.greater(s[a], 0, out=mb)
        np.multiply(go, mb, out=buf)

    return [_emit(ctx, a, ctx.shape(op.out), direct, lambda: go * (s[a] > 0))]


def _a_leaky_relu(ctx, op):
    (a,) = op.ins
    slope = op.static["negative_slope"]
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(ctx, a, ctx.shape(op.out), None, lambda: go * np.where(s[a] > 0, 1.0, slope))
    ]


def _a_softplus(ctx, op):
    (a,) = op.ins
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []

    def value():
        x = s[a]
        e = np.exp(-np.abs(x))
        return go * np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))

    return [_emit(ctx, a, ctx.shape(op.out), None, value)]


def _a_matmul(ctx, op):
    a, b = op.ins
    s = ctx.slots
    a_shape, b_shape = ctx.shape(a), ctx.shape(b)
    out_shape = ctx.shape(op.out)
    go = ctx.grad_buffer(op.out)
    fns = []
    if ctx.requires(a):
        if len(b_shape) == 1:
            fns.append(
                _emit(
                    ctx, a, out_shape + b_shape, None, lambda: go[..., None] * s[b]
                )
            )
        else:
            natural = out_shape[:-1] + (b_shape[-2],)
            fns.append(
                _emit(
                    ctx,
                    a,
                    natural,
                    lambda buf: np.matmul(go, np.swapaxes(s[b], -1, -2), out=buf),
                    lambda: go @ np.swapaxes(s[b], -1, -2),
                )
            )
    if ctx.requires(b):
        if len(a_shape) == 1:
            fns.append(
                _emit(ctx, b, None, None, lambda: s[a][:, None] * go[..., None, :])
            )
        elif len(b_shape) == 1:
            fns.append(_emit(ctx, b, None, None, lambda: s[a] * go[..., None]))
        elif len(b_shape) == 2 and len(out_shape) > 2:
            k, m = a_shape[-1], out_shape[-1]
            go_flat = go.reshape(-1, m)

            def direct(buf):
                np.matmul(s[a].reshape(-1, k).T, go_flat, out=buf)

            fns.append(
                _emit(
                    ctx, b, (k, m), direct,
                    lambda: s[a].reshape(-1, k).T @ go_flat,
                )
            )
        else:
            natural = a_shape[:-2] + (a_shape[-1], out_shape[-1])
            fns.append(
                _emit(
                    ctx,
                    b,
                    natural,
                    lambda buf: np.matmul(np.swapaxes(s[a], -1, -2), go, out=buf),
                    lambda: np.swapaxes(s[a], -1, -2) @ go,
                )
            )
    return fns


def _a_linear(ctx, op):
    x, w = op.ins[0], op.ins[1]
    bias = op.ins[2] if len(op.ins) == 3 else None
    s = ctx.slots
    in_features, out_features = ctx.shape(w)
    go = ctx.grad_buffer(op.out)
    fns = []
    if ctx.requires(x):
        fns.append(
            _emit(
                ctx,
                x,
                ctx.shape(op.out)[:-1] + (in_features,),
                lambda buf: np.matmul(go, s[w].T, out=buf),
                lambda: go @ s[w].T,
            )
        )
    go_flat = go.reshape(-1, out_features)
    if ctx.requires(w):

        def direct(buf):
            np.matmul(s[x].reshape(-1, in_features).T, go_flat, out=buf)

        fns.append(
            _emit(
                ctx, w, (in_features, out_features), direct,
                lambda: s[x].reshape(-1, in_features).T @ go_flat,
            )
        )
    if bias is not None and ctx.requires(bias):
        if ctx.shape(bias) == (out_features,):
            fns.append(
                _emit(
                    ctx,
                    bias,
                    (out_features,),
                    lambda buf: np.add.reduce(go_flat, axis=0, out=buf),
                    lambda: np.add.reduce(go_flat, axis=0),
                )
            )
        else:
            fns.append(_emit(ctx, bias, None, None, lambda: go))
    return fns


def _view_emit(ctx, nid, view):
    """Contribution that is a fixed view of the output gradient buffer.

    The gradient buffer is allocated once at build time, so the view can be
    taken here and replayed forever — copy/accumulate it in a single pass
    with no per-step allocation.
    """
    return _emit(
        ctx, nid, view.shape,
        lambda buf: np.copyto(buf, view),
        lambda: view,
        accum=lambda buf: np.add(buf, view, out=buf),
    )


def _a_transpose(ctx, op):
    (a,) = op.ins
    inverse = op.static["inverse"]
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_view_emit(ctx, a, np.transpose(go, inverse))]


def _a_swapaxes(ctx, op):
    (a,) = op.ins
    ax1, ax2 = op.static["axis1"], op.static["axis2"]
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_view_emit(ctx, a, np.swapaxes(go, ax1, ax2))]


def _a_reshape(ctx, op):
    (a,) = op.ins
    original = ctx.shape(a)
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_view_emit(ctx, a, go.reshape(original))]


def _a_getitem(ctx, op):
    (a,) = op.ins
    index = op.static["index"]
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    basic = _is_basic_index(index)
    if basic and _is_identity_index(index):
        return [_view_emit(ctx, a, go)]
    first = ctx.mark_contribution(a)
    buf = ctx.grad_buffer(a)
    if basic:
        if first:
            def run():
                buf.fill(0.0)
                buf[index] += go
        else:
            def run():
                buf[index] += go
    else:
        # np.add.at is only needed when the gather repeats a source element;
        # with unique indices plain fancy assignment/in-place add is safe and
        # an order of magnitude faster.  The index is frozen in the plan, so
        # the uniqueness analysis holds for every replay.
        unique = (
            isinstance(index, np.ndarray)
            and index.dtype.kind in "iu"
            and np.unique(index).size == index.size
        )
        if unique and first:
            def run():
                buf.fill(0.0)
                buf[index] = go
        elif unique:
            def run():
                buf[index] += go
        elif first:
            def run():
                buf.fill(0.0)
                np.add.at(buf, index, go)
        else:
            def run():
                np.add.at(buf, index, go)
    return [run]


def _a_gather(ctx, op):
    (a,) = op.ins
    axis, idx = op.static["axis"], op.static["index"]
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    # same duplicate-lane analysis as the interpreted forward: put_along_axis
    # (read-add-write) is safe only when no lane repeats a source position
    if idx.shape[axis] <= 1:
        lanes_unique = True
    else:
        ordered = np.sort(idx, axis=axis)
        keep = [slice(None)] * idx.ndim
        drop = list(keep)
        keep[axis], drop[axis] = slice(1, None), slice(None, -1)
        lanes_unique = not bool((ordered[tuple(keep)] == ordered[tuple(drop)]).any())
    first = ctx.mark_contribution(a)
    buf = ctx.grad_buffer(a)
    if lanes_unique:
        def scatter():
            np.put_along_axis(
                buf, idx, np.take_along_axis(buf, idx, axis=axis) + go, axis=axis
            )
    else:
        grids = list(np.ogrid[tuple(slice(n) for n in idx.shape)])
        grids[axis] = idx
        grids = tuple(grids)

        def scatter():
            np.add.at(buf, grids, go)

    if first:
        def run():
            buf.fill(0.0)
            scatter()
    else:
        run = scatter
    return [run]


def _a_concat(ctx, op):
    axis = op.static["axis"]
    go = ctx.grad_buffer(op.out)
    lead = (slice(None),) * axis
    fns = []
    offset = 0
    for nid in op.ins:
        size = ctx.shape(nid)[axis]
        piece = lead + (slice(offset, offset + size),)
        offset += size
        if ctx.requires(nid):
            fns.append(_view_emit(ctx, nid, go[piece]))
    return fns


def _a_stack(ctx, op):
    axis = op.static["axis"]
    go = ctx.grad_buffer(op.out)
    spread = np.moveaxis(go, axis, 0)
    fns = []
    for i, nid in enumerate(op.ins):
        if ctx.requires(nid):
            fns.append(_view_emit(ctx, nid, spread[i]))
    return fns


def _a_pad(ctx, op):
    (a,) = op.ins
    pad_width = op.static["pad_width"]
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    interior = tuple(
        slice(before, ctx.shape(op.out)[i] - after)
        for i, (before, after) in enumerate(pad_width)
    )
    return [_view_emit(ctx, a, go[interior])]


def _a_broadcast_to(ctx, op):
    (a,) = op.ins
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_emit(ctx, a, None, None, lambda: go)]


def _reduced_grad_view(go: np.ndarray, in_shape, axis) -> np.ndarray:
    """Broadcast view of a reduction's output gradient over its input shape.

    ``go`` is the plan's fixed gradient buffer, so the view stays valid for
    the life of the plan — reshape to the keepdims shape, then broadcast.
    """
    if axis is None:
        kept = (1,) * len(in_shape)
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % len(in_shape) for ax in axes)
        kept = tuple(1 if i in axes else n for i, n in enumerate(in_shape))
    return np.broadcast_to(go.reshape(kept), in_shape)


def _a_sum(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    in_shape = ctx.shape(a)
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [_view_emit(ctx, a, _reduced_grad_view(go, in_shape, axis))]


def _a_mean(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    in_shape = ctx.shape(a)
    out_size = max(int(np.prod(ctx.shape(op.out), dtype=np.int64)), 1)
    count = int(np.prod(in_shape, dtype=np.int64)) / out_size
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    view = _reduced_grad_view(go, in_shape, axis)
    return [
        _emit(
            ctx, a, in_shape,
            lambda buf: np.divide(view, count, out=buf),
            lambda: view / count,
        )
    ]


def _a_max(ctx, op):
    (a,) = op.ins
    axis, keepdims = op.static["axis"], op.static["keepdims"]
    in_shape = ctx.shape(a)
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []

    def value():
        x = s[a]
        mask = (x == x.max(axis=axis, keepdims=True)).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True)
        return _expand_reduced(go, in_shape, axis, keepdims) * mask

    return [_emit(ctx, a, in_shape, None, value)]


def _a_softmax(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    out_shape = ctx.shape(o)
    norm_axis = axis % len(out_shape)
    kept = tuple(1 if i == norm_axis else n for i, n in enumerate(out_shape))
    inner = ctx.scratch(kept)

    def direct(buf):
        out = s[o]
        np.multiply(go, out, out=buf)
        np.sum(buf, axis=norm_axis, keepdims=True, out=inner)
        np.subtract(go, inner, out=buf)
        np.multiply(buf, out, out=buf)

    def value():
        out = s[o]
        return out * (go - (go * out).sum(axis=axis, keepdims=True))

    return [_emit(ctx, a, out_shape, direct, value)]


def _a_log_softmax(ctx, op):
    (a,) = op.ins
    axis = op.static["axis"]
    s, o = ctx.slots, op.out
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []

    def value():
        soft = np.exp(s[o])
        return go - soft * go.sum(axis=axis, keepdims=True)

    return [_emit(ctx, a, ctx.shape(o), None, value)]


def _a_dropout_mask(ctx, op):
    a, m = op.ins
    s = ctx.slots
    go = ctx.grad_buffer(op.out)
    if not ctx.requires(a):
        return []
    return [
        _emit(
            ctx, a, ctx.shape(op.out),
            lambda buf: np.multiply(go, s[m], out=buf),
            lambda: go * s[m],
        )
    ]


ADJOINT = {
    "add": _a_add,
    "sub": _a_sub,
    "mul": _a_mul,
    "div": _a_div,
    "neg": _a_neg,
    "power": _a_power,
    "exp": _a_exp,
    "log": _a_log,
    "sqrt": _a_sqrt,
    "abs": _a_abs,
    "maximum": _a_extremum(np.greater_equal),
    "minimum": _a_extremum(np.less_equal),
    "clip": _a_clip,
    "huber": _a_huber,
    "tanh": _a_tanh,
    "sigmoid": _a_sigmoid,
    "relu": _a_relu,
    "leaky_relu": _a_leaky_relu,
    "softplus": _a_softplus,
    "matmul": _a_matmul,
    "linear": _a_linear,
    "transpose": _a_transpose,
    "swapaxes": _a_swapaxes,
    "reshape": _a_reshape,
    "getitem": _a_getitem,
    "gather": _a_gather,
    "concat": _a_concat,
    "stack": _a_stack,
    "pad": _a_pad,
    "broadcast_to": _a_broadcast_to,
    "sum": _a_sum,
    "mean": _a_mean,
    "max": _a_max,
    "softmax": _a_softmax,
    "log_softmax": _a_log_softmax,
    "dropout_mask": _a_dropout_mask,
}
