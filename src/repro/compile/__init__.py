"""repro.compile — trace-once/replay-many compiled execution backend.

The interpreted autodiff in :mod:`repro.tensor` spends most of an ST-WA
step dispatching thousands of tiny Python ops and building a fresh graph
every batch.  This package removes that overhead for fixed-shape steps:

* :class:`CaptureRecorder` rides the op-trace hook in
  :mod:`repro.tensor.ops` to record one interpreted step's op stream;
* :func:`lower_training_plan` / :func:`lower_predict_plan` lower the
  stream to a :class:`CompiledPlan` — a linear instruction program over
  preallocated buffers with fused elementwise chains and a precomputed
  tape-free adjoint program (no graph, no tape, no per-step allocation);
* :class:`PlanCache` keys plans by shape/dtype signature (LRU-bounded,
  dead signatures cached too);
* :class:`CompiledExecutor` packages it behind the
  :class:`repro.exec.Executor` contract — select it with
  ``ExecutorSpec(kind="compiled")`` in Trainer or ServingEngine.  Every
  plan is validated against the interpreted step it was traced from
  (loss, gradients, RNG lockstep) before it is ever replayed on new data,
  and unsupported or mismatching steps fall back to the interpreted
  executors transparently.
"""

from .capture import CaptureRecorder, TraceRecord
from .cache import PlanCache
from .executor import CompiledExecutor
from .plan import CompiledPlan, LoweringError, lower_predict_plan, lower_training_plan

__all__ = [
    "CaptureRecorder",
    "CompiledExecutor",
    "CompiledPlan",
    "LoweringError",
    "PlanCache",
    "TraceRecord",
    "lower_predict_plan",
    "lower_training_plan",
]
