"""repro — reproduction of "Towards Spatio-Temporal Aware Traffic Time
Series Forecasting" (Cirstea et al., ICDE 2022).

Subpackages
-----------
``repro.tensor``
    From-scratch reverse-mode autodiff over NumPy (PyTorch substitute).
``repro.nn``
    Neural-network layer library (modules, attention, RNN, TCN, graph conv).
``repro.optim``
    Adam/SGD, clipping, schedules, early stopping.
``repro.data``
    Synthetic PEMS-like traffic datasets, road networks, windows, scalers.
``repro.core``
    The paper's contribution: ST-aware parameter generation, window
    attention with proxies, sensor-correlation attention, the ST-WA model.
``repro.baselines``
    Every comparison model of the paper's Table IV.
``repro.training``
    Trainer, metrics (MAE/RMSE/MAPE), checkpoints, analytic memory model.
``repro.analysis``
    t-SNE, k-means, text plots (Figure 9 tooling).
``repro.harness``
    One runner per paper table/figure; see ``repro.harness.EXPERIMENTS``.
``repro.obs``
    Observability: op-level profiler, module spans, JSONL metric sinks.
``repro.resilience``
    Fault tolerance: anomaly detection, divergence recovery, fault drills.
``repro.parallel``
    Multiprocess data-parallel training: worker pool, gradient all-reduce,
    shared-memory batch prefetching (``Trainer(n_workers=...)``).
``repro.serve``
    Online inference: artifacts, micro-batching, caching, latency SLOs.

Quickstart
----------
>>> from repro.data import load_dataset, WindowSpec
>>> from repro.core import make_st_wa
>>> from repro.training import Trainer, TrainerConfig
>>> ds = load_dataset("PEMS04", profile="fast")
>>> model = make_st_wa(ds.num_sensors)
>>> trainer = Trainer(model, ds, WindowSpec(12, 12), TrainerConfig(epochs=5))
>>> history = trainer.fit()  # doctest: +SKIP
>>> trainer.evaluate("test")  # doctest: +SKIP
"""

__version__ = "1.0.0"

from . import (
    analysis,
    baselines,
    core,
    data,
    harness,
    nn,
    obs,
    optim,
    parallel,
    resilience,
    tensor,
    training,
)

__all__ = [
    "tensor",
    "nn",
    "optim",
    "data",
    "core",
    "baselines",
    "training",
    "analysis",
    "harness",
    "obs",
    "parallel",
    "resilience",
    "__version__",
]
