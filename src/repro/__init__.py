"""repro — reproduction of "Towards Spatio-Temporal Aware Traffic Time
Series Forecasting" (Cirstea et al., ICDE 2022).

Subpackages
-----------
``repro.tensor``
    From-scratch reverse-mode autodiff over NumPy (PyTorch substitute).
``repro.nn``
    Neural-network layer library (modules, attention, RNN, TCN, graph conv).
``repro.optim``
    Adam/SGD, clipping, schedules, early stopping.
``repro.data``
    Synthetic PEMS-like traffic datasets, road networks, windows, scalers.
``repro.core``
    The paper's contribution: ST-aware parameter generation, window
    attention with proxies, sensor-correlation attention, the ST-WA model.
``repro.baselines``
    Every comparison model of the paper's Table IV.
``repro.training``
    Trainer, metrics (MAE/RMSE/MAPE), checkpoints, analytic memory model.
``repro.analysis``
    t-SNE, k-means, text plots (Figure 9 tooling).
``repro.harness``
    One runner per paper table/figure; see ``repro.harness.EXPERIMENTS``.
``repro.obs``
    Observability: op-level profiler, module spans, JSONL metric sinks.
``repro.resilience``
    Fault tolerance: anomaly detection, divergence recovery, fault drills.
``repro.exec``
    The Executor seam: serial / parallel / inference / compiled execution
    backends selected by ``ExecutorSpec`` (see DESIGN.md "Executor").
``repro.compile``
    Trace-once/replay-many compiled execution: captured op streams lowered
    to preallocated instruction programs (``ExecutorSpec(kind="compiled")``).
``repro.parallel``
    Multiprocess data-parallel training: worker pool, gradient all-reduce,
    shared-memory batch prefetching (``ExecutorSpec.parallel(...)``).
``repro.serve``
    Online inference: artifacts, micro-batching, caching, latency SLOs.
``repro.fleet``
    Zero-downtime model lifecycle: versioned artifact registry,
    multi-tenant routing with admission control, hot swap / shadow / A/B
    deployment, drift-triggered retraining.

``repro.serve``, ``repro.fleet``, ``repro.parallel``, and
``repro.harness`` are imported lazily (PEP 562): ``import repro`` does not
pay for — or spawn anything on behalf of — the serving or multiprocessing
planes until first attribute access.

Quickstart
----------
>>> from repro.data import load_dataset, WindowSpec
>>> from repro.core import make_st_wa
>>> from repro.training import Trainer, TrainerConfig
>>> ds = load_dataset("PEMS04", profile="fast")
>>> model = make_st_wa(ds.num_sensors)
>>> trainer = Trainer(model, ds, WindowSpec(12, 12), TrainerConfig(epochs=5))
>>> history = trainer.fit()  # doctest: +SKIP
>>> trainer.evaluate("test")  # doctest: +SKIP
"""

__version__ = "1.0.0"

import importlib

from . import (
    analysis,
    baselines,
    compile,  # noqa: A004 - the compiled execution backend, deliberately named
    core,
    data,
    exec,  # noqa: A004 - the Executor subsystem, deliberately named
    nn,
    obs,
    optim,
    resilience,
    tensor,
    training,
)

#: subpackages resolved on first attribute access (PEP 562): harness pulls
#: in serve (serve_bench), fleet sits on serve, and serve/parallel touch
#: multiprocessing
_LAZY_SUBPACKAGES = ("fleet", "harness", "parallel", "serve")

__all__ = [
    "tensor",
    "nn",
    "optim",
    "data",
    "core",
    "baselines",
    "training",
    "analysis",
    "compile",
    "exec",
    "fleet",
    "harness",
    "obs",
    "parallel",
    "resilience",
    "serve",
    "__version__",
]


def __getattr__(name: str):
    if name in _LAZY_SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module  # cache: __getattr__ runs once per name
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_SUBPACKAGES))
