"""Attention layers: canonical multi-head self-attention and the
Longformer-style sliding-window attention baseline.

Canonical self-attention (paper Eq. 2-3) is O(H^2) in the input length H;
sliding-window attention is O(H*S).  The paper's window attention (O(H)) is
implemented in :mod:`repro.core.window_attention` because it is part of the
contribution, not the substrate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """Reshape ``(..., H, d)`` to ``(..., heads, H, d/heads)``."""
    *lead, seq, dim = x.shape
    head_dim = dim // num_heads
    x = ops.reshape(x, (*lead, seq, num_heads, head_dim))
    return ops.swapaxes(x, -2, -3)


def merge_heads(x: Tensor) -> Tensor:
    """Inverse of :func:`split_heads`."""
    x = ops.swapaxes(x, -2, -3)
    *lead, seq, heads, head_dim = x.shape
    return ops.reshape(x, (*lead, seq, heads * head_dim))


class MultiHeadSelfAttention(Module):
    """Canonical multi-head self-attention (paper Eq. 2-3).

    Projection matrices Q, K, V are *shared* across sensors and time — this
    is exactly the spatio-temporal *agnostic* model the paper improves upon.
    Input ``(..., H, in_features)``; output ``(..., H, model_dim)``.
    """

    def __init__(
        self,
        in_features: int,
        model_dim: int,
        num_heads: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if model_dim % num_heads:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_heads = num_heads
        self.model_dim = model_dim
        self.q_proj = Parameter(init.xavier_uniform((in_features, model_dim), rng))
        self.k_proj = Parameter(init.xavier_uniform((in_features, model_dim), rng))
        self.v_proj = Parameter(init.xavier_uniform((in_features, model_dim), rng))
        self.out_proj = Parameter(init.xavier_uniform((model_dim, model_dim), rng))

    def forward(self, x: Tensor) -> Tensor:
        query = split_heads(ops.linear(x, self.q_proj), self.num_heads)
        key = split_heads(ops.linear(x, self.k_proj), self.num_heads)
        value = split_heads(ops.linear(x, self.v_proj), self.num_heads)
        scale = 1.0 / np.sqrt(query.shape[-1])
        scores = ops.softmax(ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale, axis=-1)
        context = merge_heads(ops.matmul(scores, value))
        return ops.linear(context, self.out_proj)


class SlidingWindowSelfAttention(Module):
    """Longformer-style sliding-window attention (related-work baseline).

    Each timestamp attends to the ``window`` timestamps centred on it
    (past and future neighbours), giving O(H * window) complexity.  The
    restriction is implemented with an additive mask, which keeps the code
    simple; the complexity benchmark accounts for the masked structure
    analytically.
    """

    def __init__(
        self,
        in_features: int,
        model_dim: int,
        window: int = 3,
        num_heads: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.window = window
        self.inner = MultiHeadSelfAttention(in_features, model_dim, num_heads=num_heads, rng=rng)
        self._mask_cache: dict[int, np.ndarray] = {}

    def _band_mask(self, seq_len: int) -> np.ndarray:
        mask = self._mask_cache.get(seq_len)
        if mask is None:
            offsets = np.abs(np.arange(seq_len)[:, None] - np.arange(seq_len)[None, :])
            mask = np.where(offsets <= self.window, 0.0, -1e9)
            self._mask_cache[seq_len] = mask
        return mask

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        mask = self._band_mask(seq_len)
        inner = self.inner
        query = split_heads(ops.linear(x, inner.q_proj), inner.num_heads)
        key = split_heads(ops.linear(x, inner.k_proj), inner.num_heads)
        value = split_heads(ops.linear(x, inner.v_proj), inner.num_heads)
        scale = 1.0 / np.sqrt(query.shape[-1])
        logits = ops.matmul(query, ops.swapaxes(key, -1, -2)) * scale + Tensor(mask)
        scores = ops.softmax(logits, axis=-1)
        context = merge_heads(ops.matmul(scores, value))
        return ops.linear(context, inner.out_proj)
