"""Temporal convolutions (TCN substrate for STGCN / Graph WaveNet / STFGNN).

Convention: the time axis is second-to-last, features last, i.e. inputs are
``(..., time, channels)``.  A causal dilated convolution computes

    out[t] = sum_k  x[t - k * dilation] @ W_k + b

with zero left-padding so output length equals input length.  Implemented as
one matmul per kernel tap over shifted slices — efficient under the autodiff
engine because taps are few while time/batch are vectorized.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter


class CausalConv1d(Module):
    """Causal dilated 1-D convolution along the time axis."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.weight = Parameter(init.xavier_uniform((kernel_size, in_channels, out_channels), rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    @property
    def receptive_field(self) -> int:
        """Number of past timestamps (incl. current) influencing one output."""
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        time_steps = x.shape[-2]
        left = (self.kernel_size - 1) * self.dilation
        pad_width = [(0, 0)] * (x.ndim - 2) + [(left, 0), (0, 0)]
        padded = ops.pad(x, pad_width)
        out = None
        # weight[k] multiplies x[t - (K-1-k)*dilation]: index 0 is the oldest
        # tap, index K-1 the current timestamp (PyTorch Conv1d convention).
        for k in range(self.kernel_size):
            start = k * self.dilation
            tap = padded[..., start : start + time_steps, :]
            term = ops.matmul(tap, self.weight[k])
            out = term if out is None else out + term
        if self.bias is not None:
            out = out + self.bias
        return out


class GatedTemporalConv(Module):
    """Gated TCN block: ``tanh(conv_f(x)) * sigmoid(conv_g(x))``.

    The gating unit used by Graph WaveNet and STGCN's temporal blocks.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.filter_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng=rng)
        self.gate_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(self.filter_conv(x)) * ops.sigmoid(self.gate_conv(x))
