"""Neural-network layer library built on :mod:`repro.tensor`.

The ``torch.nn`` substitute: module system, affine/recurrent/convolutional/
attention/graph layers, initializers, normalization, and dropout.
"""

from . import init
from .activations import LeakyReLU, ReLU, Sigmoid, Tanh
from .attention import MultiHeadSelfAttention, SlidingWindowSelfAttention, merge_heads, split_heads
from .conv import CausalConv1d, GatedTemporalConv
from .dropout import Dropout
from .graph import (
    AdaptiveAdjacency,
    ChebGraphConv,
    DiffusionGraphConv,
    GraphConv,
    NodeAdaptiveGraphConv,
    normalized_adjacency,
    random_walk_matrix,
    scaled_laplacian,
)
from .linear import MLP, Linear
from .module import Module, ModuleList, Parameter, ParameterList, Sequential
from .normalization import BatchNorm1d, LayerNorm
from .recurrent import GRU, LSTM, GRUCell, LSTMCell

__all__ = [
    "init",
    "Module",
    "ModuleList",
    "Parameter",
    "ParameterList",
    "Sequential",
    "Linear",
    "MLP",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "MultiHeadSelfAttention",
    "SlidingWindowSelfAttention",
    "split_heads",
    "merge_heads",
    "GRUCell",
    "GRU",
    "LSTMCell",
    "LSTM",
    "CausalConv1d",
    "GatedTemporalConv",
    "GraphConv",
    "ChebGraphConv",
    "DiffusionGraphConv",
    "AdaptiveAdjacency",
    "NodeAdaptiveGraphConv",
    "normalized_adjacency",
    "random_walk_matrix",
    "scaled_laplacian",
]
