"""Recurrent cells and sequence wrappers (GRU / LSTM).

These back the GRU baseline, DCRNN's recurrent skeleton, meta-LSTM, and the
model-agnostic ST-aware GRU of the paper's Table VII.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter


class GRUCell(Module):
    """Gated recurrent unit cell.

    ``forward(x, h)`` with ``x (..., in_features)`` and ``h (..., hidden)``
    returns the next hidden state.  Gates are fused into a single matmul.
    """

    def __init__(self, in_features: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.weight_x = Parameter(init.xavier_uniform((in_features, 3 * hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias = Parameter(init.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates_x = ops.linear(x, self.weight_x, self.bias)
        gates_h = ops.linear(h, self.weight_h)
        n = self.hidden_size
        reset = ops.sigmoid(gates_x[..., :n] + gates_h[..., :n])
        update = ops.sigmoid(gates_x[..., n : 2 * n] + gates_h[..., n : 2 * n])
        candidate = ops.tanh(gates_x[..., 2 * n :] + reset * gates_h[..., 2 * n :])
        return update * h + (1.0 - update) * candidate


class LSTMCell(Module):
    """Long short-term memory cell; returns ``(h, c)``."""

    def __init__(self, in_features: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.weight_x = Parameter(init.xavier_uniform((in_features, 4 * hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        self.bias = Parameter(init.zeros(4 * hidden_size))

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        gates = ops.linear(x, self.weight_x, self.bias) + ops.linear(h, self.weight_h)
        n = self.hidden_size
        input_gate = ops.sigmoid(gates[..., :n])
        forget_gate = ops.sigmoid(gates[..., n : 2 * n])
        cell_update = ops.tanh(gates[..., 2 * n : 3 * n])
        output_gate = ops.sigmoid(gates[..., 3 * n :])
        c_next = forget_gate * c + input_gate * cell_update
        h_next = output_gate * ops.tanh(c_next)
        return h_next, c_next


class GRU(Module):
    """Run a :class:`GRUCell` over the time axis.

    Input ``(batch, time, features)`` (any extra leading axes are allowed);
    returns ``(outputs, last_hidden)`` where outputs stacks every step along
    the time axis.
    """

    def __init__(self, in_features: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = GRUCell(in_features, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h0: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        *lead, time_steps, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((*lead, self.hidden_size)))
        outputs = []
        for t in range(time_steps):
            h = self.cell(x[..., t, :], h)
            outputs.append(h)
        return ops.stack(outputs, axis=-2), h


class LSTM(Module):
    """Run an :class:`LSTMCell` over the time axis; returns ``(outputs, (h, c))``."""

    def __init__(self, in_features: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = LSTMCell(in_features, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None):
        *lead, time_steps, _ = x.shape
        if state is None:
            h = Tensor(np.zeros((*lead, self.hidden_size)))
            c = Tensor(np.zeros((*lead, self.hidden_size)))
        else:
            h, c = state
        outputs = []
        for t in range(time_steps):
            h, c = self.cell(x[..., t, :], (h, c))
            outputs.append(h)
        return ops.stack(outputs, axis=-2), (h, c)
