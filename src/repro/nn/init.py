"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is seedable end-to-end (a requirement for the paired
ablation comparisons in Tables VIII-XIV).
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU networks: U(-a, a) with a = sqrt(6 / fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape, rng: np.random.Generator, low: float = -0.08, high: float = 0.08) -> np.ndarray:
    """Plain uniform initialization."""
    return rng.uniform(low, high, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


def _fans(shape) -> tuple[int, int]:
    shape = tuple(int(s) for s in shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # conv-style (out, in, *kernel) or stacked (..., in, out): use last two
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    return shape[-2] * receptive, shape[-1] * receptive
