"""Graph convolutions over the sensor axis (substrate for the GNN baselines).

Convention: the node (sensor) axis is second-to-last, features last — inputs
are ``(..., N, F)``.  A fixed adjacency is a plain ``numpy`` array; learned
adjacencies (Graph WaveNet, AGCRN) are parameterized by node embeddings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter, ParameterList


def normalized_adjacency(adj: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetric normalization ``D^-1/2 (A [+ I]) D^-1/2``."""
    adj = np.asarray(adj, dtype=np.float64)
    if add_self_loops:
        adj = adj + np.eye(adj.shape[0])
    degree = adj.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    positive = degree > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degree[positive])
    return inv_sqrt[:, None] * adj * inv_sqrt[None, :]


def random_walk_matrix(adj: np.ndarray) -> np.ndarray:
    """Row-normalized transition matrix ``D^-1 A`` (diffusion convolution)."""
    adj = np.asarray(adj, dtype=np.float64)
    degree = adj.sum(axis=1)
    inv = np.zeros_like(degree)
    positive = degree > 0
    inv[positive] = 1.0 / degree[positive]
    return inv[:, None] * adj


def scaled_laplacian(adj: np.ndarray) -> np.ndarray:
    """Chebyshev-scaled Laplacian ``2 L / lambda_max - I`` (STGCN)."""
    normalized = normalized_adjacency(adj, add_self_loops=False)
    laplacian = np.eye(adj.shape[0]) - normalized
    eigenvalues = np.linalg.eigvalsh(laplacian)
    lambda_max = float(eigenvalues.max()) if eigenvalues.size else 2.0
    if lambda_max <= 0:
        lambda_max = 2.0
    return 2.0 * laplacian / lambda_max - np.eye(adj.shape[0])


class GraphConv(Module):
    """First-order graph convolution ``Â X W`` with a fixed adjacency."""

    def __init__(self, in_features: int, out_features: int, adj: np.ndarray, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.adj = Tensor(normalized_adjacency(adj))
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        mixed = ops.matmul(self.adj, x)
        return ops.linear(mixed, self.weight, self.bias)


class ChebGraphConv(Module):
    """Chebyshev-polynomial graph convolution of order ``K`` (STGCN)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        adj: np.ndarray,
        order: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if order < 1:
            raise ValueError("order must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.order = order
        self.laplacian = Tensor(scaled_laplacian(adj))
        self.weights = ParameterList(
            Parameter(init.xavier_uniform((in_features, out_features), rng)) for _ in range(order)
        )
        self.bias = Parameter(init.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        # T_0 = X, T_1 = L X, T_k = 2 L T_{k-1} - T_{k-2}
        terms = [x]
        if self.order > 1:
            terms.append(ops.matmul(self.laplacian, x))
        for _ in range(2, self.order):
            terms.append(2.0 * ops.matmul(self.laplacian, terms[-1]) - terms[-2])
        out = None
        for term, weight in zip(terms, self.weights):
            contribution = ops.linear(term, weight)
            out = contribution if out is None else out + contribution
        return out + self.bias


class DiffusionGraphConv(Module):
    """Bidirectional diffusion convolution (DCRNN).

    Aggregates ``K`` random-walk steps in both the forward and the reversed
    transition direction, each with its own weight matrix.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        adj: np.ndarray,
        steps: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.steps = steps
        self.forward_walk = Tensor(random_walk_matrix(adj))
        self.backward_walk = Tensor(random_walk_matrix(adj.T))
        # weights: identity term + (forward + backward) * steps
        count = 1 + 2 * steps
        self.weights = ParameterList(
            Parameter(init.xavier_uniform((in_features, out_features), rng)) for _ in range(count)
        )
        self.bias = Parameter(init.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = ops.linear(x, self.weights[0])
        index = 1
        for walk in (self.forward_walk, self.backward_walk):
            support = x
            for _ in range(self.steps):
                support = ops.matmul(walk, support)
                out = out + ops.linear(support, self.weights[index])
                index += 1
        return out + self.bias


class AdaptiveAdjacency(Module):
    """Learned adjacency ``softmax(relu(E1 E2^T))`` (Graph WaveNet / AGCRN).

    Purely data-driven: no pre-defined road graph is required.
    """

    def __init__(self, num_nodes: int, embed_dim: int = 8, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.source = Parameter(rng.standard_normal((num_nodes, embed_dim)) * 0.1)
        self.target = Parameter(rng.standard_normal((num_nodes, embed_dim)) * 0.1)

    def forward(self) -> Tensor:
        logits = ops.relu(ops.matmul(self.source, ops.swapaxes(self.target, -1, -2)))
        return ops.softmax(logits, axis=-1)


class NodeAdaptiveGraphConv(Module):
    """AGCRN's node-adaptive parameter learning graph convolution.

    Per-node weights are generated from a node embedding and a shared weight
    pool, ``W_i = e_i @ pool`` — the 'pool of candidate weights' mechanism
    the paper cites as the defining feature of AGCRN [18].
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_nodes: int,
        embed_dim: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.node_embed = Parameter(rng.standard_normal((num_nodes, embed_dim)) * 0.1)
        self.weight_pool = Parameter(init.xavier_uniform((embed_dim, in_features * out_features), rng))
        self.bias_pool = Parameter(init.zeros((embed_dim, out_features)))
        self.in_features = in_features
        self.out_features = out_features
        self.num_nodes = num_nodes

    def forward(self, x: Tensor) -> Tensor:
        # adaptive adjacency from the same embedding
        logits = ops.relu(ops.matmul(self.node_embed, ops.swapaxes(self.node_embed, -1, -2)))
        adj = ops.softmax(logits, axis=-1)
        mixed = ops.matmul(adj, x)  # (..., N, F)
        weights = ops.reshape(
            ops.matmul(self.node_embed, self.weight_pool),
            (self.num_nodes, self.in_features, self.out_features),
        )
        bias = ops.matmul(self.node_embed, self.bias_pool)  # (N, out)
        # einsum '...nf,nfo->...no' via elementwise-mul + sum
        expanded = ops.reshape(mixed, (*mixed.shape[:-1], self.in_features, 1))
        per_node = ops.sum(expanded * weights, axis=-2)
        return per_node + bias
