"""Activation functions as modules, for use inside ``Sequential``."""

from __future__ import annotations

from ..tensor import Tensor, ops
from .module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)
