"""Dropout regularization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from .module import Module


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    An explicit ``rng`` makes runs reproducible; a shared default generator
    is used otherwise.
    """

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep, rng, shape = 1.0 - self.p, self._rng, x.shape

        def draw() -> np.ndarray:
            return (rng.random(shape) < keep).astype(np.float64) / keep

        return ops.dropout_mask(x, ops.notify_host_input(draw(), draw))
