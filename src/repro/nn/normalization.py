"""Normalization layers."""

from __future__ import annotations

from ..tensor import Tensor, ops
from .module import Module, Parameter

import numpy as np


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine."""

    def __init__(self, normalized_size: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_size = normalized_size
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_size))
        self.beta = Parameter(np.zeros(normalized_size))

    def forward(self, x: Tensor) -> Tensor:
        mean = ops.mean(x, axis=-1, keepdims=True)
        centered = x - mean
        variance = ops.mean(centered * centered, axis=-1, keepdims=True)
        normalized = centered / ops.sqrt(variance + self.eps)
        return normalized * self.gamma + self.beta


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics.

    Used by the temporal-convolution baselines; statistics are tracked in
    training mode and frozen in eval mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            # Running-stat updates happen outside the op stream, so a
            # compiled replay would freeze them; keep this layer interpreted.
            ops.notify_compile_unsupported("BatchNorm1d: running statistics update")
            reduce_axes = tuple(range(x.ndim - 1))
            batch_mean = x.data.mean(axis=reduce_axes)
            batch_var = x.data.var(axis=reduce_axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean = ops.mean(x, axis=reduce_axes, keepdims=True)
            centered = x - mean
            variance = ops.mean(centered * centered, axis=reduce_axes, keepdims=True)
            normalized = centered / ops.sqrt(variance + self.eps)
        else:
            normalized = (x - self.running_mean) / np.sqrt(self.running_var + self.eps)
        return normalized * self.gamma + self.beta
