"""Affine layers: Linear and MLP.

Weights are stored input-major (``in_features x out_features``) so the
forward pass is ``x @ W + b`` and batches of arbitrary leading dimensions
broadcast naturally — the models in this reproduction routinely carry
``(batch, sensors, time, features)`` tensors.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, ModuleList, Parameter


class Linear(Module):
    """Affine transformation ``y = x @ W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias)


_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "identity": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``sizes`` lists every layer width including input and output, e.g.
    ``MLP([16, 32, 5])`` is the paper's decoder shape.  The activation is
    applied between layers but not after the last one unless
    ``final_activation`` is set.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "relu",
        final_activation: Optional[str] = None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}")
        if final_activation is not None and final_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown final activation {final_activation!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.layers = ModuleList(
            Linear(fan_in, fan_out, bias=bias, rng=rng) for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        )
        self._activation = _ACTIVATIONS[activation]
        self._final_activation = _ACTIVATIONS[final_activation] if final_activation else None
        self.sizes = tuple(sizes)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < last:
                x = self._activation(x)
        if self._final_activation is not None:
            x = self._final_activation(x)
        return x
