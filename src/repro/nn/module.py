"""Module/Parameter system (the ``torch.nn.Module`` substitute).

Modules register parameters and child modules automatically through
attribute assignment, expose recursive traversal (:meth:`Module.parameters`,
:meth:`Module.named_parameters`), train/eval mode switching, and
``state_dict`` save/load for checkpointing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable leaf of a module (always requires grad)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class RemovableHandle:
    """Deregisters a hook when :meth:`remove` is called."""

    _next_id = 0

    def __init__(self, registry: Dict[int, object]):
        self._registry = registry
        self.id = RemovableHandle._next_id
        RemovableHandle._next_id += 1

    def remove(self) -> None:
        self._registry.pop(self.id, None)


class Module:
    """Base class for all neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic.  ``Module`` also tracks a
    ``training`` flag consumed by stochastic layers (dropout, variational
    sampling).
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_pre_hooks", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Register a parameter under ``name`` (for dynamic construction)."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, root first.

        The root's name is ``prefix`` (empty by default); children append
        their attribute names, e.g. ``encoder.window_attention.0``.
        """
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # mode / gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout and sampling)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name -> array snapshot (copies) of all parameters."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values by qualified name; shapes must match."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {parameter.data.shape}")
            parameter.data = value.copy()

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def register_forward_pre_hook(self, hook) -> RemovableHandle:
        """Call ``hook(module, args)`` before every forward of this module."""
        handle = RemovableHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.id] = hook
        return handle

    def register_forward_hook(self, hook) -> RemovableHandle:
        """Call ``hook(module, args, output)`` after every forward.

        A hook returning a non-``None`` value replaces the output (mirrors
        the PyTorch contract, and lets wrappers rewrite activations).
        """
        handle = RemovableHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = hook
        return handle

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        # dict.get keeps pre-hook-era pickles / exotic subclasses working
        pre_hooks = self.__dict__.get("_forward_pre_hooks")
        if pre_hooks:
            for hook in tuple(pre_hooks.values()):
                hook(self, args)
        output = self.forward(*args, **kwargs)
        post_hooks = self.__dict__.get("_forward_hooks")
        if post_hooks:
            for hook in tuple(post_hooks.values()):
                result = hook(self, args, output)
                if result is not None:
                    output = result
        return output

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}(params={self.num_parameters()}, children=[{children}])"


class ModuleList(Module):
    """A list of sub-modules, registered so traversal finds them."""

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class ParameterList(Module):
    """A list of parameters, registered so traversal finds them."""

    def __init__(self, parameters: Optional[Iterable[Parameter]] = None):
        super().__init__()
        self._items: List[Parameter] = []
        for parameter in parameters or []:
            self.append(parameter)

    def append(self, parameter: Parameter) -> "ParameterList":
        self.register_parameter(str(len(self._items)), parameter)
        self._items.append(parameter)
        return self

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Parameter:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ParameterList is a container and cannot be called")


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
