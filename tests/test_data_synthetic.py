"""The traffic simulator must generate the structure the paper exploits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    STEPS_PER_DAY,
    SyntheticTrafficConfig,
    TrafficSimulator,
    generate_traffic,
)
from repro.data.graph_gen import generate_road_network


@pytest.fixture(scope="module")
def simulated():
    config = SyntheticTrafficConfig(num_sensors=16, num_days=14, num_corridors=4, seed=11)
    simulator = TrafficSimulator(config)
    return simulator, simulator.generate()


class TestRoadNetwork:
    def test_validation(self):
        with pytest.raises(ValueError):
            generate_road_network(1)
        with pytest.raises(ValueError):
            generate_road_network(10, num_corridors=0)

    def test_sensor_count_and_metadata(self):
        net = generate_road_network(20, num_corridors=3, seed=0)
        assert net.num_sensors == 20
        assert {s.direction for s in net.sensors} <= {0, 1}
        assert {s.corridor for s in net.sensors} <= set(range(3))

    def test_corridor_chains_are_connected(self):
        net = generate_road_network(24, num_corridors=2, seed=0)
        chain = net.corridor_members(0, 0)
        assert len(chain) >= 2
        for upstream, downstream in zip(chain[:-1], chain[1:]):
            assert net.adjacency[upstream, downstream] > 0

    def test_adjacency_is_directed_chain(self):
        net = generate_road_network(24, num_corridors=2, seed=0, interchange_probability=0.0)
        chain = net.corridor_members(1, 1)
        # downstream -> upstream edges must not exist without interchanges
        for upstream, downstream in zip(chain[:-1], chain[1:]):
            assert net.adjacency[downstream, upstream] == 0

    def test_deterministic_given_seed(self):
        a = generate_road_network(12, seed=5).adjacency
        b = generate_road_network(12, seed=5).adjacency
        np.testing.assert_array_equal(a, b)


class TestTrafficGeneration:
    def test_output_shape_and_nonnegative(self, simulated):
        _, flows = simulated
        assert flows.shape == (16, 14 * STEPS_PER_DAY, 1)
        assert flows.min() >= 0.0

    def test_flow_magnitude_matches_pems_range(self, simulated):
        _, flows = simulated
        assert 30 < flows.mean() < 400  # vehicles / 5 min, PEMS-like
        assert flows.max() < 1500

    def test_weekday_weekend_regimes_differ(self, simulated):
        """Fig 1: weekend patterns differ from weekday patterns."""
        _, flows = simulated
        series = flows[0, :, 0]
        days = series.reshape(14, STEPS_PER_DAY)
        weekday = days[[0, 1, 2, 3, 4, 7, 8]].mean(axis=0)
        weekend = days[[5, 6, 12, 13]].mean(axis=0)
        correlation = np.corrcoef(weekday, weekend)[0, 1]
        assert correlation < 0.95  # regimes are genuinely different

    def test_weekday_profile_repeats(self, simulated):
        """Same weekday across weeks should be highly correlated."""
        _, flows = simulated
        series = flows[0, :, 0]
        days = series.reshape(14, STEPS_PER_DAY)
        correlation = np.corrcoef(days[0], days[7])[0, 1]  # two Mondays
        assert correlation > 0.9

    def test_same_corridor_more_correlated_than_cross(self, simulated):
        """Fig 1: sensors on the same street share patterns."""
        simulator, flows = simulated
        same = simulator.network.corridor_members(0, 0)
        other = simulator.network.corridor_members(1, 0)
        same_corr = np.corrcoef(flows[same[0], :, 0], flows[same[1], :, 0])[0, 1]
        cross_corr = np.corrcoef(flows[same[0], :, 0], flows[other[0], :, 0])[0, 1]
        assert same_corr > cross_corr

    def test_directions_have_asymmetric_peaks(self):
        """Inbound peaks in the morning, outbound in the evening."""
        config = SyntheticTrafficConfig(
            num_sensors=8, num_days=7, num_corridors=2, seed=3, noise_std=0.0,
            incident_rate_per_day=0.0,
        )
        simulator = TrafficSimulator(config)
        flows = simulator.generate()
        inbound = simulator.network.corridor_members(0, 0)[0]
        outbound = simulator.network.corridor_members(0, 1)[0]
        day = slice(0, STEPS_PER_DAY)  # a weekday
        am = slice(6 * 12, 10 * 12)
        pm = slice(15 * 12, 19 * 12)
        inbound_day = flows[inbound, day, 0]
        outbound_day = flows[outbound, day, 0]
        assert inbound_day[am].mean() > inbound_day[pm].mean()
        assert outbound_day[pm].mean() > outbound_day[am].mean()

    def test_propagation_creates_lagged_correlation(self):
        config = SyntheticTrafficConfig(
            num_sensors=8, num_days=7, num_corridors=1, seed=3, noise_std=2.0,
            propagation_strength=0.5, incident_rate_per_day=0.0,
        )
        simulator = TrafficSimulator(config)
        flows = simulator.generate()
        chain = simulator.network.corridor_members(0, 0)
        upstream, downstream = flows[chain[0], :, 0], flows[chain[1], :, 0]
        lag = config.propagation_lag
        lagged = np.corrcoef(upstream[:-lag], downstream[lag:])[0, 1]
        assert lagged > 0.9

    def test_incidents_cause_local_drops(self):
        quiet = SyntheticTrafficConfig(
            num_sensors=8, num_days=7, num_corridors=2, seed=5, incident_rate_per_day=0.0, noise_std=0.0
        )
        busy = SyntheticTrafficConfig(
            num_sensors=8, num_days=7, num_corridors=2, seed=5, incident_rate_per_day=3.0, noise_std=0.0
        )
        base = TrafficSimulator(quiet).generate()
        with_incidents = TrafficSimulator(busy).generate()
        assert with_incidents.sum() < base.sum()  # incidents remove flow

    def test_deterministic_given_seed(self):
        config = SyntheticTrafficConfig(num_sensors=6, num_days=3, seed=9)
        a, _ = generate_traffic(config)
        b, _ = generate_traffic(config)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a, _ = generate_traffic(SyntheticTrafficConfig(num_sensors=6, num_days=3, seed=1))
        b, _ = generate_traffic(SyntheticTrafficConfig(num_sensors=6, num_days=3, seed=2))
        assert not np.allclose(a, b)
