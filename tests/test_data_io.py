"""Dataset persistence round trips and CSV export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import export_sensor_csv, load_saved_dataset, save_dataset


class TestDatasetRoundtrip:
    def test_arrays_preserved(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        loaded = load_saved_dataset(path)
        np.testing.assert_array_equal(loaded.train_raw, tiny_dataset.train_raw)
        np.testing.assert_array_equal(loaded.val_raw, tiny_dataset.val_raw)
        np.testing.assert_array_equal(loaded.test_raw, tiny_dataset.test_raw)

    def test_scaler_preserved(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        loaded = load_saved_dataset(path)
        assert loaded.scaler.mean == tiny_dataset.scaler.mean
        assert loaded.scaler.std == tiny_dataset.scaler.std
        np.testing.assert_allclose(loaded.train, tiny_dataset.train)

    def test_network_preserved(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        loaded = load_saved_dataset(path)
        np.testing.assert_array_equal(loaded.adjacency, tiny_dataset.adjacency)
        assert loaded.num_sensors == tiny_dataset.num_sensors
        original = tiny_dataset.network.sensors[0]
        restored = loaded.network.sensors[0]
        assert restored.corridor == original.corridor
        assert restored.direction == original.direction
        assert loaded.network.graph.number_of_edges() == int((tiny_dataset.adjacency > 0).sum())

    def test_metadata_preserved(self, tiny_dataset, tmp_path):
        loaded = load_saved_dataset(save_dataset(tiny_dataset, tmp_path / "tiny.npz"))
        assert loaded.name == tiny_dataset.name
        assert loaded.profile == tiny_dataset.profile

    def test_corridor_membership_survives(self, tiny_dataset, tmp_path):
        loaded = load_saved_dataset(save_dataset(tiny_dataset, tmp_path / "tiny.npz"))
        assert loaded.network.corridor_members(0, 0) == tiny_dataset.network.corridor_members(0, 0)


class TestCsvExport:
    def test_export(self, tiny_dataset, tmp_path):
        path = export_sensor_csv(tiny_dataset, 0, tmp_path / "sensor0.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "step,flow"
        assert len(lines) == tiny_dataset.train_raw.shape[1] + 1

    def test_unknown_split_raises(self, tiny_dataset, tmp_path):
        with pytest.raises(KeyError):
            export_sensor_csv(tiny_dataset, 0, tmp_path / "x.csv", split="holdout")

    def test_values_match(self, tiny_dataset, tmp_path):
        path = export_sensor_csv(tiny_dataset, 1, tmp_path / "sensor1.csv", split="test")
        lines = path.read_text().strip().splitlines()[1:]
        first = float(lines[0].split(",")[1])
        np.testing.assert_allclose(first, tiny_dataset.test_raw[1, 0, 0])
