"""Window attention with proxies (paper Eq. 10-14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.window_attention import ProxyAggregator, WindowAttention
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


def make_layer(rng, **overrides):
    kwargs = dict(
        num_sensors=3,
        in_features=2,
        model_dim=4,
        num_windows=3,
        window_size=4,
        num_proxies=2,
        rng=rng,
    )
    kwargs.update(overrides)
    return WindowAttention(**kwargs)


class TestProxyAggregator:
    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            ProxyAggregator(4, mode="median", rng=rng)

    def test_weighted_output_shape(self, rng):
        agg = ProxyAggregator(4, rng=rng)
        out = agg(Tensor(rng.standard_normal((2, 3, 5, 4))))
        assert out.shape == (2, 3, 4)

    def test_mean_mode_is_uniform_average(self, rng):
        agg = ProxyAggregator(4, mode="mean", rng=rng)
        x = rng.standard_normal((2, 3, 5, 4))
        np.testing.assert_allclose(agg(Tensor(x)).numpy(), x.mean(axis=-2))

    def test_weighted_gates_bounded(self, rng):
        """Eq. 12: sigmoid gate keeps per-proxy weights in [0, 1], so the
        aggregate is bounded by the sum of |proxy| outputs."""
        agg = ProxyAggregator(4, rng=rng)
        x = rng.standard_normal((2, 3, 5, 4))
        out = agg(Tensor(x)).numpy()
        assert np.all(np.abs(out) <= np.abs(x).sum(axis=-2) + 1e-9)

    def test_gradients(self, rng):
        agg = ProxyAggregator(3, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 3)), requires_grad=True)
        check_gradients(lambda x_: agg(x_), [x])


class TestWindowAttention:
    def test_model_dim_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            make_layer(rng, model_dim=5, num_heads=2)

    def test_output_shape(self, rng):
        layer = make_layer(rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 12, 2))))
        assert out.shape == (2, 3, 3, 4)  # (B, N, W, d)

    def test_input_validation(self, rng):
        layer = make_layer(rng)
        with pytest.raises(ValueError, match="input length"):
            layer(Tensor(rng.standard_normal((2, 3, 10, 2))))
        with pytest.raises(ValueError, match="sensors"):
            layer(Tensor(rng.standard_normal((2, 4, 12, 2))))
        with pytest.raises(ValueError, match="features"):
            layer(Tensor(rng.standard_normal((2, 3, 12, 3))))

    def test_proxy_tensor_shape_matches_paper(self, rng):
        """P in R^{W x N x p x d} (Section IV-B)."""
        layer = make_layer(rng)
        assert layer.proxies.shape == (3, 3, 2, 4)

    def test_generated_projections_accepted(self, rng):
        layer = make_layer(rng)
        x = Tensor(rng.standard_normal((2, 3, 12, 2)))
        projections = {
            "K": Tensor(rng.standard_normal((2, 3, 2, 4))),
            "V": Tensor(rng.standard_normal((2, 3, 2, 4))),
        }
        out = layer(x, projections)
        assert out.shape == (2, 3, 3, 4)
        # generated projections change the output vs static ones
        assert not np.allclose(out.numpy(), layer(x).numpy())

    def test_per_sensor_projections_break_sensor_symmetry(self, rng):
        """Two sensors with identical inputs produce identical outputs under
        static (agnostic) projections... except proxies are per-sensor too,
        so feed identical proxies and check the *generated* path differs."""
        layer = make_layer(rng, num_sensors=2)
        layer.proxies.data[:] = layer.proxies.data[:, :1]  # same proxies for both sensors
        x_np = rng.standard_normal((1, 1, 12, 2))
        x = Tensor(np.repeat(x_np, 2, axis=1))
        static_out = layer(x).numpy()
        np.testing.assert_allclose(static_out[:, 0], static_out[:, 1], atol=1e-12)
        projections = {
            "K": Tensor(rng.standard_normal((2, 2, 4))),  # per-sensor K
            "V": Tensor(rng.standard_normal((2, 2, 4))),
        }
        generated_out = layer(x, projections).numpy()
        assert not np.allclose(generated_out[:, 0], generated_out[:, 1])

    def test_cross_window_fusion_propagates_information(self, rng):
        """Eq. 14: perturbing window 0 must influence window 2's output when
        fusion is on, and must NOT when fusion is off."""
        x_np = rng.standard_normal((1, 3, 12, 2))
        perturbed = x_np.copy()
        perturbed[0, 0, 0] += 10.0  # inside window 0

        fused = make_layer(rng, cross_window_fusion=True)
        base = fused(Tensor(x_np)).numpy()
        moved = fused(Tensor(perturbed)).numpy()
        assert not np.allclose(base[0, 0, 2], moved[0, 0, 2])  # window 2 changed

        unfused = make_layer(rng, cross_window_fusion=False)
        base = unfused(Tensor(x_np)).numpy()
        moved = unfused(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(base[0, 0, 2], moved[0, 0, 2], atol=1e-12)

    @pytest.mark.parametrize("heads", [1, 2])
    def test_gradients(self, heads, rng):
        layer = make_layer(rng, num_windows=2, window_size=3, num_heads=heads)
        x = Tensor(rng.standard_normal((1, 3, 6, 2)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x], atol=1e-4, rtol=1e-3)

    def test_proxies_receive_gradient(self, rng):
        layer = make_layer(rng)
        x = Tensor(rng.standard_normal((1, 3, 12, 2)))
        layer(x).sum().backward()
        assert layer.proxies.grad is not None
        assert np.abs(layer.proxies.grad).sum() > 0

    def test_linear_complexity_in_score_count(self, rng):
        """O(p*H) attention scores vs O(H^2): count score-matrix elements."""
        history = 24
        layer = make_layer(rng, num_windows=6, window_size=4)
        scores_window = layer.num_windows * layer.num_proxies * layer.window_size
        scores_canonical = history * history
        assert scores_window < scores_canonical / 4
