"""The public API surface must match the reviewed snapshot.

``tests/api_surface.json`` records every exported ``repro.*`` symbol with
its kind and call signature (see ``tools/api_surface.py``).  Any public
API change — renamed keyword, dropped export, new default — must land as
a reviewed diff to that file, never as silent drift.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "tests" / "api_surface.json"


def _build_surface():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from api_surface import build_surface
    finally:
        sys.path.pop(0)
    return build_surface()


def test_surface_matches_snapshot():
    assert SNAPSHOT.exists(), "missing snapshot; run tools/api_surface.py --update"
    recorded = json.loads(SNAPSHOT.read_text())
    current = _build_surface()
    assert current == recorded, (
        "public API drifted from tests/api_surface.json; if intentional run\n"
        "  PYTHONPATH=src python tools/api_surface.py --update\n"
        "and commit the result"
    )


def test_snapshot_covers_the_executor_subsystem():
    surface = json.loads(SNAPSHOT.read_text())
    exported = surface["repro.exec"]
    for name in ("Executor", "ExecutorSpec", "SerialExecutor", "ParallelExecutor",
                 "InferenceExecutor", "StepResult", "make_executor"):
        assert name in exported
    assert "(self, weights" in exported["Executor"]["methods"]["train_step"]
