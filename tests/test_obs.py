"""Observability layer: op profiler, module spans, metric sinks, events."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data import WindowSpec
from repro.baselines import GRUForecaster
from repro.nn import Linear, Module, ReLU, Sequential
from repro.tensor import Tensor, ops
from repro.training import Trainer, TrainerConfig, TrainingHistory


def small_graph():
    a = Tensor(np.random.default_rng(0).normal(size=(16, 8)), requires_grad=True)
    w = Tensor(np.random.default_rng(1).normal(size=(8, 4)), requires_grad=True)
    return a, w


class TestProfiler:
    def test_records_forward_and_backward(self):
        a, w = small_graph()
        with obs.profile() as prof:
            loss = (a @ w).relu().mean()
            loss.backward()
        recorded = set(prof.ops)
        assert ("matmul", "forward") in recorded
        assert ("matmul", "backward") in recorded
        assert ("relu", "forward") in recorded
        assert ("mean", "backward") in recorded
        for stat in prof.ops.values():
            assert stat.calls >= 1
            assert stat.seconds >= 0.0

    def test_matmul_flops_analytic(self):
        a, w = small_graph()
        with obs.profile() as prof:
            _ = a @ w  # (16, 8) @ (8, 4): 2 * 16 * 4 * 8 flops
        assert prof.ops[("matmul", "forward")].flops == pytest.approx(2 * 16 * 4 * 8)

    def test_bytes_tracked(self):
        a, w = small_graph()
        with obs.profile() as prof:
            out = a @ w
        stat = prof.ops[("matmul", "forward")]
        assert stat.bytes == out.data.nbytes
        assert prof.peak_bytes == out.data.nbytes

    def test_timings_monotone_as_ops_accumulate(self):
        a, w = small_graph()
        with obs.profile() as prof:
            totals = []
            for _ in range(4):
                _ = (a @ w).sum()
                totals.append(prof.total_op_seconds)
        assert totals == sorted(totals)  # cumulative time never decreases
        assert prof.wall_seconds >= prof.total_op_seconds * 0.0  # wall recorded
        assert prof.wall_seconds > 0.0

    def test_grad_allocs_counted_while_active(self):
        a, w = small_graph()
        with obs.profile() as prof:
            loss = (a @ w).relu().mean()
            loss.backward()
        assert prof.grad_allocs > 0
        assert prof.grad_alloc_bytes > 0
        summary = prof.summary()
        assert summary["grad_allocs"] == prof.grad_allocs
        assert summary["grad_alloc_bytes"] == prof.grad_alloc_bytes
        assert "grad allocs" in prof.to_table()

    def test_grad_alloc_hook_restored_after_context(self):
        from repro.tensor.tensor import set_grad_alloc_hook

        with obs.profile():
            pass
        # outside the context the hook must be back to None
        assert set_grad_alloc_hook(None) is None

    def test_disabled_mode_records_nothing(self):
        a, w = small_graph()
        with obs.profile() as prof:
            _ = a @ w
        calls_inside = prof.total_calls
        loss = (a @ w).mean()
        loss.backward()  # outside the context: tracing is off
        assert prof.total_calls == calls_inside
        assert not obs.is_profiling()
        assert ops.set_op_trace(None) is None  # no hook left installed

    def test_nested_contexts_restore_outer(self):
        a, w = small_graph()
        with obs.profile() as outer:
            with obs.profile() as inner:
                _ = a @ w
            assert obs.current_profiler() is outer
            _ = a @ w
        assert inner.ops[("matmul", "forward")].calls == 1
        assert outer.ops[("matmul", "forward")].calls == 1

    def test_summary_and_table(self):
        a, w = small_graph()
        with obs.profile() as prof:
            (a @ w).mean().backward()
        summary = prof.summary()
        assert summary["ops"] and summary["total_op_calls"] == prof.total_calls
        table = prof.to_table(top_k=5)
        assert "matmul" in table and "backward" in table


class TestModuleSpans:
    def make_model(self):
        return Sequential(Linear(8, 16), ReLU(), Linear(16, 4))

    def test_spans_use_qualified_names(self):
        model = self.make_model()
        x = Tensor(np.zeros((4, 8)))
        with obs.profile(model=model) as prof:
            model(x)
        assert {"layers.0", "layers.1", "layers.2"} <= set(prof.spans)
        root = [name for name in prof.spans if "." not in name]
        assert root  # the model itself gets a span too

    def test_parent_span_contains_children(self):
        model = self.make_model()
        x = Tensor(np.zeros((64, 8)))
        with obs.profile(model=model) as prof:
            model(x)
        parent = prof.spans["Sequential"].seconds
        child_total = sum(prof.spans[f"layers.{i}"].seconds for i in range(3))
        assert parent >= child_total * 0.5  # inclusive timing, allow timer noise

    def test_hooks_removed_after_context(self):
        model = self.make_model()
        with obs.profile(model=model):
            pass
        for _, module in model.named_modules():
            assert not module._forward_hooks
            assert not module._forward_pre_hooks

    def test_named_modules_qualified(self):
        model = self.make_model()
        names = dict(model.named_modules())
        assert "" in names and "layers.1" in names
        assert isinstance(names["layers.1"], ReLU)


class TestForwardHooks:
    def test_pre_and_post_hooks_fire_in_order(self):
        calls = []
        layer = Linear(4, 4)
        layer.register_forward_pre_hook(lambda mod, args: calls.append("pre"))
        layer.register_forward_hook(lambda mod, args, out: calls.append("post"))
        layer(Tensor(np.zeros((2, 4))))
        assert calls == ["pre", "post"]

    def test_post_hook_can_replace_output(self):
        layer = Linear(4, 4)
        layer.register_forward_hook(lambda mod, args, out: out * 0.0)
        out = layer(Tensor(np.ones((2, 4))))
        np.testing.assert_array_equal(out.numpy(), 0.0)

    def test_remove_handle(self):
        calls = []
        layer = Linear(4, 4)
        handle = layer.register_forward_hook(lambda mod, args, out: calls.append(1))
        handle.remove()
        layer(Tensor(np.zeros((2, 4))))
        assert calls == []


class TestSinks:
    def test_list_sink_accumulates_and_filters(self):
        sink = obs.ListSink()
        sink.emit({"event": "epoch", "epoch": 0})
        sink.emit({"event": "batch", "batch": 1})
        assert len(sink) == 2
        assert sink.of_type("epoch") == [{"event": "epoch", "epoch": 0}]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events = [
            {"event": "train_begin", "lr": 1e-3},
            {"event": "epoch", "epoch": 0, "val_mae": 3.25},
        ]
        with obs.JsonlSink(path) as sink:
            for event in events:
                sink.emit(event)
        assert list(obs.read_jsonl(path)) == events

    def test_jsonl_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = obs.JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_tee_and_null(self):
        a, b = obs.ListSink(), obs.ListSink()
        tee = obs.TeeSink(a, b, obs.NullSink())
        tee.emit({"event": "x"})
        assert len(a) == 1 and len(b) == 1


class TestTrainerEvents:
    def make_trainer(self, tiny_dataset, sink):
        model = GRUForecaster(12, 12, hidden_size=8, predictor_hidden=32, seed=0)
        config = TrainerConfig(
            epochs=2, batch_size=16, max_batches_per_epoch=3, eval_batches=2, lr=6e-3, seed=0, sink=sink
        )
        return Trainer(model, tiny_dataset, WindowSpec(12, 12), config)

    def test_event_stream_schema(self, tiny_dataset):
        sink = obs.ListSink()
        self.make_trainer(tiny_dataset, sink).fit()
        kinds = [event["event"] for event in sink.events]
        assert kinds[0] == "train_begin" and kinds[-1] == "train_end"
        epochs = sink.of_type("epoch")
        assert len(epochs) == 2
        for event in epochs:
            assert {"epoch", "train_loss", "val_mae", "grad_norm", "lr", "seconds"} <= set(event)
            assert event["seconds"] > 0 and event["grad_norm"] >= 0
        batches = sink.of_type("batch")
        assert len(batches) == 6  # 2 epochs x 3 batches
        end = sink.of_type("train_end")[0]
        assert {"seconds_per_epoch", "seconds_per_epoch_warm", "best_epoch"} <= set(end)

    def test_events_jsonl_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "train.jsonl"
        with obs.JsonlSink(path) as sink:
            self.make_trainer(tiny_dataset, sink).fit()
        events = list(obs.read_jsonl(path))
        assert [e["event"] for e in events][0] == "train_begin"
        assert any(e["event"] == "epoch" for e in events)

    def test_no_sink_emits_nothing(self, tiny_dataset):
        trainer = self.make_trainer(tiny_dataset, None)
        assert isinstance(trainer.sink, obs.NullSink)
        history = trainer.fit()  # must run exactly as before
        assert history.epochs_run == 2


class TestWarmSeconds:
    def test_warm_skips_cold_first_epoch(self):
        history = TrainingHistory(epoch_seconds=[10.0, 1.0, 1.0])
        assert history.seconds_per_epoch == pytest.approx(4.0)
        assert history.seconds_per_epoch_warm == pytest.approx(1.0)

    def test_warm_falls_back_with_single_epoch(self):
        history = TrainingHistory(epoch_seconds=[2.0])
        assert history.seconds_per_epoch_warm == pytest.approx(2.0)

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.seconds_per_epoch == 0.0
        assert history.seconds_per_epoch_warm == 0.0


class TestProfileOverheadAndIntegration:
    def test_profile_records_training_step(self, tiny_dataset):
        model = GRUForecaster(12, 12, hidden_size=8, predictor_hidden=32, seed=0)
        config = TrainerConfig(epochs=1, batch_size=8, max_batches_per_epoch=1, eval_batches=1, seed=0)
        trainer = Trainer(model, tiny_dataset, WindowSpec(12, 12), config)
        with obs.profile(model=model) as prof:
            trainer.fit()
        assert prof.total_calls > 0
        assert any(phase == "backward" for (_, phase) in prof.ops)
        assert prof.spans  # module time attributed
