"""Trainer loop: convergence, early stopping, checkpoint restore, eval."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import make_wa
from repro.baselines import GRUForecaster
from repro.baselines.classical import PersistenceForecaster
from repro.data import WindowSpec
from repro.training import Trainer, TrainerConfig


SPEC = WindowSpec(12, 12)


def small_trainer(tiny_dataset, model=None, **config_overrides):
    config = dict(epochs=3, batch_size=16, max_batches_per_epoch=6, eval_batches=3, lr=6e-3, seed=0)
    config.update(config_overrides)
    if model is None:
        model = GRUForecaster(12, 12, hidden_size=8, predictor_hidden=32, seed=0)
    return Trainer(model, tiny_dataset, SPEC, TrainerConfig(**config))


class TestFit:
    def test_loss_decreases(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, epochs=6)
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_bookkeeping(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset)
        history = trainer.fit()
        assert history.epochs_run == 3
        assert len(history.val_mae) == 3
        assert len(history.epoch_seconds) == 3
        assert history.seconds_per_epoch > 0
        assert 0 <= history.best_epoch < 3

    def test_early_stopping_triggers(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, epochs=50, patience=2, lr=1e-12, min_delta=1e-3)
        history = trainer.fit()
        # lr ~ 0: no improvement after epoch 0 -> stop at patience
        assert history.stopped_early
        assert history.epochs_run < 50

    def test_best_weights_restored(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, epochs=4)
        history = trainer.fit()
        restored = trainer.evaluate("val", max_batches=3)["mae"]
        np.testing.assert_allclose(restored, min(history.val_mae), rtol=0.2)

    def test_st_wa_trains_through_trainer(self, tiny_dataset):
        model = make_wa(tiny_dataset.num_sensors, model_dim=8, skip_dim=8, predictor_hidden=16, seed=0)
        trainer = small_trainer(tiny_dataset, model=model)
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]

    def test_deterministic_given_seed(self, tiny_dataset):
        a = small_trainer(tiny_dataset).fit().train_loss
        b = small_trainer(tiny_dataset).fit().train_loss
        np.testing.assert_allclose(a, b)


class TestEvaluate:
    def test_unknown_split_raises(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset)
        with pytest.raises(KeyError):
            trainer.evaluate("holdout")

    def test_metrics_in_raw_units(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset)
        metrics = trainer.evaluate("test", max_batches=3)
        # raw traffic flows are O(100); scaled units would give MAE < 5
        assert metrics["mae"] > 5.0

    def test_eval_does_not_touch_parameters(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset)
        before = trainer.model.state_dict()
        trainer.evaluate("val", max_batches=2)
        after = trainer.model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_predict_returns_raw_units(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset)
        x = tiny_dataset.test[:, :24][None]  # (1, N, 24, 1) -> slice history
        prediction = trainer.predict(x[:, :, :12])
        assert prediction.shape == (1, tiny_dataset.num_sensors, 12, 1)
        assert prediction.mean() > 1.0  # raw scale


class DropoutForecaster(nn.Module):
    """Persistence behind an aggressive dropout: nondeterministic in train
    mode, so any eval path that forgets ``model.eval()`` is caught red-handed."""

    def __init__(self):
        super().__init__()
        self.dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        self.inner = PersistenceForecaster(12, 12)

    def forward(self, x):
        return self.inner(self.dropout(x))


class TestEvalMode:
    def test_predict_is_deterministic_with_dropout(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, model=DropoutForecaster())
        trainer.model.train()  # as fit() leaves it
        x = tiny_dataset.test[:, :12][None]
        first = trainer.predict(x)
        second = trainer.predict(x)
        np.testing.assert_array_equal(first, second)

    def test_predict_has_dropout_disabled(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, model=DropoutForecaster())
        trainer.model.train()
        x = tiny_dataset.test[:, :12][None]
        prediction = trainer.predict(x)
        # with dropout truly off, the model is exact persistence in raw units
        expected = np.repeat(tiny_dataset.test_raw[:, 11:12][None], 12, axis=2)
        np.testing.assert_allclose(prediction, expected)

    def test_evaluate_restores_training_mode(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, model=DropoutForecaster())
        trainer.model.train()
        trainer.evaluate("val", max_batches=1)
        assert trainer.model.training
        assert trainer.model.dropout.training

    def test_evaluate_preserves_eval_mode(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, model=DropoutForecaster())
        trainer.model.eval()
        trainer.evaluate("val", max_batches=1)
        assert not trainer.model.training

    def test_predict_restores_training_mode(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, model=DropoutForecaster())
        trainer.model.train()
        trainer.predict(tiny_dataset.test[:, :12][None])
        assert trainer.model.training
