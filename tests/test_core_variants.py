"""Variant factories and window-size stacking logic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    STWAConfig,
    default_window_sizes,
    make_deterministic_st_wa,
    make_mean_aggregator_st_wa,
    make_s_wa,
    make_st_wa,
    make_wa,
    make_wa1,
)


class TestFactoryFlags:
    def test_st_wa_is_fully_aware(self):
        model = make_st_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert model.latent.mode == "st"
        assert not model.latent.deterministic

    def test_s_wa_is_spatial_only(self):
        model = make_s_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert model.latent.mode == "spatial"
        assert model.latent.temporal is None

    def test_wa_is_agnostic(self):
        model = make_wa(4, model_dim=8, skip_dim=8, predictor_hidden=16)
        assert model.latent is None
        assert model.layers[0].static_key is not None

    def test_wa1_single_layer(self):
        model = make_wa1(4, model_dim=8, skip_dim=8, predictor_hidden=16)
        assert len(model.layers) == 1

    def test_deterministic_flags(self):
        model = make_deterministic_st_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert model.latent.deterministic
        assert model.config.kl_weight == 0.0

    def test_mean_aggregator(self):
        model = make_mean_aggregator_st_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert model.layers[0].aggregator.mode == "mean"

    def test_generated_layers_have_no_static_projections(self):
        model = make_st_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert model.layers[0].static_key is None

    def test_custom_window_sizes_accepted(self):
        model = make_st_wa(4, history=12, window_sizes=(6, 2), model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)
        assert len(model.layers) == 2


class TestDefaultWindowSizes:
    def test_paper_defaults(self):
        assert default_window_sizes(12) == (3, 2, 2)
        assert default_window_sizes(72) == (6, 6, 2)

    @pytest.mark.parametrize("history", [12, 24, 36, 48, 60, 72, 96, 120, 144])
    def test_sizes_always_divide(self, history):
        sizes = default_window_sizes(history)
        remaining = history
        for size in sizes:
            assert remaining % size == 0
            remaining //= size
        assert remaining >= 1

    @given(st.integers(2, 200))
    @settings(max_examples=60, deadline=None)
    def test_sizes_valid_for_any_history(self, history):
        sizes = default_window_sizes(history)
        assert len(sizes) >= 1
        config = STWAConfig(num_sensors=2, history=history, window_sizes=sizes)
        lengths = config.layer_lengths()  # must not raise
        assert lengths[0] == history

    def test_prime_history_falls_back_to_single_window(self):
        sizes = default_window_sizes(13)
        assert sizes == (13,)
