"""Compiled execution backend (repro.compile): trace once, replay many.

Four invariants, mirroring DESIGN.md "Compiled execution":

* **Equivalence** — a compiled trajectory (losses, gradients, predictions)
  matches the interpreted :class:`repro.exec.SerialExecutor` to 1e-9
  relative tolerance over multiple optimizer steps, for deterministic and
  stochastic (latent-sampling) ST-WA variants alike.
* **Plan cache** — one trace per (shape, dtype, mode) signature; repeats
  replay, new shapes re-trace, the LRU bound evicts, and signatures that
  cannot compile are pinned dead so they never pay capture twice.
* **Guarded fallback** — unsupported ops, non-finite targets,
  ``detect_anomaly``, and an installed op-trace hook all serve through the
  interpreted path while keeping the ordinary Executor contract.
* **Adjoint correctness** — the precomputed tape-free adjoint program is
  gradient-checked against central finite differences per fused-chain
  pattern (elementwise, linear, softmax, reductions, views, fancy
  indexing, matmul).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import CompiledExecutor, PlanCache
from repro.core import make_deterministic_st_wa, make_st_wa
from repro.data import WindowSpec
from repro.data.scalers import StandardScaler
from repro.data.windows import BatchIterator, SlidingWindowDataset
from repro.exec import ExecutorSpec, SerialExecutor
from repro.nn import Module, Parameter
from repro.obs import ListSink
from repro.optim import Adam, clip_grad_norm
from repro.serve import ForecasterArtifact, ServeConfig, ServingEngine
from repro.tensor import Tensor, ops
from repro.tensor.gradcheck import numerical_gradient
from repro.training import Trainer, TrainerConfig

SPEC = WindowSpec(12, 12)
RTOL = 1e-9
ATOL = 1e-12


def small_model(num_sensors: int, seed: int = 0, *, stochastic: bool = False):
    factory = make_st_wa if stochastic else make_deterministic_st_wa
    return factory(num_sensors, model_dim=8, skip_dim=8, predictor_hidden=16, seed=seed)


def seeded_batches(dataset, count: int, batch_size: int = 8):
    windows = SlidingWindowDataset(dataset.train, SPEC, raw=dataset.train_raw)
    iterator = iter(BatchIterator(windows, batch_size=batch_size, shuffle=False))
    out = []
    for _ in range(count):
        x, y_raw = next(iterator)
        out.append((x, dataset.scaler.transform(y_raw)))
    return out


def assert_step_matches(serial_result, compiled_result):
    np.testing.assert_allclose(compiled_result.loss, serial_result.loss, rtol=RTOL, atol=ATOL)
    assert len(compiled_result.grads) == len(serial_result.grads)
    for left, right in zip(serial_result.grads, compiled_result.grads):
        assert (left is None) == (right is None)
        if left is not None:
            np.testing.assert_allclose(right, left, rtol=RTOL, atol=ATOL)


# --------------------------------------------------------------------- #
# equivalence vs the interpreted executor
# --------------------------------------------------------------------- #
class TestEquivalence:
    @pytest.mark.parametrize("stochastic", [False, True], ids=["deterministic", "stochastic"])
    def test_multi_step_trajectory_matches_serial(self, tiny_dataset, stochastic):
        """Five full optimizer steps: losses and gradients stay in lockstep.

        The stochastic variant exercises the host-input regeneration path:
        replay must draw the latent noise from the module RNGs exactly as
        the interpreted step would, or the trajectories diverge by step 2.
        """
        serial_model = small_model(tiny_dataset.num_sensors, seed=1, stochastic=stochastic)
        compiled_model = small_model(tiny_dataset.num_sensors, seed=1, stochastic=stochastic)
        serial = SerialExecutor(serial_model, kl_weight=0.1).open()
        compiled = CompiledExecutor(compiled_model, kl_weight=0.1).open()
        serial_opt = Adam(serial_model.parameters(), lr=1e-3)
        compiled_opt = Adam(compiled_model.parameters(), lr=1e-3)
        try:
            for x, y in seeded_batches(tiny_dataset, 5):
                assert_step_matches(
                    serial.train_step(None, (x, y)), compiled.train_step(None, (x, y))
                )
                for model, opt in ((serial_model, serial_opt), (compiled_model, compiled_opt)):
                    clip_grad_norm(model.parameters(), 5.0)
                    opt.step()
        finally:
            serial.close()
            compiled.close()
        assert compiled.stats["traces"] == 1
        assert compiled.stats["replays"] >= 5  # validation replay + 4 steady-state
        assert compiled.stats["fallback_steps"] == 0

    def test_predictions_match_interpreted(self, tiny_dataset):
        x, _ = seeded_batches(tiny_dataset, 1)[0]
        serial_model = small_model(tiny_dataset.num_sensors)
        compiled_model = small_model(tiny_dataset.num_sensors)
        with SerialExecutor(serial_model) as serial, CompiledExecutor(compiled_model) as compiled:
            expected = serial.predict(None, x)
            np.testing.assert_allclose(compiled.predict(None, x), expected, rtol=RTOL, atol=ATOL)
            # second call replays the cached predict plan, same result
            np.testing.assert_allclose(compiled.predict(None, x), expected, rtol=RTOL, atol=ATOL)
        assert compiled.predict_plans.stats["hits"] == 1

    def test_trainer_fit_compiled_matches_serial(self, tiny_dataset):
        histories = {}
        for kind in ("serial", "compiled"):
            config = TrainerConfig(
                lr=1e-3,
                epochs=2,
                batch_size=8,
                patience=100,
                max_batches_per_epoch=3,
                eval_batches=2,
                seed=5,
                executor=ExecutorSpec(kind=kind),
            )
            model = small_model(tiny_dataset.num_sensors, seed=3)
            histories[kind] = Trainer(model, tiny_dataset, SPEC, config).fit()
        np.testing.assert_allclose(
            histories["compiled"].train_loss, histories["serial"].train_loss, rtol=RTOL
        )
        np.testing.assert_allclose(
            histories["compiled"].val_mae, histories["serial"].val_mae, rtol=RTOL
        )


# --------------------------------------------------------------------- #
# the plan cache: hit, miss, re-trace, eviction, dead pinning
# --------------------------------------------------------------------- #
class TestPlanCache:
    def test_same_signature_replays_new_signature_retraces(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        (x, y), = seeded_batches(tiny_dataset, 1)
        with CompiledExecutor(model) as executor:
            executor.train_step(None, (x, y))
            assert executor.stats["traces"] == 1
            executor.train_step(None, (x, y))
            assert executor.stats["traces"] == 1  # cache hit: replay, no capture
            executor.train_step(None, (x[:4], y[:4]))  # new batch shape
            assert executor.stats["traces"] == 2
            stats = executor.train_plans.stats
            assert stats["size"] == 2 and stats["hits"] == 1 and stats["misses"] == 2

    def test_capacity_bound_evicts_and_forces_retrace(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        (x, y), = seeded_batches(tiny_dataset, 1)
        with CompiledExecutor(model, plan_capacity=1) as executor:
            executor.train_step(None, (x, y))
            executor.train_step(None, (x[:4], y[:4]))  # evicts the bs=8 plan
            executor.train_step(None, (x, y))  # must re-trace
        assert executor.stats["traces"] == 3
        assert executor.train_plans.stats["evictions"] == 2

    def test_cache_unit_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put_live("a", object())
        cache.put_live("b", object())
        assert cache.get("a") is not None  # refresh: "b" becomes the LRU victim
        cache.put_live("c", object())
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.get("b") is None and cache.stats["misses"] == 1

    def test_cache_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)


# --------------------------------------------------------------------- #
# guarded fallback: the interpreted path stays reachable
# --------------------------------------------------------------------- #
class _UnsupportedBlock(Module):
    """A layer that declares itself untraceable, like BatchNorm's running
    statistics update or DCRNN's teacher-forcing coin flip."""

    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.linspace(0.5, 1.5, 4))

    def forward(self, x):
        ops.notify_compile_unsupported("test: data-dependent branch")
        return (x * self.weight).tanh()


class TestFallback:
    def _batch(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((6, 4))
        return x, np.zeros((6, 4))

    def test_unsupported_op_pins_signature_dead(self):
        x, y = self._batch()
        with CompiledExecutor(_UnsupportedBlock()) as executor:
            first = executor.train_step(None, (x, y))
            second = executor.train_step(None, (x, y))
        assert np.isfinite(first.loss) and first.grads[0] is not None
        assert_step_matches(first, second)
        # one capture attempt, then the dead entry short-circuits to serial
        assert executor.stats["traces"] == 1 and executor.stats["replays"] == 0
        assert executor.stats["fallback_steps"] == 2
        reasons = executor.stats["fallback_reasons"]
        assert any(key.startswith("unsupported:") for key in reasons)
        assert any(key.startswith("dead_plan:") for key in reasons)

    def test_nonfinite_target_uses_interpreted_masked_loss(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        (x, y), = seeded_batches(tiny_dataset, 1)
        y = y.copy()
        y[0, 0, 0, 0] = np.nan
        with CompiledExecutor(model) as executor:
            result = executor.train_step(None, (x, y))
        assert np.isfinite(result.loss)
        assert executor.stats["traces"] == 0
        assert executor.stats["fallback_reasons"] == {"nonfinite_target": 1}

    def test_detect_anomaly_forces_interpreted(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        (x, y), = seeded_batches(tiny_dataset, 1)
        with CompiledExecutor(model, detect_anomaly=True) as executor:
            result = executor.train_step(None, (x, y))
        assert np.isfinite(result.loss)
        assert executor.stats["traces"] == 0
        assert executor.stats["fallback_reasons"] == {"detect_anomaly": 1}

    def test_op_trace_hook_forces_interpreted_then_replay_resumes(self, tiny_dataset):
        """Profiling still sees real ops: a hooked step detours to serial."""
        model = small_model(tiny_dataset.num_sensors)
        (x, y), = seeded_batches(tiny_dataset, 1)
        traced_ops = []
        with CompiledExecutor(model) as executor:
            executor.train_step(None, (x, y))  # trace + validate
            replays = executor.stats["replays"]
            ops.set_op_trace(lambda name, *rest: traced_ops.append(name))
            try:
                hooked = executor.train_step(None, (x, y))
            finally:
                ops.set_op_trace(None)
            assert np.isfinite(hooked.loss)
            assert traced_ops  # the interpreted step fed the profiler hook
            assert executor.stats["replays"] == replays  # plan was bypassed
            assert executor.stats["fallback_reasons"]["op_trace_hook"] == 1
            executor.train_step(None, (x, y))  # hook gone: replay resumes
            assert executor.stats["replays"] == replays + 1


# --------------------------------------------------------------------- #
# adjoint correctness: compiled gradients vs finite differences
# --------------------------------------------------------------------- #
def _elementwise_chain():
    rng = np.random.default_rng(1)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((3, 4)) * 0.5)

        def forward(self, x):
            return ((x * self.w).tanh() + self.w.sigmoid()) * 0.5 + (x * 0.1).exp() * 0.2

    return M(), rng.standard_normal((3, 4))


def _linear_chain():
    rng = np.random.default_rng(2)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((4, 5)) * 0.5)
            self.b = Parameter(rng.standard_normal(5) * 0.1)

        def forward(self, x):
            return ops.linear(x, self.w, self.b).tanh()

    return M(), rng.standard_normal((2, 3, 4))


def _softmax_chain():
    rng = np.random.default_rng(3)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((3, 4)) * 0.5)

        def forward(self, x):
            return ops.softmax(x * self.w, axis=-1) + ops.log_softmax(x + self.w, axis=0) * 0.1

    return M(), rng.standard_normal((3, 4))


def _reduction_chain():
    rng = np.random.default_rng(4)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((3, 4)) * 0.5)

        def forward(self, x):
            scaled = x * self.w
            return scaled.sum(axis=0) + scaled.mean(axis=0) + scaled.sum() * 0.01

    return M(), rng.standard_normal((3, 4))


def _view_chain():
    rng = np.random.default_rng(5)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((3, 4)) * 0.5)

        def forward(self, x):
            swapped = (x * self.w).swapaxes(0, 1)  # (4, 3)
            stacked = ops.stack([swapped, swapped * 2.0], axis=0)  # (2, 4, 3)
            flat = stacked.reshape(8, 3)
            return ops.concat([flat, flat * 0.5], axis=0)  # (16, 3)

    return M(), rng.standard_normal((3, 4))


def _fancy_index_chain():
    rng = np.random.default_rng(6)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((3, 4)) * 0.5)

        def forward(self, x):
            unique = ops.getitem(x * self.w, np.array([2, 0, 1]))  # unique-lane scatter
            dupes = ops.getitem(x * self.w, np.array([1, 1, 2]))  # np.add.at path
            return unique + dupes * 0.5

    return M(), rng.standard_normal((3, 4))


def _matmul_chain():
    rng = np.random.default_rng(7)

    class M(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(rng.standard_normal((4, 5)) * 0.5)

        def forward(self, x):
            projected = x @ self.w  # batched-a, 2D-b adjoint
            return projected @ projected.swapaxes(-1, -2) * 0.1  # batched-b adjoint

    return M(), rng.standard_normal((2, 3, 4))


FUSED_CHAIN_PATTERNS = [
    _elementwise_chain,
    _linear_chain,
    _softmax_chain,
    _reduction_chain,
    _view_chain,
    _fancy_index_chain,
    _matmul_chain,
]


class TestCompiledGradcheck:
    @pytest.mark.parametrize(
        "pattern", FUSED_CHAIN_PATTERNS, ids=lambda p: p.__name__.strip("_")
    )
    def test_replayed_adjoints_match_finite_differences(self, pattern):
        """The tape-free adjoint program is checked against central FD.

        The target offsets the initial prediction by 0.3 so every Huber
        residual sits in the smooth quadratic region, well away from both
        the |r| = delta kink and zero.
        """
        model, x = pattern()
        y = model(Tensor(x)).numpy() - 0.3
        with CompiledExecutor(model, kl_weight=0.0) as executor:
            executor.train_step(None, (x, y))
            replayed = executor.train_step(None, (x, y))  # steady-state replay
        assert executor.stats["traces"] == 1 and executor.stats["fallback_steps"] == 0
        assert executor.stats["replays"] >= 2
        params = list(model.parameters())
        loss_fn = executor.loss_fn
        target = Tensor(y)

        def func(*_):
            return loss_fn(model(Tensor(x)), target)

        for i, (parameter, grad) in enumerate(zip(params, replayed.grads)):
            numeric = numerical_gradient(func, params, i)
            np.testing.assert_allclose(
                grad,
                numeric,
                rtol=1e-4,
                atol=1e-6,
                err_msg=f"compiled adjoint mismatch for parameter {i} ({parameter.name})",
            )


# --------------------------------------------------------------------- #
# serving integration
# --------------------------------------------------------------------- #
def _gru_artifact():
    from repro.baselines import GRUForecaster

    rng = np.random.default_rng(11)
    raw = 100.0 + 20.0 * rng.standard_normal((4, 200, 1))
    scaler = StandardScaler().fit(raw)
    model = GRUForecaster(12, 12, hidden_size=4, predictor_hidden=8, seed=0)
    artifact = ForecasterArtifact(
        model, scaler=scaler, model_name="gru", history=12, horizon=12
    )
    window = 100.0 + 20.0 * rng.standard_normal((4, 12, 1))
    return artifact, window


class TestServing:
    def test_compiled_engine_matches_inference_and_stamps_kind(self):
        artifact, window = _gru_artifact()
        sink = ListSink()
        with ServingEngine(artifact, num_sensors=4) as engine:
            expected = engine.forecast(window)
        config = ServeConfig(executor=ExecutorSpec.compiled(), sink=sink)
        with ServingEngine(artifact, num_sensors=4, config=config) as engine:
            result = engine.forecast(window)
            snapshot = engine.snapshot()
            slo = engine.slo_report(p95_ms=10_000.0)
        assert result.source == "model"
        np.testing.assert_allclose(result.forecast, expected.forecast, rtol=RTOL, atol=1e-9)
        assert snapshot["executor_kind"] == "compiled"
        assert slo["executor_kind"] == "compiled"
        request_events = [e for e in sink.events if e.get("event") == "request"]
        assert request_events and all(
            e["executor_kind"] == "compiled" for e in request_events
        )
        slo_events = [e for e in sink.events if e.get("event") == "slo_report"]
        assert slo_events and slo_events[0]["executor_kind"] == "compiled"

    def test_serve_config_rejects_training_spec(self):
        artifact, _ = _gru_artifact()
        with pytest.raises(ValueError, match="inference, compiled, or sharded"):
            ServingEngine(
                artifact,
                num_sensors=4,
                config=ServeConfig(executor=ExecutorSpec.serial()),
            )
