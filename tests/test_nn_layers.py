"""Linear, MLP, LayerNorm, BatchNorm, Dropout, initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestLinear:
    def test_output_shape_arbitrary_leading_dims(self, rng):
        layer = nn.Linear(4, 7, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 5, 4)))).shape == (2, 3, 5, 7)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        assert layer.num_parameters() == 28

    def test_gradients_input_and_weights(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x])
        check_gradients(lambda w: layer(x.detach()), [layer.weight])
        check_gradients(lambda b: layer(x.detach()), [layer.bias])

    def test_matches_numpy(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.standard_normal((5, 3))
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)


class TestMLP:
    def test_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([4], rng=rng)

    def test_unknown_activation_raises(self, rng):
        with pytest.raises(ValueError, match="activation"):
            nn.MLP([4, 2], activation="nope", rng=rng)
        with pytest.raises(ValueError, match="final"):
            nn.MLP([4, 2], final_activation="nope", rng=rng)

    def test_depth_and_shapes(self, rng):
        mlp = nn.MLP([4, 8, 8, 2], rng=rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(rng.standard_normal((6, 4)))).shape == (6, 2)

    def test_final_activation_applied(self, rng):
        mlp = nn.MLP([4, 8, 2], final_activation="sigmoid", rng=rng)
        out = mlp(Tensor(rng.standard_normal((6, 4)))).numpy()
        assert np.all((out > 0) & (out < 1))

    def test_gradients(self, rng):
        mlp = nn.MLP([3, 5, 2], activation="tanh", rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda x_: mlp(x_), [x])


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(rng.standard_normal((4, 8)) * 5 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_affine_parameters_used(self, rng):
        layer = nn.LayerNorm(4)
        layer.gamma.data[:] = 2.0
        layer.beta.data[:] = 1.0
        out = layer(Tensor(rng.standard_normal((3, 4)))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-9)

    def test_gradients(self, rng):
        layer = nn.LayerNorm(5)
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x])


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = nn.BatchNorm1d(4)
        out = layer(Tensor(rng.standard_normal((64, 4)) * 3 + 2)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_eval_uses_running_stats(self, rng):
        layer = nn.BatchNorm1d(4)
        for _ in range(50):
            layer(Tensor(rng.standard_normal((32, 4)) * 3 + 2))
        layer.eval()
        out = layer(Tensor(np.full((2, 4), 2.0))).numpy()
        np.testing.assert_allclose(out, 0.0, atol=0.5)


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_identity_in_eval_mode(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.standard_normal((10, 10))
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_zero_probability_is_identity(self, rng):
        layer = nn.Dropout(0.0, rng=rng)
        x = rng.standard_normal((10, 10))
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_expected_value_preserved(self):
        layer = nn.Dropout(0.4, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(), 1.0, atol=0.02)

    def test_mask_applied_to_gradient(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        np.testing.assert_array_equal((x.grad != 0), (out.numpy() != 0))


class TestActivationsModules:
    @pytest.mark.parametrize("layer_cls", [nn.ReLU, nn.Tanh, nn.Sigmoid])
    def test_shapes(self, layer_cls, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        assert layer_cls()(x).shape == (3, 4)

    def test_leaky_relu_negative_slope(self):
        out = nn.LeakyReLU(0.1)(Tensor(np.array([-10.0, 10.0]))).numpy()
        np.testing.assert_allclose(out, [-1.0, 10.0])


class TestInitializers:
    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        np.testing.assert_allclose(w.std(), np.sqrt(2.0 / 800), rtol=0.1)

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((100, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), np.zeros((3, 4)))

    def test_3d_fans(self, rng):
        w = init.xavier_uniform((2, 10, 20), rng)
        assert w.shape == (2, 10, 20)
