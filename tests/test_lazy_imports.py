"""`import repro` must not drag in the serving/multiprocessing planes.

``repro.serve``, ``repro.parallel``, and ``repro.harness`` resolve lazily
via PEP 562 module ``__getattr__``; a bare ``import repro`` (the common
case for training-only users) should never pay for them.  Checked in a
subprocess so this test is immune to whatever the rest of the suite has
already imported.
"""

from __future__ import annotations

import subprocess
import sys

CHECK = """
import sys
import repro
lazy = [m for m in ("repro.serve", "repro.parallel", "repro.harness") if m in sys.modules]
assert not lazy, f"eagerly imported: {lazy}"
assert "repro.exec" in sys.modules  # the Executor seam is core, eager
repro.serve  # attribute access triggers the import
assert "repro.serve" in sys.modules
print("ok")
"""


def test_import_repro_is_lazy_about_serve_and_parallel():
    result = subprocess.run(
        [sys.executable, "-c", CHECK], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"


def test_dir_lists_lazy_subpackages():
    import repro

    listing = dir(repro)
    for name in ("serve", "parallel", "harness", "exec"):
        assert name in listing
