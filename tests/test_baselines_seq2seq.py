"""DCRNN seq2seq decoder with scheduled sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DCRNNSeq2Seq
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, no_grad


@pytest.fixture
def model(tiny_dataset):
    return DCRNNSeq2Seq(tiny_dataset.num_sensors, tiny_dataset.adjacency, 12, 6, hidden_size=8, seed=0)


@pytest.fixture
def batch(tiny_dataset, rng):
    n = tiny_dataset.num_sensors
    return (
        Tensor(rng.standard_normal((2, n, 12, 1))),
        Tensor(rng.standard_normal((2, n, 6, 1))),
    )


class TestDCRNNSeq2Seq:
    def test_output_shape(self, model, batch):
        x, _ = batch
        with no_grad():
            assert model(x).shape == (2, x.shape[1], 6, 1)

    def test_autoregressive_feedback(self, model, batch):
        """Without teacher forcing, the decoder consumes its own outputs:
        perturbing the encoder input changes every horizon step."""
        x, _ = batch
        with no_grad():
            base = model(x).numpy()
            perturbed = Tensor(x.numpy() + 1.0)
            moved = model(perturbed).numpy()
        assert not np.allclose(base[:, :, -1], moved[:, :, -1])

    def test_teacher_forcing_changes_rollout(self, model, batch):
        x, y = batch
        model.train()
        free = model(x, targets=y, teacher_forcing=0.0).numpy()
        model._rng = np.random.default_rng(0)
        forced = model(x, targets=y, teacher_forcing=1.0).numpy()
        # the first step is identical (same GO input); later steps differ
        np.testing.assert_allclose(free[:, :, 0], forced[:, :, 0], atol=1e-12)
        assert not np.allclose(free[:, :, -1], forced[:, :, -1])

    def test_teacher_forcing_inactive_in_eval(self, model, batch):
        x, y = batch
        model.eval()
        with no_grad():
            a = model(x, targets=y, teacher_forcing=1.0).numpy()
            b = model(x).numpy()
        np.testing.assert_allclose(a, b)

    def test_trains(self, model, batch):
        x, y = batch
        optimizer = Adam(model.parameters(), lr=5e-3)
        losses = []
        for step in range(6):
            optimizer.zero_grad()
            prediction = model(x, targets=y, teacher_forcing=0.5)
            loss = F.huber_loss(prediction, y)
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        assert losses[-1] < losses[0]
