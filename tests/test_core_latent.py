"""Stochastic latent variables Θ = z + z_t (paper Eq. 4-7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latent import SpatialLatent, STLatent, TemporalLatentEncoder
from repro.tensor import Tensor


class TestSpatialLatent:
    def test_sample_shape(self, rng):
        latent = SpatialLatent(6, 4, rng=rng)
        assert latent.sample().shape == (6, 4)

    def test_training_samples_are_stochastic(self, rng):
        latent = SpatialLatent(6, 4, rng=rng)
        latent.train()
        a, b = latent.sample().numpy(), latent.sample().numpy()
        assert not np.allclose(a, b)

    def test_eval_returns_mean(self, rng):
        latent = SpatialLatent(6, 4, rng=rng)
        latent.eval()
        np.testing.assert_array_equal(latent.sample().numpy(), latent.mu.numpy())

    def test_deterministic_flag_returns_mean(self, rng):
        latent = SpatialLatent(6, 4, deterministic=True, rng=rng)
        latent.train()
        np.testing.assert_array_equal(latent.sample().numpy(), latent.mu.numpy())

    def test_each_sensor_has_own_latent(self, rng):
        """Spatial-awareness: per-sensor parameters (Eq. 5)."""
        latent = SpatialLatent(6, 4, rng=rng)
        mu = latent.mu.numpy()
        assert not np.allclose(mu[0], mu[1])

    def test_parameters_are_learnable(self, rng):
        latent = SpatialLatent(3, 4, rng=rng)
        latent.eval()
        latent.sample().sum().backward()
        assert latent.mu.grad is not None


class TestTemporalLatentEncoder:
    def test_distribution_shapes(self, rng):
        encoder = TemporalLatentEncoder(history=12, in_features=1, latent_dim=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 12, 1)))
        mu, log_var = encoder.distribution(x)
        assert mu.shape == (2, 5, 8) and log_var.shape == (2, 5, 8)

    def test_log_var_clipped(self, rng):
        encoder = TemporalLatentEncoder(history=4, in_features=1, latent_dim=3, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 4, 1)) * 1000)
        _, log_var = encoder.distribution(x)
        assert log_var.numpy().max() <= 4.0 and log_var.numpy().min() >= -8.0

    def test_depends_on_input(self, rng):
        """Temporal-awareness: different histories -> different z_t (Eq. 6)."""
        encoder = TemporalLatentEncoder(history=6, in_features=1, latent_dim=4, rng=rng)
        encoder.eval()
        a = encoder.sample(Tensor(rng.standard_normal((1, 3, 6, 1)))).numpy()
        b = encoder.sample(Tensor(rng.standard_normal((1, 3, 6, 1)))).numpy()
        assert not np.allclose(a, b)

    def test_eval_mode_deterministic(self, rng):
        encoder = TemporalLatentEncoder(history=6, in_features=1, latent_dim=4, rng=rng)
        encoder.eval()
        x = Tensor(rng.standard_normal((1, 3, 6, 1)))
        np.testing.assert_array_equal(encoder.sample(x).numpy(), encoder.sample(x).numpy())


class TestSTLatent:
    def test_invalid_mode_raises(self, rng):
        with pytest.raises(ValueError):
            STLatent(4, 6, 1, 3, mode="bogus", rng=rng)

    @pytest.mark.parametrize("mode,expected_shape", [("st", (2, 4, 3)), ("temporal", (2, 4, 3)), ("spatial", (4, 3))])
    def test_theta_shapes(self, mode, expected_shape, rng):
        latent = STLatent(4, 6, 1, 3, mode=mode, rng=rng)
        theta = latent(Tensor(rng.standard_normal((2, 4, 6, 1))))
        assert theta.shape == expected_shape

    def test_st_mode_has_both_branches(self, rng):
        latent = STLatent(4, 6, 1, 3, mode="st", rng=rng)
        assert latent.spatial is not None and latent.temporal is not None

    def test_kl_positive_and_differentiable(self, rng):
        latent = STLatent(4, 6, 1, 3, mode="st", rng=rng)
        latent(Tensor(rng.standard_normal((2, 4, 6, 1))))
        kl = latent.kl_divergence()
        assert kl is not None and kl.item() > 0
        kl.backward()
        assert latent.spatial.mu.grad is not None

    def test_deterministic_mode_has_no_kl(self, rng):
        latent = STLatent(4, 6, 1, 3, mode="st", deterministic=True, rng=rng)
        latent(Tensor(rng.standard_normal((2, 4, 6, 1))))
        assert latent.kl_divergence() is None

    def test_theta_is_sum_of_components_in_eval(self, rng):
        """Eq. 4: Θ = z + z_t (means in eval mode)."""
        latent = STLatent(4, 6, 1, 3, mode="st", rng=rng)
        latent.eval()
        x = Tensor(rng.standard_normal((2, 4, 6, 1)))
        theta = latent(x).numpy()
        z = latent.spatial.mu.numpy()
        z_t = latent.temporal.sample(x).numpy()
        np.testing.assert_allclose(theta, z + z_t, atol=1e-12)

    def test_kl_shrinks_under_optimization(self, rng):
        """Minimizing KL alone should pull the posterior towards N(0, I)."""
        from repro.optim import Adam

        latent = STLatent(4, 6, 1, 3, mode="st", rng=rng)
        optimizer = Adam(latent.parameters(), lr=0.05)
        x = Tensor(rng.standard_normal((2, 4, 6, 1)))
        latent(x)
        initial = latent.kl_divergence().item()
        for _ in range(60):
            optimizer.zero_grad()
            latent(x)
            latent.kl_divergence().backward()
            optimizer.step()
        latent(x)
        assert latent.kl_divergence().item() < initial
