"""Autograd engine mechanics: tape construction, backward, no_grad."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, ops, unbroadcast
from repro.tensor.tensor import is_grad_enabled


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        a = Tensor(3.0, requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, 6.0)

    def test_nonscalar_backward_requires_grad_argument(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a * 2.0
        with pytest.raises(RuntimeError, match="non-scalar"):
            out.backward()
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor(2.0, requires_grad=True)
        (a * 3.0).backward()
        (a * 3.0).backward()
        np.testing.assert_allclose(a.grad, 6.0)

    def test_zero_grad(self):
        a = Tensor(2.0, requires_grad=True)
        (a * 3.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = a*a + a*a — two paths through the same leaf
        a = Tensor(3.0, requires_grad=True)
        b = a * a
        (b + b).backward()
        np.testing.assert_allclose(a.grad, 12.0)

    def test_reused_subexpression(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3.0
        out = b * b + b
        out.backward()
        # d/da (9a^2 + 3a) = 18a + 3 = 39
        np.testing.assert_allclose(a.grad, 39.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(1.0, requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 0.0
        out.backward()
        np.testing.assert_allclose(a.grad, 1.0)

    def test_intermediate_gradients_freed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        c = b.sum()
        c.backward()
        assert b.grad is None  # freed after propagation
        assert a.grad is not None

    def test_constants_do_not_collect_gradients(self):
        a = Tensor(np.ones(3), requires_grad=True)
        const = Tensor(np.ones(3))
        (a * const).sum().backward()
        assert const.grad is None


class TestNoGrad:
    def test_no_grad_blocks_graph_construction(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestUnbroadcast:
    @pytest.mark.parametrize(
        "grad_shape,target",
        [((4, 3), (3,)), ((4, 3), (1, 3)), ((2, 4, 3), (4, 3)), ((2, 4, 3), (1, 1)), ((5,), ())],
    )
    def test_shapes(self, grad_shape, target):
        grad = np.ones(grad_shape)
        out = unbroadcast(grad, target)
        assert out.shape == tuple(target)
        np.testing.assert_allclose(out.sum(), grad.sum())

    def test_identity_when_shapes_match(self):
        grad = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(unbroadcast(grad, (2, 3)), grad)


class TestTensorProtocol:
    def test_detach_shares_data(self):
        a = Tensor(np.ones(3), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert a.data[0] == 5.0  # shared

    def test_copy_is_independent(self):
        a = Tensor(np.ones(3), requires_grad=True)
        c = a.copy()
        c.data[0] = 5.0
        assert a.data[0] == 1.0

    def test_item_and_len_and_repr(self):
        a = Tensor(2.5, requires_grad=True)
        assert a.item() == 2.5
        assert "requires_grad" in repr(a)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_operator_sugar(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = ((1.0 - a) / a + a**2 - (-a)) * 2.0
        out.backward(np.ones(1))
        # f(a) = 2*((1-a)/a + a^2 + a); f'(a) = 2*(-1/a^2 + 2a + 1)
        np.testing.assert_allclose(a.grad, 2 * (-0.25 + 4 + 1))

    def test_transpose_property(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.T.shape == (3, 2)

    def test_float64_enforced(self):
        a = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert a.data.dtype == np.float64
