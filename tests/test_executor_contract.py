"""Executor conformance suite (repro.exec).

Every executor — serial, parallel, sharded, inference — must honor one contract:
the open/close lifecycle state machine, ``train_step`` leaving gradients
on the model, ``predict`` returning the eval-mode forward.  The headline
checks: serial and parallel executors produce identical losses and
gradients (1e-6 rtol) on a fixed seeded batch, and all three produce
identical predictions from the same weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import CompiledExecutor
from repro.core import SimSTForecaster, make_deterministic_st_wa
from repro.data import WindowSpec
from repro.data.windows import BatchIterator, SlidingWindowDataset
from repro.exec import (
    EXECUTOR_KINDS,
    ExecutorError,
    ExecutorSpec,
    ExecutorStateError,
    InferenceExecutor,
    ParallelExecutor,
    SerialExecutor,
    ShardedExecutor,
    StepResult,
    make_executor,
)
from repro.training import Trainer, TrainerConfig

SPEC = WindowSpec(12, 12)
RTOL = 1e-6


def small_model(num_sensors: int, seed: int = 0):
    return make_deterministic_st_wa(
        num_sensors, model_dim=8, skip_dim=8, predictor_hidden=16, seed=seed
    )


def small_simst(num_sensors: int, seed: int = 0):
    return SimSTForecaster(
        num_sensors,
        history=SPEC.history,
        horizon=SPEC.horizon,
        hidden=8,
        embedding_dim=4,
        predictor_hidden=16,
        seed=seed,
    )


def make_exec(kind: str, tiny_dataset):
    model = small_model(tiny_dataset.num_sensors)
    if kind == "serial":
        return SerialExecutor(model)
    if kind == "parallel":
        return ParallelExecutor(model, n_workers=2)
    if kind == "compiled":
        return CompiledExecutor(model)
    if kind == "sharded":
        return ShardedExecutor(model, n_workers=2)
    return InferenceExecutor(model)


@pytest.fixture(scope="module")
def seeded_batch(tiny_dataset):
    windows = SlidingWindowDataset(tiny_dataset.train, SPEC, raw=tiny_dataset.train_raw)
    iterator = BatchIterator(windows, batch_size=8, shuffle=False)
    x, y_raw = next(iter(iterator))
    return x, tiny_dataset.scaler.transform(y_raw)


# --------------------------------------------------------------------- #
# lifecycle: one state machine for every implementation
# --------------------------------------------------------------------- #
class TestLifecycle:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_step_before_open_raises(self, kind, tiny_dataset, seeded_batch):
        executor = make_exec(kind, tiny_dataset)
        with pytest.raises(ExecutorError):
            executor.train_step(None, seeded_batch)
        with pytest.raises(ExecutorStateError):
            executor.predict(None, seeded_batch[0])

    @pytest.mark.parametrize("kind", ["serial", "inference", "compiled"])
    def test_double_open_raises(self, kind, tiny_dataset):
        executor = make_exec(kind, tiny_dataset).open()
        try:
            with pytest.raises(ExecutorStateError, match="already open"):
                executor.open()
        finally:
            executor.close()

    @pytest.mark.parametrize("kind", ["serial", "inference", "compiled"])
    def test_close_then_step_raises_and_reopen_works(
        self, kind, tiny_dataset, seeded_batch
    ):
        executor = make_exec(kind, tiny_dataset).open()
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(ExecutorStateError, match="call open"):
            executor.predict(None, seeded_batch[0])
        with executor:  # reopen after close is allowed
            executor.predict(None, seeded_batch[0])
        assert not executor.is_open

    def test_parallel_lifecycle(self, tiny_dataset, seeded_batch):
        """Pool spawn is expensive: one test covers the parallel machine."""
        executor = make_exec("parallel", tiny_dataset)
        assert executor._pool is None
        with executor:
            assert executor._pool is not None
            with pytest.raises(ExecutorStateError, match="already open"):
                executor.open()
        assert executor._pool is None
        with pytest.raises(ExecutorStateError):
            executor.train_step(None, seeded_batch)

    def test_sharded_lifecycle(self, tiny_dataset, seeded_batch):
        """Same pool state machine, plus shard ranges bound to the pool."""
        executor = ShardedExecutor(small_simst(tiny_dataset.num_sensors), n_workers=2)
        assert executor.shard_axis == "sensor"
        assert executor._pool is None and executor.shard_ranges == []
        with executor:
            assert executor._pool is not None
            ranges = executor.shard_ranges
            assert ranges[0][0] == 0
            assert ranges[-1][1] == tiny_dataset.num_sensors
            with pytest.raises(ExecutorStateError, match="already open"):
                executor.open()
        assert executor._pool is None and executor.shard_ranges == []
        with pytest.raises(ExecutorStateError):
            executor.train_step(None, seeded_batch)
        with pytest.raises(ExecutorStateError):
            executor.predict(None, seeded_batch[0])


# --------------------------------------------------------------------- #
# the equivalence gates: one step logic, many backends
# --------------------------------------------------------------------- #
class TestEquivalence:
    def test_serial_and_parallel_agree_on_loss_grads_and_predictions(
        self, tiny_dataset, seeded_batch
    ):
        serial = make_exec("serial", tiny_dataset).open()
        parallel = make_exec("parallel", tiny_dataset)
        x, y = seeded_batch
        serial_result = serial.train_step(None, (x, y))
        with parallel:
            parallel_result = parallel.train_step(None, (x, y))
            prediction = parallel.predict(None, x)
        assert isinstance(serial_result, StepResult)
        np.testing.assert_allclose(parallel_result.loss, serial_result.loss, rtol=RTOL)
        assert len(serial_result.grads) == len(parallel_result.grads)
        for left, right in zip(serial_result.grads, parallel_result.grads):
            assert (left is None) == (right is None)
            if left is not None:
                np.testing.assert_allclose(right, left, rtol=RTOL, atol=1e-12)
        np.testing.assert_array_equal(prediction, serial.predict(None, x))
        serial.close()

    def test_inference_matches_serial_predictions(self, tiny_dataset, seeded_batch):
        x, _ = seeded_batch
        with make_exec("serial", tiny_dataset) as serial, make_exec(
            "inference", tiny_dataset
        ) as inference:
            np.testing.assert_array_equal(
                inference.predict(None, x), serial.predict(None, x)
            )

    def test_gradients_land_on_the_model(self, tiny_dataset, seeded_batch):
        with make_exec("serial", tiny_dataset) as executor:
            result = executor.train_step(None, seeded_batch)
            for grad, parameter in zip(result.grads, executor.model.parameters()):
                assert grad is parameter.grad

    def test_explicit_weights_override_model_state(self, tiny_dataset, seeded_batch):
        x, _ = seeded_batch
        with make_exec("serial", tiny_dataset) as executor:
            baseline = executor.predict(None, x)
            other = small_model(tiny_dataset.num_sensors, seed=9).state_dict()
            changed = executor.predict(other, x)
        assert not np.array_equal(changed, baseline)


# --------------------------------------------------------------------- #
# sensor sharding: axis selection + serial equivalence on one pool spawn
# --------------------------------------------------------------------- #
class TestShardedExecutor:
    def test_batch_axis_fallback_for_sensor_mixing_models(self, tiny_dataset):
        """ST-WA mixes across sensors, so sharding degrades to batch axis."""
        executor = make_exec("sharded", tiny_dataset)
        assert executor.shard_axis == "batch"

    def test_sensor_sharded_matches_serial_on_simst(self, tiny_dataset, seeded_batch):
        """One pool spawn covers loss, gradient, stats, and predict parity."""
        x, y = seeded_batch
        serial = SerialExecutor(small_simst(tiny_dataset.num_sensors)).open()
        serial_result = serial.train_step(None, (x, y))
        serial_prediction = serial.predict(None, x)
        serial.close()

        sharded = ShardedExecutor(small_simst(tiny_dataset.num_sensors), n_workers=2)
        with sharded:
            result = sharded.train_step(None, (x, y))
            prediction = sharded.predict(None, x)
        assert result.stats["shard_axis"] == "sensor"
        np.testing.assert_allclose(result.loss, serial_result.loss, rtol=RTOL)
        assert len(result.grads) == len(serial_result.grads)
        for left, right in zip(serial_result.grads, result.grads):
            assert (left is None) == (right is None)
            if left is not None:
                np.testing.assert_allclose(right, left, rtol=RTOL, atol=1e-12)
        np.testing.assert_allclose(
            prediction, serial_prediction, rtol=0.0, atol=1e-12
        )

    def test_predict_keeps_single_window_rank(self, tiny_dataset, seeded_batch):
        x, _ = seeded_batch
        executor = ShardedExecutor(small_simst(tiny_dataset.num_sensors), n_workers=2)
        with executor:
            batched = executor.predict(None, x[:1])
            single = executor.predict(None, x[0])
        assert single.ndim == 3
        np.testing.assert_array_equal(single, batched[0])


# --------------------------------------------------------------------- #
# inference executors can never train
# --------------------------------------------------------------------- #
class TestInferenceExecutor:
    def test_train_step_always_raises(self, tiny_dataset, seeded_batch):
        with make_exec("inference", tiny_dataset) as executor:
            with pytest.raises(ExecutorError, match="cannot train"):
                executor.train_step(None, seeded_batch)

    def test_history_validation(self, tiny_dataset, seeded_batch):
        model = small_model(tiny_dataset.num_sensors)
        executor = InferenceExecutor(model, history=SPEC.history).open()
        x, _ = seeded_batch
        with pytest.raises(ValueError, match="window"):
            executor.predict(None, x[:, :, :-1])
        executor.close()

    def test_single_snapshot_keeps_rank(self, tiny_dataset, seeded_batch):
        x, _ = seeded_batch
        with make_exec("inference", tiny_dataset) as executor:
            batched = executor.predict(None, x[:1])
            single = executor.predict(None, x[0])
        assert single.ndim == 3
        np.testing.assert_array_equal(single, batched[0])


# --------------------------------------------------------------------- #
# ExecutorSpec validation + factory dispatch
# --------------------------------------------------------------------- #
class TestExecutorSpec:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            ExecutorSpec(kind="quantum")

    def test_parallel_needs_two_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExecutorSpec.parallel(n_workers=1)

    def test_sharded_needs_two_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExecutorSpec.sharded(n_workers=1)

    def test_workers_on_serial_raises(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExecutorSpec(kind="serial", n_workers=2)

    def test_with_overrides(self):
        spec = ExecutorSpec.parallel(n_workers=2).with_overrides(n_workers=4)
        assert spec.n_workers == 4 and spec.kind == "parallel"

    @pytest.mark.parametrize(
        "spec, expected",
        [
            (ExecutorSpec.serial(), SerialExecutor),
            (ExecutorSpec.parallel(n_workers=2), ParallelExecutor),
            (ExecutorSpec.inference(), InferenceExecutor),
            (ExecutorSpec.compiled(), CompiledExecutor),
            (ExecutorSpec.sharded(n_workers=2), ShardedExecutor),
        ],
    )
    def test_factory_dispatch(self, spec, expected, tiny_dataset):
        executor = make_executor(small_model(tiny_dataset.num_sensors), spec)
        assert type(executor) is expected


# --------------------------------------------------------------------- #
# Trainer integration: spec resolution + the deprecation shim
# --------------------------------------------------------------------- #
class TestTrainerShim:
    def test_n_workers_warns_and_builds_parallel_spec(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        with pytest.warns(DeprecationWarning, match="n_workers"):
            trainer = Trainer(model, tiny_dataset, SPEC, TrainerConfig(n_workers=2))
        assert trainer.executor_spec.kind == "parallel"
        assert trainer.executor_spec.n_workers == 2
        assert isinstance(trainer.executor, ParallelExecutor)

    def test_default_is_serial(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        trainer = Trainer(model, tiny_dataset, SPEC, TrainerConfig())
        assert trainer.executor_spec.kind == "serial"
        assert isinstance(trainer.executor, SerialExecutor)

    def test_executor_and_n_workers_together_raise(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        config = TrainerConfig(executor=ExecutorSpec.serial(), n_workers=2)
        with pytest.raises(ValueError, match="not both"):
            Trainer(model, tiny_dataset, SPEC, config)

    def test_inference_spec_rejected(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        config = TrainerConfig(executor=ExecutorSpec.inference())
        with pytest.raises(ValueError, match="cannot train"):
            Trainer(model, tiny_dataset, SPEC, config)

    def test_executor_closed_after_fit(self, tiny_dataset):
        model = small_model(tiny_dataset.num_sensors)
        config = TrainerConfig(epochs=1, max_batches_per_epoch=2, eval_batches=1)
        trainer = Trainer(model, tiny_dataset, SPEC, config)
        trainer.fit()
        assert not trainer.executor.is_open
